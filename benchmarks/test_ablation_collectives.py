"""Ablation — collective complexity vs group size (the T'_W1 argument).

The paper's rationale for decoupling reductions: "the complexity of the
reduce operation naturally decreases when moving from a large number of
processes to a smaller subset".  Measures allreduce latency across
communicator sizes and checks the logarithmic-ish growth the tree
algorithms give — i.e. moving the operation to an alpha*P group really
buys back the predicted cost.
"""

import math

import pytest

from repro.bench.harness import Series, save_artifact
from repro.simmpi import SizedPayload, beskow, run


def _allreduce_time(nprocs: int, payload_bytes: int, repeats: int = 20
                    ) -> float:
    def main(comm):
        t0 = comm.time
        for _ in range(repeats):
            yield from comm.allreduce(SizedPayload(1, payload_bytes),
                                      op=lambda a, b: a)
        return (comm.time - t0) / repeats

    result = run(main, nprocs, machine=beskow())
    return max(result.values)


@pytest.mark.figure("ablation-collectives")
def test_reduce_complexity_shrinks_with_group(benchmark):
    sizes = (8, 32, 128, 512, 2048)
    payload = 64 * 1024

    def experiment():
        return {p: _allreduce_time(p, payload) for p in sizes}

    times = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print("\nCollective-complexity ablation (allreduce, 64 KiB):")
    series = Series("allreduce")
    for p in sizes:
        print(f"  P={p:>5}: {times[p] * 1e6:9.1f} us")
        series.points[p] = times[p]
    save_artifact("ablation_collectives", [series])

    # monotone growth with communicator size
    ordered = [times[p] for p in sizes]
    assert ordered == sorted(ordered)

    # decoupling payoff: the alpha = 1/16 group's collective is much
    # cheaper than the full communicator's
    assert times[128] < times[2048] / 1.5

    # growth is tree-like (scales with log P within a generous factor,
    # not linearly): going 8 -> 2048 multiplies cost by far less than
    # the 256x a linear algorithm would
    assert times[2048] / times[8] < 256 / 4
