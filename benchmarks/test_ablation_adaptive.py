"""Ablation — adaptive alpha (the paper's future-work extension).

Starts a decoupled synthetic application at a deliberately wrong alpha,
runs epoch after epoch feeding trace measurements to the
:class:`~repro.core.adaptive.AlphaController`, and checks that (a) the
controller converges and (b) the converged configuration beats the
mis-configured starting point.
"""

import pytest

from repro.bench.harness import Series, save_artifact
from repro.core.adaptive import AlphaController, epoch_from_trace
from repro.mpistream import attach, create_channel
from repro.simmpi import quiet_testbed, run

NPROCS = 32
ROUNDS = 6
WORK0 = 0.05
WORK1 = 0.02   # heavy per-element analysis: needs a sizable group


def _epoch_run(n_consumers: int):
    """One epoch at a given decoupled-group size; returns (makespan,
    tracer, consumer ranks)."""
    def app(comm):
        is_worker = comm.rank < comm.size - n_consumers
        ch = yield from create_channel(comm, is_worker, not is_worker)

        def op1(element):
            yield from comm.compute(WORK1, "op1")

        s = yield from attach(ch, op1)
        if is_worker:
            scale = comm.size / (comm.size - n_consumers)
            for _ in range(ROUNDS):
                yield from comm.compute(WORK0 * scale, "op0")
                yield from s.isend(0)
            yield from s.terminate()
        else:
            yield from s.operate()
        yield from ch.free()
        return comm.time

    result = run(app, NPROCS, machine=quiet_testbed(), trace=True)
    consumers = list(range(NPROCS - n_consumers, NPROCS))
    return max(result.values), result.tracer, consumers


@pytest.mark.figure("ablation-adaptive")
def test_adaptive_alpha_converges_and_improves(benchmark):
    def experiment():
        ctl = AlphaController(alpha=1 / NPROCS, nprocs=NPROCS, eta=0.6)
        trajectory = []
        for _epoch in range(10):
            n_consumers = ctl.group_size()
            makespan, tracer, consumers = _epoch_run(n_consumers)
            trajectory.append((ctl.alpha, n_consumers, makespan))
            workers = [r for r in range(NPROCS) if r not in consumers]
            m = epoch_from_trace(tracer, workers, consumers,
                                 0.0, makespan)
            ctl.update(m)
            if ctl.converged:
                break
        return trajectory

    trajectory = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print("\nAdaptive-alpha ablation (epoch: alpha, group, makespan):")
    series = Series("makespan")
    for i, (alpha, n, t) in enumerate(trajectory):
        print(f"  epoch {i}: alpha={alpha:.4f} group={n:2d} "
              f"makespan={t:.3f}s")
        series.points[i] = t
    save_artifact("ablation_adaptive", [series])

    first = trajectory[0][2]
    best = min(t for _, _, t in trajectory)
    # the controller must find a configuration better than the
    # mis-configured start (one consumer drowning in 31 producers)
    assert best < first * 0.85, (first, best)
    # and it must have grown the group to do it
    assert trajectory[-1][1] > trajectory[0][1]
