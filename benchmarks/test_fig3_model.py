"""Fig. 3 — the three execution models, measured.

The conceptual figure as an experiment: a synthetic two-operation
application with rotating per-round imbalance, run (a) conventionally
(staged, barriers), (b) with non-blocking operations (idle absorption,
no pipelining across operations), (c) decoupled (pipelined + absorbed +
reduced-complexity operator).  Ordering must match the figure.
"""

import pytest

from repro.bench import fig3_execution_models, save_artifact
from repro.bench.harness import Series


@pytest.mark.figure("fig3")
def test_fig3_execution_models(benchmark):
    out = benchmark.pedantic(fig3_execution_models, rounds=1, iterations=1)
    print("\nFig. 3 - execution-model makespans (s):")
    for name in ("conventional", "nonblocking", "decoupled"):
        print(f"  {name:>14}: {out[name]:.3f}")
    save_artifact("fig3_models", [
        Series(k, points={0: v}) for k, v in out.items()
    ])
    assert out["decoupled"] < out["nonblocking"] < out["conventional"]
