"""Fig. 2 — HPCToolkit-style traces of iPIC3D, reference vs decoupled.

Regenerates the motivating traces (seven ranks): in the reference,
particle computation and particle communication alternate sequentially
on every rank; in the decoupled run they overlap on the timeline and
the total execution is shorter.  The rendered ASCII timelines are
printed (the paper's visual) and the overlap is asserted numerically.
"""

import pytest

from repro.bench import fig2_traces, save_artifact
from repro.bench.harness import Series
from repro.trace import render


@pytest.mark.figure("fig2")
def test_fig2_trace(benchmark):
    out = benchmark.pedantic(fig2_traces, rounds=1, iterations=1)
    r_ref, r_dec = out["reference"], out["decoupled"]

    print("\nFig. 2 (top) - reference iPIC3D, mover (m) + exchange (p):")
    print(render(r_ref.tracer, width=68))
    print("\nFig. 2 (bottom) - decoupled iPIC3D, mover (m) + exchange (e):")
    print(render(r_dec.tracer, width=68))
    print(f"\ncommunication hidden behind compute: "
          f"reference {out['ref_overlap']:.1%}, "
          f"decoupled {out['dec_overlap']:.1%}")

    summary = Series("fig2", points={
        0: out["ref_overlap"], 1: out["dec_overlap"],
        2: r_ref.elapsed, 3: r_dec.elapsed,
    })
    save_artifact("fig2_trace", [summary])

    # the decoupled run overlaps communication with computation...
    assert out["dec_overlap"] > 0.8
    assert out["ref_overlap"] < 0.5
    # ...and reduces the execution time (the paper's observation)
    assert r_dec.elapsed < r_ref.elapsed
