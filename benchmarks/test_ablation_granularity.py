"""Ablation — stream-element granularity S (the Eq. 4 trade-off).

A fixed volume D streams from producers to one consumer while the
producers compute: fine elements pipeline better but pay per-element
overhead; coarse elements are cheap but serialize at the end.  The
measured makespan across S must show both penalty regimes, as Eq. 4
predicts.
"""

import pytest

from repro.bench.harness import Series, save_artifact
from repro.mpistream import attach, create_channel
from repro.simmpi import SizedPayload, quiet_testbed, run

TOTAL_BYTES = 64 * 1024 * 1024          # D
COMPUTE_TOTAL = 0.5                     # op0 per producer
ELEMENT_OVERHEAD = 20e-6                # o (construction + injection)


def _makespan(element_bytes: int) -> float:
    nelements = max(1, TOTAL_BYTES // element_bytes)

    def main(comm):
        is_producer = comm.rank < comm.size - 1
        ch = yield from create_channel(comm, is_producer, not is_producer)

        def sink(element):
            # consumer-side per-byte processing
            yield from comm.compute(element.nbytes * 2e-10, "op1")

        s = yield from attach(ch, sink, element_overhead=ELEMENT_OVERHEAD)
        if is_producer:
            per_element_compute = COMPUTE_TOTAL / nelements
            for _ in range(nelements):
                yield from comm.compute(per_element_compute, "op0")
                yield from s.isend(SizedPayload(None, element_bytes))
            yield from s.terminate()
        else:
            yield from s.operate()
        yield from ch.free()
        return comm.time

    result = run(main, 5, machine=quiet_testbed())
    return max(result.values)


@pytest.mark.figure("ablation-granularity")
def test_granularity_tradeoff(benchmark):
    sizes = [4 * 1024, 64 * 1024, 1024 * 1024, 16 * 1024 * 1024,
             TOTAL_BYTES]

    def experiment():
        return {s: _makespan(s) for s in sizes}

    times = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print("\nGranularity ablation (element bytes -> makespan s):")
    series = Series("makespan")
    for s in sizes:
        print(f"  S={s:>10}: {times[s]:.3f}")
        series.points[s] = times[s]
    save_artifact("ablation_granularity", [series])

    # fine-grained overhead penalty: the finest grain pays for its
    # element count relative to the sweet spot
    best = min(times.values())
    assert times[sizes[0]] > best * 1.05
    # coarse-grained pipeline loss: one giant element serializes the
    # whole transfer + consumer processing after the compute
    assert times[sizes[-1]] > best * 1.02
