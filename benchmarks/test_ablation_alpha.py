"""Ablation — the decoupled fraction alpha, beyond the paper's three
values (MapReduce case study, one mid-size scale point).

Sweeps alpha from 1.6% to 25%: too-small groups drown in stream load,
too-large groups starve the map side (the Eq. 2 trade-off); the best
alpha should sit in the paper's 3-12% band.
"""

import pytest

from repro.apps.mapreduce import MapReduceConfig, decoupled_worker
from repro.bench.harness import Series, max_elapsed, save_artifact
from repro.simmpi import beskow, run

NPROCS = 256
ALPHAS = (1 / 64, 1 / 32, 1 / 16, 1 / 8, 1 / 4)


@pytest.mark.figure("ablation-alpha")
def test_alpha_sweep(benchmark):
    def experiment():
        out = {}
        for alpha in ALPHAS:
            cfg = MapReduceConfig(nprocs=NPROCS, alpha=alpha)
            result = run(decoupled_worker, NPROCS, args=(cfg,),
                         machine=beskow())
            out[alpha] = max_elapsed(result)
        return out

    times = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(f"\nAlpha ablation (MapReduce, P={NPROCS}):")
    series = Series("elapsed")
    for a in ALPHAS:
        print(f"  alpha={a:.4f}: {times[a]:.2f}s")
        series.points[round(a * 10000)] = times[a]
    save_artifact("ablation_alpha", [series])

    best = min(times, key=times.get)
    # the optimum lies in the paper's recommended band
    assert 0.02 <= best <= 0.13, f"best alpha {best}"
    # giving a quarter of the machine to the reduce group wastes map
    # throughput relative to the optimum
    assert times[1 / 4] > times[best]
