"""Fig. 5 — MapReduce weak scaling (2.9 TB-equivalent, alpha sweep).

Paper claims reproduced as assertions:
  * decoupled beats the reference at every scale;
  * the improvement WIDENS with P (2x -> 4x in the paper);
  * alpha = 6.25% is the best of the three fractions at the top scale;
  * the decoupled curve degrades at the largest scales (master
    congestion — the paper's own observation about its missing reduce-
    group aggregation).
"""

import pytest

from repro.bench import fig5_mapreduce, render_table, save_artifact


@pytest.mark.figure("fig5")
def test_fig5_mapreduce(benchmark, points):
    series = benchmark.pedantic(
        fig5_mapreduce, args=(points,), rounds=1, iterations=1)
    table = render_table("Fig. 5 - MapReduce weak scaling "
                         "(execution time, s)", series)
    print("\n" + table)
    save_artifact("fig5_mapreduce", series)

    ref = series[0]
    dec_125, dec_0625, dec_03125 = series[1], series[2], series[3]
    lo, hi = min(points), max(points)

    # decoupling wins at every point, for the paper's best alpha
    for p in points:
        assert dec_0625.points[p] < ref.points[p], f"P={p}"

    # the gap widens with scale (within tolerance on short sweeps,
    # where the collective costs have not started climbing yet)
    gain_lo = ref.points[lo] / dec_0625.points[lo]
    gain_hi = ref.points[hi] / dec_0625.points[hi]
    assert gain_hi > gain_lo * 0.95, (gain_lo, gain_hi)

    # the strong paper claims need the paper's scale (full sweep only)
    if hi >= 4096:
        assert gain_hi > gain_lo * 1.3, (gain_lo, gain_hi)
        assert gain_hi > 2.0, f"top-scale speedup only {gain_hi:.2f}x"
        # alpha = 6.25% is the best fraction at the top scale
        assert dec_0625.points[hi] <= dec_125.points[hi]
        assert dec_0625.points[hi] <= dec_03125.points[hi]
        # master congestion: decoupled rises off the mid-scale plateau
        mid = points[len(points) // 2]
        assert dec_0625.points[hi] > dec_0625.points[mid] * 1.02
