"""Ablation — imbalance absorption vs noise amplitude.

Sweeps the machine's persistent skew: the conventional (staged)
execution's cost grows with noise because every stage waits for the
slowest rank, while the decoupled dataflow absorbs much of it; the
conventional-to-decoupled gap must widen with the noise level.
"""

import pytest

from repro.bench.harness import Series, save_artifact
from repro.mpistream import attach, create_channel
from repro.simmpi import MachineConfig, NetworkConfig, NoiseConfig, run

ROUNDS = 10
NPROCS = 32
WORK0 = 0.1
WORK1 = 0.004


def _machine(skew: float) -> MachineConfig:
    return MachineConfig(
        name=f"skew{skew}",
        network=NetworkConfig(fabric_dilation=0.0),
        noise=NoiseConfig(persistent_skew=skew, quantum_fraction=0.0,
                          seed=99),
    )


def _conventional(comm):
    for _ in range(ROUNDS):
        yield from comm.compute(WORK0, "op0")
        yield from comm.barrier()
        yield from comm.compute(WORK1 * 4, "op1")
        yield from comm.barrier()
    return comm.time


def _decoupled(comm):
    is_worker = comm.rank < comm.size - 2
    ch = yield from create_channel(comm, is_worker, not is_worker)

    def op1(element):
        yield from comm.compute(WORK1, "op1")

    s = yield from attach(ch, op1)
    if is_worker:
        scale = comm.size / (comm.size - 2)
        for _ in range(ROUNDS):
            yield from comm.compute(WORK0 * scale, "op0")
            yield from s.isend(0)
        yield from s.terminate()
    else:
        yield from s.operate()
    yield from ch.free()
    return comm.time


@pytest.mark.figure("ablation-noise")
def test_noise_absorption(benchmark):
    skews = (0.0, 0.02, 0.05, 0.10)

    def experiment():
        rows = {}
        for skew in skews:
            m = _machine(skew)
            tc = max(run(_conventional, NPROCS, machine=m).values)
            td = max(run(_decoupled, NPROCS, machine=m).values)
            rows[skew] = (tc, td)
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print("\nNoise ablation (persistent skew -> conventional, decoupled):")
    s_conv, s_dec = Series("conventional"), Series("decoupled")
    for skew, (tc, td) in sorted(rows.items()):
        print(f"  skew={skew:.2f}: conventional {tc:.3f}s  "
              f"decoupled {td:.3f}s  gap {tc / td:.3f}x")
        key = round(skew * 100)
        s_conv.points[key] = tc
        s_dec.points[key] = td
    save_artifact("ablation_noise", [s_conv, s_dec])

    # conventional suffers more from noise than decoupled
    conv_growth = rows[0.10][0] / rows[0.0][0]
    dec_growth = rows[0.10][1] / rows[0.0][1]
    assert conv_growth > dec_growth
    # and the decoupled advantage widens with the noise level
    gap_quiet = rows[0.0][0] / rows[0.0][1]
    gap_noisy = rows[0.10][0] / rows[0.10][1]
    assert gap_noisy > gap_quiet
