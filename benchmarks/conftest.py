"""Shared fixtures for the figure-regeneration benchmarks.

Every benchmark runs the full experiment once inside
``benchmark.pedantic`` (the simulations are deterministic — repeated
rounds would measure the same virtual trajectory), prints the paper's
rows, persists a JSON artifact under ``benchmarks/results/``, and
asserts the figure's *shape* claims.

Scale points default to 32..8192 with x4 steps (the paper doubles);
override with ``REPRO_POINTS=32,64,128,...`` for the full axis or a
quick pass (e.g. ``REPRO_POINTS=32,128``).
"""

import pytest


@pytest.fixture
def points():
    from repro.bench import scale_points
    return scale_points()


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): marks a benchmark regenerating a "
        "specific paper figure")
