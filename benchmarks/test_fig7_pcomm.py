"""Fig. 7 — iPIC3D particle communication weak scaling (GEM setup).

Paper claims reproduced as assertions:
  * the reference grows with the process count;
  * the decoupled time stays near-constant;
  * decoupled wins at the top scale (paper: 1.3x).
"""

import pytest

from repro.bench import fig7_pcomm, render_table, save_artifact


@pytest.mark.figure("fig7")
def test_fig7_pcomm(benchmark, points):
    series = benchmark.pedantic(
        fig7_pcomm, args=(points,), rounds=1, iterations=1)
    table = render_table("Fig. 7 - iPIC3D particle communication "
                         "(execution time, s)", series)
    print("\n" + table)
    save_artifact("fig7_pcomm", series)

    ref, dec = series
    lo, hi = min(points), max(points)

    # reference grows with scale
    assert ref.points[hi] > ref.points[lo] * 1.02

    # decoupled stays near-constant (the paper's headline observation)
    assert dec.points[hi] < dec.points[lo] * 1.15

    # decoupled wins everywhere
    for p in points:
        assert dec.points[p] < ref.points[p], f"P={p}"
    gain_hi = ref.points[hi] / dec.points[hi]
    gain_lo = ref.points[lo] / dec.points[lo]
    if hi >= 4096:  # the paper-scale claims
        assert gain_hi > gain_lo
        assert gain_hi > 1.15, f"top-scale gain only {gain_hi:.2f}x"
