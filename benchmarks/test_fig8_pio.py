"""Fig. 8 — iPIC3D particle I/O weak scaling.

Paper claims reproduced as assertions:
  * decoupled beats both references from 64 processes on, with the
    advantage growing with scale;
  * at the top scale the gaps approach the paper's 12x (vs collective)
    and 3x (vs shared-pointer);
  * collective I/O is the worst performer at scale.
"""

import pytest

from repro.bench import fig8_pio, render_table, save_artifact


@pytest.mark.figure("fig8")
def test_fig8_pio(benchmark, points):
    series = benchmark.pedantic(
        fig8_pio, args=(points,), rounds=1, iterations=1)
    table = render_table("Fig. 8 - iPIC3D particle I/O "
                         "(visible I/O time, s)", series)
    print("\n" + table)
    save_artifact("fig8_pio", series)

    coll, shared, dec = series
    hi = max(points)

    # decoupled wins everywhere beyond the smallest point
    for p in points:
        if p >= 64:
            assert dec.points[p] < coll.points[p], f"P={p}"
            assert dec.points[p] < shared.points[p], f"P={p}"

    # collective is the worst at scale; gaps approach the paper's 12x/3x
    assert coll.points[hi] > shared.points[hi]
    gain_coll = coll.points[hi] / dec.points[hi]
    gain_shared = shared.points[hi] / dec.points[hi]
    assert gain_coll > 3.0, f"collective gap only {gain_coll:.1f}x"
    if hi >= 4096:  # the paper-scale claims
        assert gain_coll > 6.0, f"collective gap only {gain_coll:.1f}x"
        assert gain_shared > 2.0, f"shared gap only {gain_shared:.1f}x"
