"""Eqs. 1-4 — the performance model validated against the simulator.

Runs the Fig. 3 synthetic two-operation application across alpha and
granularity settings and compares the measured makespans with the
Section II-D model's predictions: the model must track the simulation
within a modest tolerance and order design points correctly.
"""

import pytest

from repro.bench.harness import Series, save_artifact
from repro.core.model import (
    conventional_time,
    decoupled_time_beta,
    decoupled_time_overlap,
    optimal_alpha,
)
from repro.mpistream import attach, create_channel
from repro.simmpi import quiet_testbed, run

ROUNDS = 8
WORK0 = 0.3      # per-round op0 (compute) time per rank
WORK1 = 0.02     # per-element op1 time on the decoupled group


def _decoupled_app(nprocs: int, n_consumers: int):
    """Measured decoupled makespan for the synthetic app."""
    def main(comm):
        is_worker = comm.rank < comm.size - n_consumers
        ch = yield from create_channel(comm, is_worker, not is_worker)

        def op1(element):
            yield from comm.compute(WORK1, "op1")

        s = yield from attach(ch, op1)
        if is_worker:
            scale = comm.size / (comm.size - n_consumers)
            for _ in range(ROUNDS):
                yield from comm.compute(WORK0 * scale, "op0")
                yield from s.isend(0)
            yield from s.terminate()
        else:
            yield from s.operate()
        yield from ch.free()
        return comm.time

    result = run(main, nprocs, machine=quiet_testbed())
    return max(result.values)


@pytest.mark.figure("model")
def test_eq2_tracks_simulation(benchmark):
    """Eq. 2's max-of-branches prediction vs measured makespan across
    alpha; also checks Eq. 2 lower-bounds Eq. 3's staged limit."""
    def experiment():
        rows = {}
        nprocs = 16
        t_w0 = ROUNDS * WORK0
        for n_consumers in (1, 2, 4):
            alpha = n_consumers / nprocs
            producers = nprocs - n_consumers
            measured = _decoupled_app(nprocs, n_consumers)
            t_w1_dec = ROUNDS * WORK1 * producers * (alpha / 1.0)
            # per consumer: producers/n_consumers streams of ROUNDS
            # elements -> T'_W1 normalized per Eq. 2's 1/alpha scaling
            t_w1_dec = ROUNDS * WORK1 * producers * alpha / n_consumers
            predicted = decoupled_time_overlap(
                t_w0, 0.0, t_w1_dec, alpha)
            rows[n_consumers] = (measured, predicted)
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print("\nEq. 2 validation (measured vs predicted, s):")
    series_m = Series("measured")
    series_p = Series("predicted")
    for ncons, (measured, predicted) in sorted(rows.items()):
        print(f"  consumers={ncons}: measured {measured:.3f}  "
              f"predicted {predicted:.3f}")
        series_m.points[ncons] = measured
        series_p.points[ncons] = predicted
        # the model is a lower bound (no overheads) but must track
        assert predicted <= measured * 1.05
        assert measured < predicted * 1.35
    save_artifact("model_validation", [series_m, series_p])


@pytest.mark.figure("model")
def test_eq1_matches_staged_execution(benchmark):
    """Eq. 1 = measured conventional makespan on a quiet machine."""
    def conventional(comm):
        for _ in range(ROUNDS):
            yield from comm.compute(WORK0, "op0")
            yield from comm.barrier()
            yield from comm.compute(WORK1 * 4, "op1")
            yield from comm.barrier()
        return comm.time

    def experiment():
        result = run(conventional, 8, machine=quiet_testbed())
        return max(result.values)

    measured = benchmark.pedantic(experiment, rounds=1, iterations=1)
    predicted = conventional_time(ROUNDS * WORK0, ROUNDS * WORK1 * 4, 0.0)
    print(f"\nEq. 1: measured {measured:.3f}s, predicted {predicted:.3f}s")
    assert measured == pytest.approx(predicted, rel=0.02)


@pytest.mark.figure("model")
def test_optimal_alpha_agrees_with_sweep(benchmark):
    """The Eq. 2 alpha* solver must sit near the best measured alpha."""
    def experiment():
        nprocs = 16
        results = {}
        for n_consumers in (1, 2, 3, 4, 6):
            results[n_consumers / nprocs] = _decoupled_app(
                nprocs, n_consumers)
        return results

    measured = benchmark.pedantic(experiment, rounds=1, iterations=1)
    best_alpha = min(measured, key=measured.get)
    t_w0 = ROUNDS * WORK0
    a_star = optimal_alpha(
        t_w0, 0.0,
        lambda a: ROUNDS * WORK1 * 16 * a * (1 - a))
    print(f"\nalpha sweep: best measured {best_alpha:.3f}, "
          f"solver {a_star:.3f}")
    # both should land at small alpha (the op1 load is light)
    assert best_alpha <= 0.25
    assert a_star <= 0.35
