"""Fig. 6 — CG solver weak scaling (120^3 points/process, 300 iters).

Paper claims reproduced as assertions:
  * blocking degrades with scale; non-blocking and decoupled stay
    near-flat (within ~15% across the sweep);
  * decoupled matches non-blocking efficiency (within ~15%);
  * decoupled beats blocking at the top scale (paper: 1.25x).
"""

import pytest

from repro.bench import fig6_cg, render_table, save_artifact


@pytest.mark.figure("fig6")
def test_fig6_cg(benchmark, points):
    series = benchmark.pedantic(
        fig6_cg, args=(points,), rounds=1, iterations=1)
    table = render_table("Fig. 6 - CG solver weak scaling "
                         "(execution time at 300 iterations, s)", series)
    print("\n" + table)
    save_artifact("fig6_cg", series)

    blocking, nonblocking, decoupled = series
    lo, hi = min(points), max(points)

    # blocking grows with scale (the O(P) alltoallv scan bites at the
    # paper's scale)
    if hi >= 2048:
        assert blocking.points[hi] > blocking.points[lo] * 1.05
    else:
        assert blocking.points[hi] > blocking.points[lo]

    # decoupled and non-blocking are near-flat
    for s in (nonblocking, decoupled):
        assert s.points[hi] < s.points[lo] * 1.15, s.label

    # decoupled ~ non-blocking (the paper's parity claim)
    for p in points:
        ratio = decoupled.points[p] / nonblocking.points[p]
        assert 0.85 < ratio < 1.15, (p, ratio)

    # decoupled beats blocking at the paper's top scale (1.25x at
    # 8,192); below that the crossover has not happened yet in our
    # calibration (the alltoallv scan term is still small)
    if hi >= 8192:
        assert blocking.points[hi] / decoupled.points[hi] > 1.1
