"""The conservative-lookahead partitioned scheduler.

:class:`PartitionedScheduler` drives a :class:`~repro.parallel.engine.
ShardedEngine`: per-shard event lanes, advanced under a window of
width ``L`` (the lookahead bound) and merged in **exact global
(time, seq) order** — the serial heap's firing order, reconstructed
across lanes.  That strict merge is the determinism obligation
(DESIGN.md §16): every fault-free run is bit-identical to serial *by
construction*, because the sequence of fired callbacks — and therefore
every mutation of mailbox, NIC-timeline and process state — is
literally the serial sequence.

The merge is batched, not event-by-event: the loop picks the lane
whose head is globally minimal and drains it while its head stays
below the best head of every *other* lane (``limit``).  Lane-local
pushes (Delay resumptions, intra-shard sends) keep the drain going;
a cross-lane push raises the engine's ``_cross_pushed`` flag and
forces a re-merge, since another lane's head may now precede the
limit.  Rank programs burst lane-local events (compute, intra-shard
streams), so the common case amortizes the lane scan across the burst.

Window accounting is layered on top: barrier crossings, boundary
messages, minimum observed slack and invariant violations are
recorded per run and surfaced in ``SimResult.extras["parallel"]`` —
the observability a true multi-worker backend would need, kept honest
by the property tests even while execution stays in-process (why it
stays in-process: rank programs are live generators, which cannot
cross an OS process boundary, and the rendezvous sender-free edge has
zero lookahead — both documented in DESIGN.md §16).
"""

from __future__ import annotations

from heapq import heappop as _heappop
from typing import Any, Dict, Optional

from .partition import Shards

__all__ = ["PartitionedScheduler"]

_INF = float("inf")


class PartitionedScheduler:
    """Drain a sharded engine's lanes in exact global (time, seq) order,
    with conservative-window accounting.

    Parameters
    ----------
    shards:
        The rank partition (one lane per shard).
    window:
        Window width in virtual seconds — normally the lookahead bound
        from :func:`~repro.parallel.lookahead.lookahead_bound`.
        Non-positive or infinite widths disable window accounting (the
        merge itself needs no window for correctness).
    workers_requested:
        The opt-in's worker count, kept for reporting (the effective
        lane count may be clamped by node or group granularity).
    """

    def __init__(self, shards: Shards, window: float,
                 workers_requested: Optional[int] = None) -> None:
        self.shards = shards
        self.window = window
        self.workers_requested = workers_requested or len(shards)
        self.windows: int = 0
        self.batches: int = 0
        self.events: int = 0

    # ------------------------------------------------------------------
    def run(self, engine) -> float:
        from ..simmpi.errors import DeadlockError

        lanes = engine._lanes
        nlanes = len(lanes)
        engine.lookahead = self.window if 0 < self.window < _INF else 0.0
        pop = _heappop
        budget = engine.max_events
        if budget is None:
            budget = _INF
        fired = engine._events_fired
        now = engine.now
        window = self.window
        windowed = 0 < window < _INF
        window_end = (now + window) if windowed else _INF
        windows = 0
        batches = 0
        try:
            while True:
                # merge point: the lane with the global-minimum head
                # fires next; the best head of the *other* lanes bounds
                # how far it may drain before the next merge
                best = None
                best_lane = -1
                limit = None
                for i in range(nlanes):
                    lane_heap = lanes[i]
                    if lane_heap:
                        head = lane_heap[0]
                        if best is None or head < best:
                            limit = best
                            best = head
                            best_lane = i
                        elif limit is None or head < limit:
                            limit = head
                if best_lane < 0:
                    break
                if windowed and best[0] >= window_end:
                    # barrier: every lane has advanced to the window's
                    # edge; open the window containing the next event
                    windows += 1
                    skip = (best[0] - window_end) // window
                    window_end += (skip + 1) * window
                batches += 1
                lane_heap = lanes[best_lane]
                engine._active = best_lane
                engine._heap = lane_heap
                engine._cross_pushed = False
                if limit is None:
                    # sole populated lane: drain freely until a cross-
                    # lane push revives another lane
                    while lane_heap:
                        entry = pop(lane_heap)
                        fired += 1
                        if fired > budget:
                            raise RuntimeError(
                                f"event budget exceeded ({engine.max_events} "
                                "events); likely a livelock in a simulated "
                                "protocol"
                            )
                        time_ = entry[0]
                        if time_ > now:
                            now = time_
                            engine.now = time_
                        entry[2]()
                        if engine._cross_pushed:
                            break
                else:
                    while lane_heap and lane_heap[0] < limit:
                        entry = pop(lane_heap)
                        fired += 1
                        if fired > budget:
                            raise RuntimeError(
                                f"event budget exceeded ({engine.max_events} "
                                "events); likely a livelock in a simulated "
                                "protocol"
                            )
                        time_ = entry[0]
                        if time_ > now:
                            now = time_
                            engine.now = time_
                        entry[2]()
                        if engine._cross_pushed:
                            break
        finally:
            engine._events_fired = fired
            self.events = fired
            self.windows = windows
            self.batches = batches
        if engine._live > 0:
            blocked = {
                p.handle.name: p.blocked_label()
                for p in engine._procs
                if not p.daemon
                and p.blocked_on not in ("done", "error", "killed")
            }
            raise DeadlockError(blocked)
        return engine.now

    # ------------------------------------------------------------------
    def summary(self, engine) -> Dict[str, Any]:
        """The run's parallel accounting for ``extras["parallel"]``."""
        return {
            "workers": len(self.shards),
            "workers_requested": self.workers_requested,
            "shard_sizes": [len(s) for s in self.shards],
            "window": self.window if self.window < _INF else None,
            "windows": self.windows,
            "merge_batches": self.batches,
            "events": self.events,
            "boundary_messages": engine.boundary_messages,
            "reverse_wakes": engine.reverse_wakes,
            "min_slack": (engine.min_slack
                          if engine.min_slack < _INF else None),
            "invariant_violations": engine.invariant_violations,
        }
