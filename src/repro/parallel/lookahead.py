"""The conservative lookahead bound and the partition's explain report.

Conservative parallel DES rests on one inequality: an event a shard
sends to another shard lands at least ``L`` seconds of virtual time in
the future, where ``L`` is the minimum latency of any fabric link that
crosses the shard boundary.  Inside a window of width ``L`` each shard
can therefore advance independently — nothing a peer is concurrently
executing can affect it before the window barrier.

:func:`lookahead_bound` derives ``L`` from the
:class:`~repro.simmpi.network.Fabric` protocol's per-link latencies
(``_link(src, dst) -> (latency, bandwidth)``), probing one
representative rank per (shard, node) pair so fat-tree and dragonfly
fabrics report their true minimum hop cost, not the flat preset's.

One modeled edge is *not* latency-bounded: the rendezvous protocol's
sender wake-up.  When a receiver matches a rendezvous header it
completes the sender at ``transfer.sender_free`` — a time that can
precede ``match_time + L`` because the sender's NIC frees as soon as
the payload leaves it.  The sharded engine routes these as *reverse
wakes*, exempt from the window invariant and counted separately; the
strict global-order merge keeps them correct (DESIGN.md §16).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .partition import Shards

__all__ = ["cut_warnings", "lookahead_bound", "partition_report"]


def lookahead_bound(fabric, shards: Shards) -> float:
    """Minimum link latency across any pair of ranks in different
    shards; ``inf`` for a single shard (no boundary to bound)."""
    if len(shards) < 2:
        return float("inf")
    # one probe rank per (shard, node): latency is a node-pair property
    reps: List[Tuple[int, int]] = []  # (lane, representative rank)
    for lane, ranks in enumerate(shards):
        seen_nodes = set()
        for r in ranks:
            node = fabric.node_of(r)
            if node not in seen_nodes:
                seen_nodes.add(node)
                reps.append((lane, r))
    best = float("inf")
    link = fabric._link
    for i, (lane_a, ra) in enumerate(reps):
        for lane_b, rb in reps[i + 1:]:
            if lane_a == lane_b:
                continue
            lat = link(ra, rb)[0]
            if lat < best:
                best = lat
            lat = link(rb, ra)[0]
            if lat < best:
                best = lat
    return best


def cut_warnings(graph, plan, shards: Shards) -> List[str]:
    """Warn on shard cuts through eager-declared stream flows.

    An eager flow commits each element's transfer at send time; when a
    cut separates its producer group from its consumer group, every
    element crossing it is boundary traffic the window protocol must
    carry.  Rendezvous flows are cheap at the boundary (one header per
    element; the bulk transfer is latency-bounded), so only flows
    declared ``eager=True`` are flagged.
    """
    if graph is None or plan is None or len(shards) < 2:
        return []
    lane_of = {}
    for lane, ranks in enumerate(shards):
        for r in ranks:
            lane_of[r] = lane

    def lanes_of_group(name: str) -> set:
        spec = plan.groups.get(name)
        if spec is None:
            return set()
        return {lane_of[r] for r in spec.ranks if r in lane_of}

    warnings: List[str] = []
    for flow in graph.flows:
        if not getattr(flow, "eager", False):
            continue
        src_lanes = lanes_of_group(flow.src)
        dst_lanes = lanes_of_group(flow.dst)
        if not src_lanes or not dst_lanes or (src_lanes & dst_lanes):
            continue  # co-resident somewhere: not a clean cut
        warnings.append(
            f"shard cut severs eager flow {flow.name!r} "
            f"({flow.src} -> {flow.dst}): every element crosses the "
            "window boundary as an eager delivery")
    return warnings


def partition_report(shards: Shards, window: float,
                     warnings: Optional[List[str]] = None,
                     workers_requested: Optional[int] = None) -> str:
    """Human-readable account of the chosen partition — the block
    ``Simulation.explain()`` appends for parallel simulations."""
    lines = ["parallel:"]
    req = f" (requested {workers_requested})" \
        if workers_requested not in (None, len(shards)) else ""
    lines.append(f"  shards: {len(shards)}{req}")
    for lane, ranks in enumerate(shards):
        unit = "rank" if len(ranks) == 1 else "ranks"
        lines.append(f"    lane {lane}: {unit} {_span(ranks)} "
                     f"({len(ranks)} {unit})")
    if window == float("inf"):
        lines.append("  window: unbounded (single shard; no boundary links)")
    elif window <= 0:
        lines.append("  window: none (zero-latency boundary link; "
                     "merge runs unwindowed)")
    else:
        lines.append(f"  window: {window:.3g}s lookahead "
                     "(min cross-shard link latency)")
    for w in warnings or []:
        lines.append(f"  warning: {w}")
    return "\n".join(lines)


def _span(ranks: Tuple[int, ...]) -> str:
    """Compact rank-set rendering: contiguous runs as ``a-b``."""
    parts: List[str] = []
    i = 0
    while i < len(ranks):
        j = i
        while j + 1 < len(ranks) and ranks[j + 1] == ranks[j] + 1:
            j += 1
        parts.append(str(ranks[i]) if i == j else f"{ranks[i]}-{ranks[j]}")
        i = j + 1
    return ",".join(parts)
