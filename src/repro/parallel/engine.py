"""The sharded engine: per-shard event lanes behind the serial Engine API.

:class:`ShardedEngine` splits the single event heap into one *lane*
per shard.  The crucial trick is attribution without touching the hot
paths: before firing an event the :class:`~repro.parallel.scheduler.
PartitionedScheduler` points ``engine._heap`` at the owning lane's
heap, so every inlined push in the transport layer (``Delay``
resumptions, ``set_flag`` wakes, the eager send's twin pushes) lands
in the lane of the shard that is executing — no per-push branch, and
the serial engine's code runs unmodified.

Only genuinely cross-rank schedules need explicit routing, and the
transport gates them on ``world._lane_of_rank`` (a single pointer
compare, the same idiom as the fault and compile hooks):

``deliver_at(rank, time, cb)``
    A boundary message: route ``cb`` to ``rank``'s lane.  Checked
    against the window invariant — its slack (``time - now``) must be
    at least the lookahead bound when it crosses a shard boundary.

``wake_at(rank, time, cb)``
    A reverse wake (the rendezvous sender-free edge, a passive-target
    lock grant): routed like a delivery but exempt from the invariant,
    because ``sender_free`` may precede ``now + L`` by construction.

Both raise the ``_cross_pushed`` flag when they land outside the
active lane — the scheduler's batch-drain loop re-merges at that
point, which is what makes lane-local bursts safe to drain without
rescanning every lane head (DESIGN.md §16).
"""

from __future__ import annotations

from heapq import heapify, heappush as _heappush
from typing import Callable, List, Optional, Sequence, Tuple

from ..simmpi.engine import Engine, ProcessHandle, _HeapEntry
from .partition import ParallelError

__all__ = ["ShardedEngine"]


class ShardedEngine(Engine):
    """An :class:`~repro.simmpi.engine.Engine` whose heap is split into
    per-shard lanes, driven by a PartitionedScheduler."""

    def __init__(self) -> None:
        super().__init__()
        #: lane heaps; configure_lanes() replaces the placeholder single
        #: lane once the world (and thus the partition) exists
        self._lanes: List[List[_HeapEntry]] = [self._heap]
        self._lane_of_rank: Tuple[int, ...] = ()
        self._active: int = 0
        #: set when a push lands outside the active lane: the merge
        #: loop's signal that another lane's head may have moved earlier
        self._cross_pushed: bool = False
        #: window-invariant slack floor, installed by the scheduler
        self.lookahead: float = 0.0
        # boundary-traffic accounting (surfaced in extras["parallel"])
        self.boundary_messages: int = 0
        self.reverse_wakes: int = 0
        self.min_slack: float = float("inf")
        self.invariant_violations: int = 0

    # ------------------------------------------------------------------
    # lane management
    # ------------------------------------------------------------------
    def configure_lanes(self, nlanes: int,
                        lane_of_rank: Sequence[int]) -> None:
        """Install the partition.  Must run before any event is pushed
        (the launcher configures lanes right after building the world,
        before spawning rank processes)."""
        if self._heap or self._seq:
            raise ParallelError(
                "configure_lanes after events were scheduled; the "
                "partition must be installed on a pristine engine")
        self._lanes = [[] for _ in range(nlanes)]
        self._lane_of_rank = tuple(lane_of_rank)
        self._active = 0
        self._heap = self._lanes[0]

    def activate(self, lane: int) -> None:
        """Point the inlined-push surface (``_heap``) at ``lane``."""
        self._active = lane
        self._heap = self._lanes[lane]

    def spawn_on(self, lane: int, gen, name: str = "proc",
                 daemon: bool = False) -> ProcessHandle:
        """Spawn with the initial resume event in ``lane`` (the
        launcher's per-rank entry; child Spawn syscalls inherit the
        active lane of their spawner)."""
        prev = self._active
        self.activate(lane)
        try:
            return self.spawn(gen, name, daemon=daemon)
        finally:
            self.activate(prev)

    # ------------------------------------------------------------------
    # cross-shard routing (the transport's gated slow path)
    # ------------------------------------------------------------------
    def deliver_at(self, rank: int, time: float,
                   callback: Callable[[], None]) -> None:
        """Schedule a boundary message into ``rank``'s lane."""
        now = self.now
        if time < now:
            time = now
        lane = self._lane_of_rank[rank]
        self._seq += 1
        _heappush(self._lanes[lane], (time, self._seq, callback))
        if lane != self._active:
            self._cross_pushed = True
            self.boundary_messages += 1
            slack = time - now
            if slack < self.min_slack:
                self.min_slack = slack
            # the conservative invariant: a boundary delivery must land
            # at least one lookahead window in the future.  The slack is
            # a difference of absolute virtual times, so its round-off
            # scales with |now| (ULP of a double at t=32s is ~7e-15);
            # the tolerance must scale the same way or long runs count
            # pure float noise as violations
            if slack < self.lookahead - 1e-12 * max(1.0, now):
                self.invariant_violations += 1

    def wake_at(self, rank: int, time: float,
                callback: Callable[[], None]) -> None:
        """Schedule a reverse wake into ``rank``'s lane (invariant-exempt)."""
        now = self.now
        if time < now:
            time = now
        lane = self._lane_of_rank[rank]
        self._seq += 1
        _heappush(self._lanes[lane], (time, self._seq, callback))
        if lane != self._active:
            self._cross_pushed = True
            self.reverse_wakes += 1

    # ------------------------------------------------------------------
    # overrides
    # ------------------------------------------------------------------
    def kill(self, handle: ProcessHandle,
             error: Optional[BaseException] = None) -> bool:
        """Serial :meth:`Engine.kill` purges ``self._heap``; here the
        victim's stale resumptions may sit in any lane, so purge all of
        them (in place — the scheduler holds lane list references)."""
        proc = self._proc_of_handle.get(handle)
        if proc is None:
            for proc in self._procs:
                if proc.handle is handle:
                    break
            else:
                raise ValueError(
                    f"kill: unknown process handle {handle.name!r}")
        if proc.blocked_on in ("done", "error", "killed"):
            return False
        proc.gen.close()
        proc.blocked_on = "killed"
        handle.error = error
        if not proc.daemon:
            self._live -= 1
        for lane_heap in self._lanes:
            filtered = [e for e in lane_heap if e[2] is not proc.resume]
            if len(filtered) != len(lane_heap):
                lane_heap[:] = filtered
                heapify(lane_heap)
        self.set_flag(handle.done_flag, None)
        return True
