"""repro.parallel: conservative-lookahead parallel discrete-event engine.

Shards the simulator itself.  The world's ranks are partitioned into
*shards* (from the machine's node map, a compiled plan's group blocks,
or an explicit pin); each shard's events live in their own lane of a
:class:`ShardedEngine`, advanced by the :class:`PartitionedScheduler`
inside conservative windows bounded by the minimum cross-shard fabric
link latency, with boundary messages routed between lanes at their
modeled arrival times.  Execution merges lanes in exact global
``(time, seq)`` order, so every fault-free run is bit-identical to the
serial engine — verified against the committed goldens and by the
randomized serial==parallel==oracle property suite.

Opt in per run (``run(..., parallel=2)``), per simulation
(``Simulation(..., parallel=True)``) or per study (the
``machine.parallel`` sub-key); fault plans and oracle slow-path
injection bypass the parallel path cleanly, mirroring ``compile=``.
See DESIGN.md §16 for the Scheduler protocol and the determinism
obligations.
"""

from .engine import ShardedEngine
from .lookahead import cut_warnings, lookahead_bound, partition_report
from .options import ParallelOptions, parallel_key, resolve_parallel
from .partition import (
    ParallelError,
    lane_map,
    partition_ranks,
    shards_from_blocks,
    shards_from_nodes,
    validate_shards,
)
from .scheduler import PartitionedScheduler

__all__ = [
    "ParallelError",
    "ParallelOptions",
    "PartitionedScheduler",
    "ShardedEngine",
    "cut_warnings",
    "lane_map",
    "lookahead_bound",
    "parallel_key",
    "partition_ranks",
    "partition_report",
    "resolve_parallel",
    "shards_from_blocks",
    "shards_from_nodes",
    "validate_shards",
]
