"""Resolution of the ``parallel=`` opt-in into :class:`ParallelOptions`.

Accepted spellings, mirroring ``compile=``'s shapes::

    parallel=True                      # $REPRO_PAR_WORKERS or 2 shards
    parallel=4                         # 4 shards
    parallel={"workers": 4}            # dict form (study machine specs)
    parallel={"workers": 2, "window": 5e-6}
    parallel=ParallelOptions(workers=2)

``window`` overrides the conservative lookahead bound (normally derived
from the fabric's minimum cross-shard link latency); ``shards`` pins an
explicit rank partition (a list of rank lists), bypassing the
placement/plan-derived partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..envcfg import env_int
from .partition import ParallelError

__all__ = ["ParallelOptions", "parallel_key", "resolve_parallel"]

#: dict-form keys resolve_parallel accepts
_OPTION_KEYS = ("workers", "window", "shards")


@dataclass(frozen=True)
class ParallelOptions:
    """Resolved knobs of a partitioned run."""

    workers: int = 2                    # shard (lane) count target
    window: Optional[float] = None      # lookahead override (seconds)
    shards: Optional[Tuple[Tuple[int, ...], ...]] = None  # explicit partition

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or isinstance(self.workers, bool) \
                or self.workers < 1:
            raise ParallelError(
                f"parallel workers must be a positive integer, "
                f"got {self.workers!r}")
        if self.window is not None and not self.window > 0:
            raise ParallelError(
                f"parallel window must be a positive duration in seconds, "
                f"got {self.window!r}")


def _default_workers() -> int:
    """Worker count when the opt-in does not name one: the
    ``$REPRO_PAR_WORKERS`` env knob, else 2."""
    return env_int("REPRO_PAR_WORKERS", 2,
                   what="integer worker count", error=ParallelError)


def resolve_parallel(value: Any) -> Optional[ParallelOptions]:
    """Normalize any accepted ``parallel=`` spelling; None/False → None."""
    if value is None or value is False:
        return None
    if value is True:
        return ParallelOptions(workers=_default_workers())
    if isinstance(value, ParallelOptions):
        return value
    if isinstance(value, int):
        return ParallelOptions(workers=value)
    if isinstance(value, dict):
        unknown = set(value) - set(_OPTION_KEYS)
        if unknown:
            raise ParallelError(
                f"parallel spec has unknown keys {sorted(unknown)}; "
                f"allowed: {list(_OPTION_KEYS)}")
        shards = value.get("shards")
        if shards is not None:
            try:
                shards = tuple(tuple(int(r) for r in shard)
                               for shard in shards)
            except (TypeError, ValueError):
                raise ParallelError(
                    f"parallel shards must be a list of rank lists, "
                    f"got {value['shards']!r}") from None
        workers = value.get("workers")
        if workers is None:
            workers = len(shards) if shards is not None \
                else _default_workers()
        window = value.get("window")
        if window is not None:
            try:
                window = float(window)
            except (TypeError, ValueError):
                raise ParallelError(
                    f"parallel window must be a number of seconds, "
                    f"got {value['window']!r}") from None
        return ParallelOptions(workers=workers, window=window, shards=shards)
    raise ParallelError(
        f"parallel must be True, a worker count, an options dict or "
        f"ParallelOptions, got {type(value).__name__}")


def parallel_key(opts: Optional[ParallelOptions]) -> Optional[Dict[str, Any]]:
    """Canonical JSON form of the opt-in — what a study machine spec's
    ``parallel`` sub-key hashes into cache keys."""
    if opts is None:
        return None
    key: Dict[str, Any] = {"workers": opts.workers}
    if opts.window is not None:
        key["window"] = opts.window
    if opts.shards is not None:
        key["shards"] = [list(s) for s in opts.shards]
    return key
