"""Rank partitioning: cut the world into shards (execution lanes).

A *shard* is the set of ranks one parallel worker lane advances.  Three
sources, in precedence order:

1. explicit ``shards`` on :class:`~repro.parallel.ParallelOptions`;
2. the machine's placement node map (:func:`shards_from_nodes`) —
   whole nodes are assigned to shards so the cut never splits the
   cheap intra-node links;
3. a compiled plan's group blocks (:func:`shards_from_blocks`) — the
   declarative front-end cuts on group boundaries so a pipeline stage
   never straddles a shard.

All partitioners are deterministic pure functions of their inputs: the
shard layout enters no virtual-time decision (the merge executes in
global event order regardless), but a stable layout keeps the window /
boundary-traffic statistics reproducible run to run.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..simmpi.errors import SimMPIError

__all__ = [
    "ParallelError",
    "lane_map",
    "partition_ranks",
    "shards_from_blocks",
    "shards_from_nodes",
    "validate_shards",
]

Shards = Tuple[Tuple[int, ...], ...]


class ParallelError(SimMPIError):
    """Invalid parallel options, partition or window."""


def partition_ranks(nprocs: int, nshards: int) -> Shards:
    """Contiguous block partition: shard sizes differ by at most one."""
    if nprocs < 1:
        raise ParallelError(f"nprocs must be positive, got {nprocs}")
    nshards = max(1, min(nshards, nprocs))
    base, extra = divmod(nprocs, nshards)
    shards: List[Tuple[int, ...]] = []
    start = 0
    for i in range(nshards):
        size = base + (1 if i < extra else 0)
        shards.append(tuple(range(start, start + size)))
        start += size
    return tuple(shards)


def shards_from_nodes(node_of: Sequence[int], nshards: int) -> Shards:
    """Partition whole nodes across shards, balancing rank counts.

    Nodes are taken in node-id order and dealt to contiguous shard
    chunks whose rank totals stay within one node of even, so under
    block placement this degenerates to :func:`partition_ranks` on node
    boundaries.  Whole nodes are preferred because the intra-node link
    is the cheapest in the fabric and a cut through it would pin the
    lookahead window to it — but when the world spans fewer nodes than
    the requested shard count, the partition falls back to splitting
    ranks directly (the window then honestly rests on the intra-node
    latency rather than the shard count silently collapsing).
    """
    nprocs = len(node_of)
    if nprocs < 1:
        raise ParallelError("node map is empty")
    ranks_of_node: dict = {}
    for rank, node in enumerate(node_of):
        ranks_of_node.setdefault(node, []).append(rank)
    nodes = sorted(ranks_of_node)
    if len(nodes) < nshards:
        return partition_ranks(nprocs, nshards)
    nshards = max(1, min(nshards, len(nodes)))
    # contiguous node chunks with rank-balanced cut points
    shards: List[Tuple[int, ...]] = []
    target = nprocs / nshards
    chunk: List[int] = []
    taken = 0
    remaining_shards = nshards
    for i, node in enumerate(nodes):
        chunk.extend(ranks_of_node[node])
        nodes_left = len(nodes) - i - 1
        shards_left = remaining_shards - 1
        # close the chunk once it reaches its share, but never leave
        # fewer nodes than shards still to fill
        if shards_left and (taken + len(chunk) >= target * len(shards)
                            + target or nodes_left == shards_left):
            shards.append(tuple(sorted(chunk)))
            taken += len(chunk)
            chunk = []
            remaining_shards -= 1
    if chunk:
        shards.append(tuple(sorted(chunk)))
    return tuple(shards)


def shards_from_blocks(blocks: Sequence[Tuple[str, int, int]],
                       nprocs: int, nshards: int) -> Shards:
    """Partition on plan group blocks ``(name, first_rank, size)``.

    Whole groups are dealt greedily (largest first) to the least-loaded
    shard — ties break toward the lowest shard index — so a pipeline
    stage never straddles a shard boundary.  Ranks outside every block
    form one trailing pseudo-group.  Degenerates to
    :func:`partition_ranks` when no blocks are given.
    """
    if not blocks:
        return partition_ranks(nprocs, nshards)
    covered = set()
    spans: List[Tuple[str, Tuple[int, ...]]] = []
    for name, first, size in blocks:
        ranks = tuple(range(first, first + size))
        for r in ranks:
            if r < 0 or r >= nprocs:
                raise ParallelError(
                    f"group block {name!r} rank {r} outside world "
                    f"0..{nprocs - 1}")
            if r in covered:
                raise ParallelError(
                    f"group block {name!r} overlaps an earlier block "
                    f"at rank {r}")
            covered.add(r)
        spans.append((name, ranks))
    rest = tuple(r for r in range(nprocs) if r not in covered)
    if rest:
        spans.append(("(unassigned)", rest))
    nshards = max(1, min(nshards, len(spans)))
    # LPT: largest span first, stable on (size desc, first rank asc)
    order = sorted(spans, key=lambda s: (-len(s[1]), s[1][0]))
    loads = [0] * nshards
    members: List[List[int]] = [[] for _ in range(nshards)]
    for _name, ranks in order:
        lane = min(range(nshards), key=lambda i: (loads[i], i))
        members[lane].extend(ranks)
        loads[lane] += len(ranks)
    return tuple(tuple(sorted(m)) for m in members if m)


def validate_shards(shards: Shards, nprocs: int) -> Shards:
    """Check a (possibly user-pinned) partition covers the world exactly
    once; returns it with each shard's ranks sorted."""
    if not shards:
        raise ParallelError("parallel shards must name at least one shard")
    seen = set()
    for shard in shards:
        if not shard:
            raise ParallelError("parallel shards must all be non-empty")
        for r in shard:
            if r < 0 or r >= nprocs:
                raise ParallelError(
                    f"shard rank {r} outside world 0..{nprocs - 1}")
            if r in seen:
                raise ParallelError(
                    f"rank {r} appears in more than one shard")
            seen.add(r)
    if len(seen) != nprocs:
        missing = sorted(set(range(nprocs)) - seen)
        raise ParallelError(
            f"shards cover {len(seen)}/{nprocs} ranks; "
            f"missing {missing[:8]}{'...' if len(missing) > 8 else ''}")
    return tuple(tuple(sorted(s)) for s in shards)


def lane_map(shards: Shards, nprocs: int) -> Tuple[int, ...]:
    """Flat ``rank -> lane index`` lookup table."""
    lanes = [0] * nprocs
    for lane, shard in enumerate(shards):
        for r in shard:
            lanes[r] = lane
    return tuple(lanes)
