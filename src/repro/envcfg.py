"""Validation for the ``$REPRO_*`` environment knobs.

Every environment variable the toolkit reads goes through one of these
helpers so a typo fails the same way everywhere: a named error that
quotes the variable and the offending value (the behavior
``$REPRO_STUDY_JOBS`` established in the study runner), never a bare
``ValueError: invalid literal for int()`` with no hint of where the
string came from.

    >>> os.environ["REPRO_PAR_WORKERS"] = "two"
    >>> env_int("REPRO_PAR_WORKERS", what="worker count")
    EnvVarError: $REPRO_PAR_WORKERS must be an integer worker count,
    got 'two'

Callers that surface their own error taxonomy (the study runner's
``StudyError``) pass it as ``error=``; the message shape stays shared.
"""

from __future__ import annotations

import os
from typing import List, Optional, Type

__all__ = ["EnvVarError", "env_int", "env_int_list"]


class EnvVarError(ValueError):
    """A ``$REPRO_*`` variable holds a value that does not parse."""


def env_int(name: str, default: Optional[int] = None, *,
            what: str = "integer",
            error: Type[Exception] = EnvVarError) -> Optional[int]:
    """``int(os.environ[name])`` with a named error on garbage.

    Unset or blank returns ``default``.  A non-integer value raises
    ``error`` (default :class:`EnvVarError`) naming the variable and
    quoting the offending string.
    """
    raw = (os.environ.get(name) or "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise error(
            f"${name} must be an {what}, got {raw!r}") from None


def env_int_list(name: str, *,
                 what: str = "comma-separated integer list",
                 error: Type[Exception] = EnvVarError) -> Optional[List[int]]:
    """Parse ``$name`` as a comma-separated integer list.

    Unset or blank returns None.  Non-integer items — or a value whose
    items are all blank (``","``) — raise ``error`` naming the variable
    and quoting the raw value, so ``REPRO_POINTS=32,6a4`` fails loudly
    instead of deep inside ``int()``.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    items = [x.strip() for x in raw.split(",") if x.strip()]
    if not items:
        raise error(
            f"${name} must be a {what}, got {raw!r} "
            "(parsed to an empty list)")
    try:
        return [int(x) for x in items]
    except ValueError:
        raise error(
            f"${name} must be a {what}, got {raw!r}") from None
