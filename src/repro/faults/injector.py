"""Deterministic fault injection against a running simulation.

The :class:`FaultController` is installed by the launcher when a run
carries a :class:`~repro.faults.plan.FaultPlan`.  It owns the whole
crash lifecycle (see DESIGN.md §12):

1. **Crash** — at the event's virtual time the rank's process is killed
   through the engine's :meth:`~repro.simmpi.engine.Engine.kill`
   primitive: the generator closes, the done flag records the crash
   time, the heap keeps draining.
2. **Detection** — ``detection_latency`` later the failure becomes
   *known* (modeling an asynchronous ULFM-style failure detector).  The
   controller then resolves every operation the crash doomed:

   * rendezvous headers parked in the dead rank's mailbox poison their
     sender requests (the sender wakes with
     :class:`~repro.simmpi.errors.ProcessFailedError`);
   * posted receives of surviving members of every communicator the
     dead rank belonged to are cancelled — exact receives from the dead
     rank *and* wildcard receives (ULFM's ``PROC_FAILED_PENDING``),
     which keep raising on re-post until the communicator calls
     :meth:`~repro.simmpi.comm.Comm.failure_ack`;
   * new sends to the dead rank raise
     :class:`~repro.simmpi.errors.RevokedError` immediately.

Everything is edge-triggered at fixed virtual times over deterministic
structures (communicators in registration order, mailboxes by rank), so
a faulted run replays bit-identically for a fixed (seed, plan).

:class:`FaultyNetwork` implements :class:`~repro.faults.plan.
LinkDegrade` on the flat fabric: transfers injected inside a degradation
window between the two nodes run at ``bandwidth / bw_factor``.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from ..simmpi.config import MachineConfig
from ..simmpi.errors import FaultSignal, ProcessFailedError, RevokedError
from ..simmpi.matching import ANY_SOURCE
from ..simmpi.network import Network, TransferTiming
from .plan import FaultError, FaultPlan

__all__ = ["FaultController", "FaultyNetwork"]


class FaultController:
    """Schedules a plan's events and resolves what a crash dooms."""

    def __init__(self, engine, world, plan: FaultPlan):
        self.engine = engine
        self.world = world
        self.plan = plan
        #: global rank -> crash time (set the instant the rank dies)
        self.failed: Dict[int, float] = {}
        #: global rank -> detection time (set when survivors learn)
        self.detected: Dict[int, float] = {}
        #: detection epoch; bumps once per detected failure so
        #: communicators and streams can poll for news cheaply
        self.version = 0
        self.has_slowdowns = bool(plan.slowdowns)
        self._windows: Dict[int, List[Tuple[float, float, float]]] = {}
        for ev in plan.slowdowns:
            self._windows.setdefault(ev.rank, []).append(
                (ev.t0, ev.t1, ev.factor))
        for windows in self._windows.values():
            windows.sort()
        self._contexts: Dict[int, Tuple[Tuple[int, ...], Tuple[int, int]]] = {}
        #: intercommunicators, kept separate because the detection sweep
        #: crosses groups: a dead rank in one group dooms receives posted
        #: by the *other* group.  context -> (group, other group, contexts)
        self._inter_contexts: Dict[
            int, Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, int]]] = {}
        #: context ids of revoked communicators (ULFM MPI_Comm_revoke)
        self.revoked: set = set()
        #: (channel context, stream tag) -> local ranks of producers
        #: that have terminated that stream.  Stands in for the ack/
        #: checkpoint metadata a real recovery protocol persists: the
        #: successor must not wait for a TERM a producer already sent
        #: to the dead consumer (it would never be re-sent).
        self.stream_terms: Dict[Tuple[int, int], set] = {}
        self._handles = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def register_comm(self, comm) -> None:
        """Record a communicator's membership for the detection sweep
        (called from ``Comm.__init__`` on fault-mode runs; the first
        member instance wins, they are identical by construction)."""
        remote = getattr(comm, "remote_ranks", None)
        if remote is not None:
            # either side may register first; the sweep treats the two
            # groups symmetrically, so the stored orientation is moot
            if comm.context not in self._inter_contexts:
                self._inter_contexts[comm.context] = (
                    comm.ranks, remote, (comm.context, comm.context_coll))
            return
        if comm.context not in self._contexts:
            self._contexts[comm.context] = (
                comm.ranks, (comm.context, comm.context_coll))

    def note_stream_terminated(self, context: int, tag: int,
                               producer_local: int) -> None:
        """A producer finished terminating stream ``tag`` on channel
        ``context`` (recorded by the stream's fault-mode terminate)."""
        self.stream_terms.setdefault((context, tag), set()).add(
            producer_local)

    def terminated_producers(self, context: int, tag: int) -> set:
        return self.stream_terms.get((context, tag), set())

    def install(self, handles) -> None:
        """Schedule every planned event (called once by the launcher,
        after the rank processes are spawned)."""
        self._handles = handles
        for ev in self.plan.crashes:
            self.engine.call_at(ev.time, partial(self._crash, ev.rank))

    # ------------------------------------------------------------------
    # the crash lifecycle
    # ------------------------------------------------------------------
    def _crash(self, rank: int) -> None:
        now = self.engine.now
        self.failed[rank] = now
        self.engine.kill(
            self._handles[rank],
            ProcessFailedError(f"rank {rank} crashed at t={now:.6g}",
                               rank=rank))
        self.engine.call_after(self.plan.detection_latency,
                               partial(self._detect, rank))

    def _detect(self, rank: int) -> None:
        now = self.engine.now
        self.detected[rank] = now
        self.version += 1
        exc = ProcessFailedError(
            f"rank {rank} (global) failed at t={self.failed[rank]:.6g}, "
            f"detected at t={now:.6g}", rank=rank)
        engine = self.engine
        mailboxes = self.world.mailboxes
        # rendezvous senders parked in the dead rank's mailbox: their
        # headers will never match, poison the sender requests
        for env in mailboxes[rank].unexpected_envelopes():
            sreq = getattr(env, "sender_req", None)
            if sreq is not None and not sreq.is_set:
                engine.set_flag(sreq, FaultSignal(exc))
        # posted receives of surviving members in every communicator the
        # dead rank belongs to: exact receives from it are doomed,
        # wildcard receives are interrupted (PROC_FAILED_PENDING)
        for key in sorted(self._contexts):
            ranks, contexts = self._contexts[key]
            if rank not in ranks:
                continue
            dead_local = ranks.index(rank)
            for g in ranks:
                if g == rank or g in self.failed:
                    continue
                victims = mailboxes[g].cancel_posted(contexts, dead_local)
                for req in victims:
                    engine.set_flag(req, FaultSignal(exc))
        # intercommunicators: a dead rank is addressed by its rank in its
        # OWN group, and the doomed receives were posted by the OTHER
        # group — so the sweep crosses sides
        for key in sorted(self._inter_contexts):
            group_a, group_b, contexts = self._inter_contexts[key]
            if rank in group_a:
                dead_local, victims_of = group_a.index(rank), group_b
            elif rank in group_b:
                dead_local, victims_of = group_b.index(rank), group_a
            else:
                continue
            for g in victims_of:
                if g in self.failed:
                    continue
                victims = mailboxes[g].cancel_posted(contexts, dead_local)
                for req in victims:
                    engine.set_flag(req, FaultSignal(exc))

    # ------------------------------------------------------------------
    # communicator revocation (ULFM MPI_Comm_revoke)
    # ------------------------------------------------------------------
    def revoke(self, comm, contexts: Optional[Tuple[int, ...]] = None
               ) -> None:
        """Revoke ``comm``: every pending receive of every surviving
        member resolves to :class:`RevokedError`, and new operations on
        its contexts fail immediately — the survivors' tool for breaking
        out of a collective a failure left half-completed.

        ``contexts`` restricts the revocation (the channel-teardown
        degrade revokes only the *collective* context, so in-flight
        stream traffic on the p2p context keeps flowing)."""
        if contexts is None:
            contexts = (comm.context, comm.context_coll)
        todo = tuple(c for c in contexts if c not in self.revoked)
        if not todo:
            return
        self.revoked.update(todo)
        self.version += 1
        exc = RevokedError(
            f"communicator {comm.name!r} revoked", rank=comm.rank)
        engine = self.engine
        mailboxes = self.world.mailboxes
        # on an intercomm both groups post receives on the revoked
        # context; sweep every member of either side
        members = comm.ranks + getattr(comm, "remote_ranks", ())
        for g in members:
            if g in self.failed:
                continue
            for req in mailboxes[g].cancel_posted(todo, None):
                engine.set_flag(req, FaultSignal(exc))

    # ------------------------------------------------------------------
    # gates the transport consults (fault-mode runs only)
    # ------------------------------------------------------------------
    def check_send(self, gdst: int, context: int) -> None:
        if context in self.revoked:
            raise RevokedError(
                f"send on a revoked communicator (context {context})")
        if gdst in self.detected:
            raise RevokedError(
                f"send to failed rank {gdst} (global), crashed at "
                f"t={self.failed[gdst]:.6g}", rank=gdst)

    def check_recv(self, comm, source: int) -> None:
        if self.revoked and comm.context in self.revoked:
            raise RevokedError(
                f"receive on revoked communicator {comm.name!r}")
        if not self.detected:
            return
        detected = self.detected
        # intercomm receives are addressed by remote-group rank; the
        # peers whose death dooms them live in the remote group
        peers = comm.remote_ranks if comm.is_inter else comm.ranks
        if source == ANY_SOURCE:
            if comm._fault_acked >= self.version:
                return
            dead = [i for i, g in enumerate(peers) if g in detected]
            if dead:
                raise ProcessFailedError(
                    f"wildcard receive on {comm.name!r} interrupted: "
                    f"{'remote ' if comm.is_inter else ''}member rank(s) "
                    f"{dead} failed; call failure_ack() "
                    "to continue receiving from the survivors",
                    rank=dead[0])
            comm._fault_acked = self.version
            return
        g = peers[source]
        if g in detected:
            raise ProcessFailedError(
                f"receive from rank {source} on {comm.name!r}: peer "
                f"(global rank {g}) failed at t={self.failed[g]:.6g}",
                rank=source)

    # ------------------------------------------------------------------
    # straggler windows
    # ------------------------------------------------------------------
    def stretch(self, rank: int, start: float, duration: float) -> float:
        """Wall duration of ``duration`` compute seconds starting at
        ``start`` under the rank's slowdown windows (piecewise: the part
        of the charge overlapping a window runs ``factor``x slower)."""
        windows = self._windows.get(rank)
        if not windows or duration <= 0:
            return duration
        remaining = duration     # nominal seconds still to burn
        t = start
        for t0, t1, factor in windows:
            if remaining <= 0:
                break
            if t1 <= t:
                continue
            if t < t0:
                gap = t0 - t
                if remaining <= gap:
                    t += remaining
                    remaining = 0.0
                    break
                t = t0
                remaining -= gap
            span = t1 - t
            need = remaining * factor
            if need <= span:
                t += need
                remaining = 0.0
                break
            t = t1
            remaining -= span / factor
        if remaining > 0:
            t += remaining
        return t - start

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """What happened, for ``SimResult.extras["faults"]``."""
        return {
            "failed": dict(self.failed),
            "detected": dict(self.detected),
            "events": len(self.plan.events),
            "detection_latency": self.plan.detection_latency,
        }


class FaultyNetwork(Network):
    """The flat fabric with :class:`LinkDegrade` windows applied.

    Transfers between the affected node pair whose injection falls
    inside a window serialize at ``bandwidth / bw_factor``; everything
    else takes the byte-identical parent path.
    """

    def __init__(self, config: MachineConfig, nranks: int, plan: FaultPlan):
        super().__init__(config, nranks)
        self._degraded: Dict[Tuple[int, int],
                             List[Tuple[float, float, float]]] = {}
        for ev in plan.link_events:
            key = (min(ev.node_a, ev.node_b), max(ev.node_a, ev.node_b))
            self._degraded.setdefault(key, []).append(
                (ev.t0, ev.t1, ev.bw_factor))
        for windows in self._degraded.values():
            windows.sort()

    def _bw_factor(self, node_s: int, node_d: int, when: float) -> float:
        key = (node_s, node_d) if node_s < node_d else (node_d, node_s)
        windows = self._degraded.get(key)
        if windows:
            for t0, t1, factor in windows:
                if t0 <= when < t1:
                    return factor
        return 1.0

    def transfer(self, src: int, dst: int, nbytes: int, ready: float
                 ) -> TransferTiming:
        if src < 0 or dst < 0:
            raise ValueError(f"negative rank in transfer: {src}->{dst}")
        if src >= self._size or dst >= self._size:
            self._grow((src if src > dst else dst) + 1)
        node = self._node
        if src == dst or node[src] == node[dst]:
            return Network.transfer(self, src, dst, nbytes, ready)
        inject = self._tx_free[src]
        if ready > inject:
            inject = ready
        factor = self._bw_factor(node[src], node[dst], inject)
        if factor == 1.0:
            return Network.transfer(self, src, dst, nbytes, ready)
        latency, bandwidth = self._inter_link
        serial = nbytes / (bandwidth / factor)
        sender_free = inject + serial
        self._tx_free[src] = sender_free
        arrival = sender_free + latency
        delivered = self._rx_free[dst]
        if arrival > delivered:
            delivered = arrival
        delivered += serial
        self._rx_free[dst] = delivered
        self.messages_sent += 1
        self.bytes_sent += nbytes
        return TransferTiming(inject, sender_free, arrival, delivered)
