"""``repro.faults`` — deterministic fault injection and recovery.

The paper's decoupling argument is ultimately a resilience argument:
dedicated helper groups isolate I/O and communication stages so the
compute group can keep marching.  This subsystem makes failure a
first-class, *declarative* experiment axis:

* :class:`FaultPlan` — JSON-round-trippable typed events
  (:class:`RankCrash`, :class:`Slowdown`, :class:`LinkDegrade`), wired
  through ``launcher.run(faults=)``, ``api.Simulation(faults=)`` and
  the ``faults`` machine-spec sub-key of :mod:`repro.study` (cache keys
  incorporate the fault spec automatically).
* an engine-level poison/cancel contract (DESIGN.md §12): a crashed
  rank's pending sends, matches and collectives resolve to
  :class:`~repro.simmpi.errors.ProcessFailedError` /
  :class:`~repro.simmpi.errors.RevokedError` instead of deadlocking
  the event heap — ULFM semantics, catchable inside the simulated rank.
* :class:`Checkpoint` — stream-level recovery: consumers snapshot
  operator state through the filesystem model and ack producers, which
  replay un-acked elements to a deterministic successor when a helper
  group loses a member.

Faulted runs stay pure functions of (programs, seeds, fault plan);
fault-free runs are bit-identical to a build without this package.
"""

from .apps import (
    CGHaloRecoveryConfig,
    PcommRecoveryConfig,
    cg_halo_recovery,
    pcomm_recovery,
)
from .injector import FaultController, FaultyNetwork
from .plan import (
    Checkpoint,
    FaultError,
    FaultPlan,
    LinkDegrade,
    RankCrash,
    Slowdown,
    resolve_faults,
)

__all__ = [
    "CGHaloRecoveryConfig",
    "Checkpoint",
    "FaultController",
    "FaultError",
    "FaultPlan",
    "FaultyNetwork",
    "LinkDegrade",
    "PcommRecoveryConfig",
    "RankCrash",
    "Slowdown",
    "cg_halo_recovery",
    "pcomm_recovery",
    "resolve_faults",
]
