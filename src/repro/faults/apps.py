"""Recovery-enabled case-study workloads (the ``fig_recovery`` apps).

Two registry apps reproduce the *upward funnel* of the paper's CG and
iPIC3D case studies with stream-level recovery enabled: a compute group
streams elements (halo faces / particle-exit batches) into a decoupled
helper group that processes them on the fly, checkpointing its state
every ``checkpoint_interval`` elements.  Killing a helper rank
mid-stream (``machine.faults`` in a study, ``faults=`` anywhere else)
exercises the whole recovery path: failure detection, successor
adoption, checkpoint restore and un-acked replay.

The cost constants mirror the originating apps
(:class:`~repro.apps.cg.config.CGConfig` /
:class:`~repro.apps.ipic3d.config.IPICConfig`): CG streams
``block_points^2`` double faces and pays the halo group's per-byte
aggregation cost; pcomm streams 2048-particle exit batches and pays the
exchange group's vectorized per-particle handling cost.  The producer
side carries deterministic per-element jitter so the helper group has
imbalance to absorb — the same role noise plays in the originals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator

from ..api import StreamGraph
from ..simmpi.comm import Comm
from ..simmpi.datatypes import SizedPayload
from ..simmpi.engine import Delay
from .plan import Checkpoint

__all__ = [
    "CGHaloRecoveryConfig",
    "PcommRecoveryConfig",
    "cg_halo_recovery",
    "pcomm_recovery",
]


@dataclass(frozen=True)
class _RecoveryConfig:
    """Shared shape of the two recovery workloads."""

    nprocs: int
    alpha: float = 0.125
    elements_per_producer: int = 120
    element_bytes: int = 0            # overridden by the subclasses
    produce_seconds: float = 0.0
    handle_seconds: float = 0.0
    #: deterministic per-(rank, element) produce jitter amplitude
    jitter: float = 0.3
    #: elements between consumer state snapshots (0 = no checkpointing)
    checkpoint_interval: int = 32
    checkpoint_bytes: int = 1 << 20

    def __post_init__(self):
        if self.nprocs < 2:
            raise ValueError("recovery workloads need at least 2 ranks")
        if not (0.0 < self.alpha < 1.0):
            raise ValueError("alpha must be in (0, 1)")
        if self.elements_per_producer < 1:
            raise ValueError("elements_per_producer must be >= 1")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0 (0 = off)")

    @property
    def n_helper(self) -> int:
        return max(1, round(self.alpha * self.nprocs))

    @property
    def n_compute(self) -> int:
        return self.nprocs - self.n_helper

    def checkpoint(self):
        if self.checkpoint_interval == 0:
            return None
        return Checkpoint(interval=self.checkpoint_interval,
                          state_nbytes=self.checkpoint_bytes)


@dataclass(frozen=True)
class CGHaloRecoveryConfig(_RecoveryConfig):
    """CG-shaped funnel: compute ranks stream 120^2 double faces; the
    halo group aggregates at CGConfig's per-byte memcpy cost."""

    element_bytes: int = 120 * 120 * 8                   # one face
    #: inner-Laplacian slice between faces, paced so the helper group
    #: runs near saturation (its service rate is the recovery surface)
    produce_seconds: float = 2.0e-4
    #: element_bytes * CGConfig.aggregate_seconds_per_byte
    handle_seconds: float = 120 * 120 * 8 * 2.0e-10


@dataclass(frozen=True)
class PcommRecoveryConfig(_RecoveryConfig):
    """pcomm-shaped funnel: movers stream 2048-particle exit batches;
    the exchange group pays IPICConfig's vectorized handling cost."""

    elements_per_producer: int = 200
    element_bytes: int = 2048 * 64 + 24                  # one exit batch
    #: mover slice per batch (2048 particles at 5.3e-7 s would be the
    #: full mover; batches interleave with it, so a fraction paces flow)
    produce_seconds: float = 1.5e-4
    #: 2048 * IPICConfig.decoupled_handling_seconds_per_particle / 8
    #: (the exchange rank interleaves several served movers)
    handle_seconds: float = 2048 * 1.0e-7 / 8


def _jitter01(rank: int, i: int) -> float:
    """Deterministic hash-noise in [0, 1) (no RNG state to carry)."""
    return ((rank * 2654435761 + i * 97003 + 12289) % 4096) / 4096.0


def _build_graph(cfg: _RecoveryConfig, name: str) -> StreamGraph:
    def produce_body(ctx):
        comm = ctx.comm
        produce = cfg.produce_seconds
        amp = cfg.jitter
        with ctx.producer("elements") as out:
            for i in range(cfg.elements_per_producer):
                yield from ctx.compute(
                    produce * (1.0 + amp * _jitter01(comm.rank, i)),
                    label="produce")
                yield from out.send(SizedPayload(i, cfg.element_bytes))

    charge = Delay(cfg.handle_seconds)

    def handle(element):
        yield charge

    return (
        StreamGraph(name)
        .stage("compute", size=cfg.n_compute, body=produce_body)
        .stage("helper", size=cfg.n_helper)
        .flow("elements", src="compute", dst="helper", operator=handle,
              checkpoint=cfg.checkpoint())
    )


#: compiled graphs are pure functions of the config; compiling once per
#: run (not once per rank) keeps setup O(P)
_compiled_memo: Dict[Any, Any] = {}


def _compiled(cfg: _RecoveryConfig, name: str):
    hit = _compiled_memo.get(cfg)
    if hit is None:
        if len(_compiled_memo) >= 64:
            _compiled_memo.clear()
        hit = _compiled_memo[cfg] = _build_graph(cfg, name).compile(cfg.nprocs)
    return hit


def _recovery_worker(comm: Comm, cfg: _RecoveryConfig, name: str
                     ) -> Generator[Any, Any, Dict[str, Any]]:
    record = yield from _compiled(cfg, name).execute(comm)
    profile = record.profiles.get("elements")
    out: Dict[str, Any] = {"role": record.stage, "elapsed": comm.time}
    if profile is not None:
        out["elements_sent"] = profile.elements_sent
        out["elements_received"] = profile.elements_received
        out["checkpoints"] = profile.checkpoints
        out["acked_elements"] = profile.acked_elements
        out["replayed_elements"] = profile.replayed_elements
        out["recoveries"] = profile.recoveries
        out["adopted_producers"] = profile.adopted_producers
    return out


def cg_halo_recovery(comm: Comm, cfg: CGHaloRecoveryConfig
                     ) -> Generator[Any, Any, Dict[str, Any]]:
    """CG halo funnel with checkpointed, crash-recoverable streaming."""
    result = yield from _recovery_worker(comm, cfg, "cg-halo-recovery")
    return result


def pcomm_recovery(comm: Comm, cfg: PcommRecoveryConfig
                   ) -> Generator[Any, Any, Dict[str, Any]]:
    """iPIC3D particle-exit funnel with checkpointed recovery."""
    result = yield from _recovery_worker(comm, cfg, "pcomm-recovery")
    return result
