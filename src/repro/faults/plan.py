"""Declarative fault plans: typed events, JSON round-trip, validation.

A :class:`FaultPlan` is *data*, exactly like a
:class:`~repro.simmpi.config.MachineConfig`: a list of typed events plus
the failure-detection latency, round-trippable through ``to_json()`` /
``from_json()`` so :mod:`repro.study` job specs can carry fault
scenarios to worker processes and hash them into cache keys.

Three event kinds cover the failure families the decoupling argument
cares about:

:class:`RankCrash`
    ``(time, rank)`` — the rank dies at ``time`` (fail-stop).  Its
    process is killed, survivors' doomed operations resolve to
    :class:`~repro.simmpi.errors.ProcessFailedError` /
    :class:`~repro.simmpi.errors.RevokedError` once the failure is
    *detected* (``detection_latency`` later), ULFM-style.  ``rank`` may
    be negative (Python indexing: ``-1`` = last rank), so one plan
    targets "the helper group's tail rank" across a process-count sweep.

:class:`Slowdown`
    ``(t0, t1, rank, factor)`` — a straggler window: the rank's compute
    charges stretch by ``factor`` while they overlap ``[t0, t1)``,
    composing multiplicatively with the
    :class:`~repro.simmpi.noise.NoiseModel`'s inflation.

:class:`LinkDegrade`
    ``(t0, t1, node_a, node_b, bw_factor)`` — the inter-node link pair
    loses bandwidth (divided by ``bw_factor``) for transfers injected
    during the window.  Flat fabric only (the topology fabrics model
    contention structurally).

Determinism: a plan contains no randomness; a faulted run is a pure
function of (programs, seeds, fault plan).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Checkpoint",
    "FaultError",
    "FaultPlan",
    "LinkDegrade",
    "RankCrash",
    "Slowdown",
    "resolve_faults",
]

#: how long after a crash the survivors learn about it (ULFM failure
#: detectors are asynchronous; this models their propagation delay)
DEFAULT_DETECTION_LATENCY = 100e-6


class FaultError(ValueError):
    """An invalid fault plan, event or checkpoint policy."""


@dataclass(frozen=True)
class RankCrash:
    """Fail-stop crash of ``rank`` at virtual ``time``."""

    time: float
    rank: int

    kind = "crash"

    def validate(self) -> None:
        if self.time < 0:
            raise FaultError(f"crash time must be >= 0, got {self.time}")

    def to_json(self) -> Dict[str, Any]:
        return {"kind": "crash", "time": self.time, "rank": self.rank}


@dataclass(frozen=True)
class Slowdown:
    """Straggler window: ``rank`` computes ``factor``x slower in
    ``[t0, t1)``."""

    t0: float
    t1: float
    rank: int
    factor: float

    kind = "slowdown"

    def validate(self) -> None:
        if self.t0 < 0 or self.t1 <= self.t0:
            raise FaultError(
                f"slowdown window must satisfy 0 <= t0 < t1, got "
                f"[{self.t0}, {self.t1})")
        if self.factor < 1.0:
            raise FaultError(
                f"slowdown factor must be >= 1, got {self.factor}")

    def to_json(self) -> Dict[str, Any]:
        return {"kind": "slowdown", "t0": self.t0, "t1": self.t1,
                "rank": self.rank, "factor": self.factor}


@dataclass(frozen=True)
class LinkDegrade:
    """Bandwidth loss on the ``node_a``<->``node_b`` link in
    ``[t0, t1)``: transfers injected inside the window run at
    ``bandwidth / bw_factor``."""

    t0: float
    t1: float
    node_a: int
    node_b: int
    bw_factor: float

    kind = "link"

    def validate(self) -> None:
        if self.t0 < 0 or self.t1 <= self.t0:
            raise FaultError(
                f"link window must satisfy 0 <= t0 < t1, got "
                f"[{self.t0}, {self.t1})")
        if self.bw_factor <= 1.0:
            raise FaultError(
                f"bw_factor must be > 1 (a degradation), got "
                f"{self.bw_factor}")
        if self.node_a < 0 or self.node_b < 0 or self.node_a == self.node_b:
            raise FaultError(
                f"link endpoints must be distinct non-negative nodes, "
                f"got {self.node_a}<->{self.node_b}")

    def to_json(self) -> Dict[str, Any]:
        return {"kind": "link", "t0": self.t0, "t1": self.t1,
                "node_a": self.node_a, "node_b": self.node_b,
                "bw_factor": self.bw_factor}


FaultEvent = Union[RankCrash, Slowdown, LinkDegrade]

_EVENT_KINDS = {
    "crash": (RankCrash, ("time", "rank")),
    "slowdown": (Slowdown, ("t0", "t1", "rank", "factor")),
    "link": (LinkDegrade, ("t0", "t1", "node_a", "node_b", "bw_factor")),
}


class FaultPlan:
    """An ordered, validated collection of fault events."""

    def __init__(self, events: Sequence[FaultEvent] = (),
                 detection_latency: float = DEFAULT_DETECTION_LATENCY):
        self.events: Tuple[FaultEvent, ...] = tuple(events)
        self.detection_latency = float(detection_latency)
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if self.detection_latency < 0:
            raise FaultError("detection_latency must be >= 0")
        seen_crashes = set()
        slow: Dict[int, List[Tuple[float, float]]] = {}
        for ev in self.events:
            if not isinstance(ev, (RankCrash, Slowdown, LinkDegrade)):
                raise FaultError(
                    f"unknown fault event {ev!r}; use RankCrash / "
                    "Slowdown / LinkDegrade")
            ev.validate()
            if isinstance(ev, RankCrash):
                if ev.rank in seen_crashes:
                    raise FaultError(f"rank {ev.rank} crashes twice")
                seen_crashes.add(ev.rank)
            elif isinstance(ev, Slowdown):
                slow.setdefault(ev.rank, []).append((ev.t0, ev.t1))
        for rank, windows in slow.items():
            windows.sort()
            for (_, prev_end), (next_start, _) in zip(windows, windows[1:]):
                if next_start < prev_end:
                    raise FaultError(
                        f"slowdown windows for rank {rank} overlap; "
                        "merge them into one window per interval")

    # ------------------------------------------------------------------
    @property
    def crashes(self) -> List[RankCrash]:
        return [e for e in self.events if isinstance(e, RankCrash)]

    @property
    def slowdowns(self) -> List[Slowdown]:
        return [e for e in self.events if isinstance(e, Slowdown)]

    @property
    def link_events(self) -> List[LinkDegrade]:
        return [e for e in self.events if isinstance(e, LinkDegrade)]

    def resolve_ranks(self, nprocs: int) -> "FaultPlan":
        """A copy with negative ranks resolved against ``nprocs``
        (Python indexing) and every rank range-checked."""
        out: List[FaultEvent] = []
        for ev in self.events:
            if isinstance(ev, (RankCrash, Slowdown)):
                rank = ev.rank
                if rank < 0:
                    rank += nprocs
                if not (0 <= rank < nprocs):
                    raise FaultError(
                        f"{ev.kind} event targets rank {ev.rank}, which "
                        f"does not resolve within {nprocs} processes")
                if rank != ev.rank:
                    ev = (RankCrash(ev.time, rank)
                          if isinstance(ev, RankCrash)
                          else Slowdown(ev.t0, ev.t1, rank, ev.factor))
            out.append(ev)
        return FaultPlan(out, detection_latency=self.detection_latency)

    # ------------------------------------------------------------------
    # JSON round-trip: a fault scenario is a file
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        return {
            "events": [e.to_json() for e in self.events],
            "detection_latency": self.detection_latency,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultError(
                f"fault plan JSON must be a dict, got {type(data).__name__}")
        unknown = set(data) - {"events", "detection_latency"}
        if unknown:
            raise FaultError(
                f"bad fault plan JSON: unknown keys {sorted(unknown)}")
        events: List[FaultEvent] = []
        for entry in data.get("events", ()):
            if not isinstance(entry, dict):
                raise FaultError(
                    f"fault event must be a dict, got {entry!r}")
            kind = entry.get("kind")
            hit = _EVENT_KINDS.get(kind)
            if hit is None:
                raise FaultError(
                    f"unknown fault event kind {kind!r}; choose from "
                    f"{sorted(_EVENT_KINDS)}")
            cls_, fields_ = hit
            extra = set(entry) - set(fields_) - {"kind"}
            if extra:
                raise FaultError(
                    f"{kind} event has unknown fields {sorted(extra)}")
            try:
                events.append(cls_(**{f: entry[f] for f in fields_}))
            except KeyError as exc:
                raise FaultError(
                    f"{kind} event is missing field {exc}") from exc
        return cls(events,
                   detection_latency=data.get(
                       "detection_latency", DEFAULT_DETECTION_LATENCY))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FaultPlan({len(self.events)} event(s), "
                f"detection={self.detection_latency:.3g}s)")


def resolve_faults(spec: Union[None, Dict[str, Any], FaultPlan]
                   ) -> Optional[FaultPlan]:
    """Normalize a fault spec: None stays None, dicts go through
    :meth:`FaultPlan.from_json`, plans validate and pass through."""
    if spec is None:
        return None
    if isinstance(spec, FaultPlan):
        spec.validate()
        return spec
    if isinstance(spec, dict):
        return FaultPlan.from_json(spec)
    raise FaultError(
        f"faults must be None, a FaultPlan or its JSON dict, "
        f"got {type(spec).__name__}")


# ----------------------------------------------------------------------
# checkpoint policy (stream-level recovery)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Checkpoint:
    """Interval-based stream checkpointing policy.

    A recovery-enabled stream consumer snapshots its operator state
    every ``interval`` processed elements; the snapshot write is costed
    through the machine's filesystem model (``state_nbytes`` through the
    striped backend, like a ``write_at``), after which the consumer acks
    its producers (one ``ack_nbytes`` eager message each), letting them
    drop the acked prefix of their replay buffers.  On a consumer crash,
    the deterministic successor restores the last snapshot (read cost)
    and producers replay every un-acked element — the classic
    checkpoint-interval trade-off: short intervals cost overhead every
    ``interval`` elements, long ones cost replay at recovery time.
    """

    interval: int = 64
    state_nbytes: int = 1 << 20
    ack_nbytes: int = 64

    def validate(self) -> None:
        if self.interval < 1:
            raise FaultError("checkpoint interval must be >= 1")
        if self.state_nbytes < 0 or self.ack_nbytes < 0:
            raise FaultError("checkpoint sizes must be >= 0")

    def to_json(self) -> Dict[str, Any]:
        return {"interval": self.interval,
                "state_nbytes": self.state_nbytes,
                "ack_nbytes": self.ack_nbytes}

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Checkpoint":
        unknown = set(data) - {"interval", "state_nbytes", "ack_nbytes"}
        if unknown:
            raise FaultError(
                f"bad Checkpoint JSON: unknown keys {sorted(unknown)}")
        ckpt = cls(**data)
        ckpt.validate()
        return ckpt
