"""The declarative front-end: declare stages and flows, compile to a plan.

A :class:`StreamGraph` is the builder form of the paper's decoupling
strategy.  Users declare *stages* (named groups of processes sized by
fraction or absolute count, each with a generator body) and *flows*
(directional streams between stages, optionally carrying an operator
and a router), then hand the graph to :class:`~repro.api.simulation.
Simulation` — or embed it in a running rank program with
``yield from graph.compile(P).execute(world)``.

Compilation lowers the declaration onto the existing layers: a
validated :class:`~repro.core.groups.DecouplingPlan`, communicator
splitting + per-flow channel creation via :func:`~repro.core.runtime.
run_decoupled`, and one attached stream per flow — in deterministic
declaration order, so every rank agrees on tags and contexts without
communication.  The per-stage runtime wraps the user body with an
epilogue that terminates every un-terminated producer stream and frees
every channel (bystanders included), making the ``terminate``/``free``
protocol impossible to forget.

    graph = (StreamGraph()
             .stage("compute", fraction=0.9375, body=compute_body)
             .stage("analyze", fraction=0.0625)
             .flow("samples", src="compute", dst="analyze",
                   operator=RunningStats))
    report = Simulation(64, machine="beskow").run(graph)

A stage may omit its body when it only consumes flows that declare
operators: the runtime supplies a default body that operates each
incoming flow in declaration order and reports the operator results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from ..core.groups import DecouplingPlan
from ..core.runtime import GroupContext, run_decoupled
from ..mpistream.stream import (
    DEFAULT_ELEMENT_OVERHEAD,
    DEFAULT_WINDOW,
    attach,
)
from ..simmpi.comm import Comm
from .errors import GraphError
from .handles import (
    ConsumerHandle,
    ProducerHandle,
    StageContext,
    StageRecord,
)

Body = Callable[[StageContext], Generator]


@dataclass(frozen=True)
class StageDef:
    """One declared stage: a named group with an optional body."""

    name: str
    fraction: Optional[float]
    size: Optional[int]
    body: Optional[Body]
    #: nominal seconds if the whole machine ran this stage — the
    #: auto-sizing pass's T_W0/T'_W1 input (repro.compile); optional
    work: Optional[float] = None

    def effective_fraction(self, total_procs: int) -> float:
        if self.fraction is not None:
            return self.fraction
        return self.size / total_procs


@dataclass(frozen=True)
class FlowDef:
    """One declared flow: a directional stream between two stages."""

    name: str
    src: str
    dst: str
    operator: Optional[Any] = None
    operator_factory: Optional[Callable[[], Any]] = None
    router: Optional[Callable] = None
    window: int = DEFAULT_WINDOW
    element_overhead: float = DEFAULT_ELEMENT_OVERHEAD
    eager: bool = False
    #: optional repro.faults.Checkpoint enabling stream-level recovery
    checkpoint: Optional[Any] = None

    @property
    def has_operator(self) -> bool:
        return self.operator is not None or self.operator_factory is not None

    def make_operator(self) -> Optional[Any]:
        """A per-rank operator instance.

        ``operator_factory`` (or a class passed as ``operator``) is
        instantiated per consumer rank so stateful operators never share
        state across ranks; a plain callable is used as-is."""
        if self.operator_factory is not None:
            return self.operator_factory()
        if isinstance(self.operator, type):
            return self.operator()
        return self.operator


class StreamGraph:
    """Fluent builder for a decoupled streaming application."""

    def __init__(self, name: str = "stream-graph"):
        self.name = name
        self._stages: Dict[str, StageDef] = {}
        self._order: List[str] = []
        self._flows: List[FlowDef] = []

    # ------------------------------------------------------------------
    # declaration
    # ------------------------------------------------------------------
    def stage(self, name: str, *, fraction: Optional[float] = None,
              size: Optional[int] = None,
              body: Optional[Body] = None,
              work: Optional[float] = None) -> "StreamGraph":
        """Declare a stage sized by ``fraction`` of P *or* absolute
        ``size``; ``body(ctx)`` is a generator function (omit it for a
        pure consumer stage whose flows declare operators).  ``work`` is
        the stage's nominal whole-machine runtime in seconds — a hint
        the compiler's auto-sizing pass uses to balance Eq. 2."""
        if name in self._stages:
            raise GraphError(f"duplicate stage {name!r}")
        if work is not None and work <= 0:
            raise GraphError(
                f"stage {name!r}: work must be positive, got {work}")
        if (fraction is None) == (size is None):
            raise GraphError(
                f"stage {name!r}: give exactly one of fraction / size")
        if fraction is not None and not (0.0 < fraction <= 1.0):
            raise GraphError(
                f"stage {name!r}: fraction must be in (0, 1], got {fraction}")
        if size is not None and size < 1:
            raise GraphError(f"stage {name!r}: size must be >= 1, got {size}")
        if body is not None and not callable(body):
            raise GraphError(f"stage {name!r}: body must be callable")
        self._stages[name] = StageDef(name, fraction, size, body, work)
        self._order.append(name)
        return self

    def flow(self, name: str, src: str, dst: str, *,
             operator: Optional[Any] = None,
             operator_factory: Optional[Callable[[], Any]] = None,
             router: Optional[Callable] = None,
             window: int = DEFAULT_WINDOW,
             element_overhead: float = DEFAULT_ELEMENT_OVERHEAD,
             eager: bool = False,
             checkpoint: Optional[Any] = None) -> "StreamGraph":
        """Declare a flow from stage ``src`` to stage ``dst``.

        ``operator`` is applied per element on the consumer — pass a
        callable (shared), a class, or ``operator_factory`` for a fresh
        stateful instance per consumer rank.  ``router``, ``window``,
        ``element_overhead``, ``eager`` and ``checkpoint`` (a
        :class:`~repro.faults.plan.Checkpoint` enabling stream-level
        recovery) forward to :func:`~repro.mpistream.stream.attach`.
        """
        if any(f.name == name for f in self._flows):
            raise GraphError(f"duplicate flow {name!r}")
        for stage_name in (src, dst):
            if stage_name not in self._stages:
                raise GraphError(
                    f"unknown stage {stage_name!r} in flow {name!r}; "
                    f"declared stages: {self._order}")
        if src == dst:
            raise GraphError(
                f"flow {name!r} must link two distinct stages")
        if operator is not None and operator_factory is not None:
            raise GraphError(
                f"flow {name!r}: give at most one of operator / "
                "operator_factory")
        if window < 1:
            raise GraphError(f"flow {name!r}: window must be >= 1")
        if element_overhead < 0:
            raise GraphError(
                f"flow {name!r}: element_overhead must be >= 0")
        if checkpoint is not None:
            if router is not None:
                raise GraphError(
                    f"flow {name!r}: checkpoint recovery needs static "
                    "blocked routing (drop the router)")
            try:
                checkpoint.validate()
            except (AttributeError, ValueError) as exc:
                raise GraphError(
                    f"flow {name!r}: bad checkpoint policy: {exc}") from exc
        self._flows.append(FlowDef(
            name, src, dst, operator=operator,
            operator_factory=operator_factory, router=router,
            window=window, element_overhead=element_overhead, eager=eager,
            checkpoint=checkpoint))
        return self

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def stages(self) -> List[StageDef]:
        return [self._stages[n] for n in self._order]

    @property
    def flows(self) -> List[FlowDef]:
        return list(self._flows)

    def flows_in(self, stage: str) -> List[FlowDef]:
        return [f for f in self._flows if f.dst == stage]

    def flows_out(self, stage: str) -> List[FlowDef]:
        return [f for f in self._flows if f.src == stage]

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def compile(self, total_procs: int) -> "CompiledGraph":
        """Validate the declaration and lower it to a
        :class:`~repro.core.groups.DecouplingPlan` sized for
        ``total_procs`` processes."""
        if not self._order:
            raise GraphError("graph has no stages")
        if total_procs < len(self._order):
            raise GraphError(
                f"{total_procs} processes cannot host "
                f"{len(self._order)} stages")
        coverage = sum(
            s.effective_fraction(total_procs) for s in self.stages)
        if coverage > 1.0 + 1e-9:
            raise GraphError(
                f"stage fractions overflow the machine: sum is "
                f"{coverage:.4f} > 1 over {total_procs} processes")
        # Stages must partition the machine: undercoverage would be
        # silently absorbed by the largest group (the plan's drift
        # rule), inflating it far beyond its declaration.  Allow only
        # per-stage rounding slack.
        slack = 0.5 * len(self._order) / total_procs + 1e-9
        if coverage < 1.0 - slack:
            raise GraphError(
                f"stage fractions undercover the machine: sum is "
                f"{coverage:.4f} < 1 over {total_procs} processes; "
                "declare stages that partition all processes")
        for s in self.stages:
            if s.body is not None:
                continue
            incoming = self.flows_in(s.name)
            outgoing = self.flows_out(s.name)
            if outgoing:
                raise GraphError(
                    f"missing body: stage {s.name!r} produces flow(s) "
                    f"{[f.name for f in outgoing]} and cannot be defaulted")
            if not incoming:
                raise GraphError(
                    f"missing body: stage {s.name!r} touches no flows")
            for f in incoming:
                if not f.has_operator:
                    raise GraphError(
                        f"missing body: stage {s.name!r} consumes flow "
                        f"{f.name!r} which declares no operator")

        plan = DecouplingPlan(total_procs)
        for s in self.stages:
            plan.add_group(s.name, fraction=s.fraction, size=s.size)
            plan.map_operation(s.name, s.name)
        for f in self._flows:
            plan.add_flow(f.name, f.src, f.dst)
        plan.validate()
        # The plan resolves rounding drift by resizing the largest
        # group — fine for fraction-declared stages, but an explicit
        # size the user wrote down must never be silently overridden.
        for s in self.stages:
            resolved = plan.groups[s.name].size
            if s.size is not None and resolved != s.size:
                raise GraphError(
                    f"stage {s.name!r} declared size {s.size} but covering "
                    f"{total_procs} processes needs {resolved}; declare "
                    "sizes that sum to the machine, or use fractions")
        return CompiledGraph(self, plan)


class CompiledGraph:
    """A validated graph bound to a concrete process count.

    ``execute(world)`` is the SPMD generator main: it wires groups,
    channels and streams through :func:`~repro.core.runtime.
    run_decoupled`, runs this rank's stage body between an automatic
    prologue (stream attachment) and epilogue (terminate + free), and
    returns this rank's :class:`~repro.api.handles.StageRecord`.
    """

    def __init__(self, graph: StreamGraph, plan: DecouplingPlan):
        self.graph = graph
        self.plan = plan

    @property
    def total_procs(self) -> int:
        return self.plan.total_procs

    def execute(self, world: Comm) -> Generator[Any, Any, StageRecord]:
        """This rank's SPMD main, as a generator.

        When the run opted into compiled mode (``run(..., compile=True)``
        installs the options on the world) and no fault controller is
        active, the returned generator is the plan compiler's fused
        driver; otherwise the interpreted ``run_decoupled`` layering.
        Both are plain ``yield from``-able generators, so call sites
        never change.
        """
        opts = world.world._compile_opts
        if opts is not None and world.world._fault_ctl is None:
            from ..compile.executor import executable_for  # lazy: upper layer
            return executable_for(self, opts).driver(world)
        return self._interpret(world)

    def _interpret(self, world: Comm) -> Generator[Any, Any, StageRecord]:
        bodies = {s.name: self._make_body(s) for s in self.graph.stages}
        record = yield from run_decoupled(world, self.plan, bodies)
        return record

    # ------------------------------------------------------------------
    def _make_body(self, stage: StageDef):
        graph = self.graph

        def body(gctx: GroupContext) -> Generator[Any, Any, StageRecord]:
            # prologue: attach one stream per touching flow, in
            # declaration order (the tag-agreement contract)
            handles: Dict[str, Any] = {}
            for flow in graph.flows:
                if stage.name == flow.src:
                    stream = yield from attach(
                        gctx.channel(flow.name), None,
                        element_overhead=flow.element_overhead,
                        window=flow.window, router=flow.router,
                        eager=flow.eager, checkpoint=flow.checkpoint)
                    handles[flow.name] = ProducerHandle(flow.name, stream)
                elif stage.name == flow.dst:
                    stream = yield from attach(
                        gctx.channel(flow.name), flow.make_operator(),
                        element_overhead=flow.element_overhead,
                        window=flow.window, router=flow.router,
                        eager=flow.eager, checkpoint=flow.checkpoint)
                    handles[flow.name] = ConsumerHandle(
                        flow.name, stream, stream.operator)

            ctx = StageContext(stage.name, gctx, handles)
            if stage.body is not None:
                result = yield from stage.body(ctx)
            else:
                result = yield from self._default_consumer_body(ctx)

            # epilogue: the terminate/free protocol, automatically
            for flow in graph.flows:
                h = handles.get(flow.name)
                if isinstance(h, ProducerHandle) and not h.terminated:
                    yield from h.terminate()
            for flow in graph.flows:
                ch = gctx.all_channels[flow.name]
                if not ch.freed:
                    yield from ch.free()

            return StageRecord(
                stage=stage.name, result=result,
                profiles={name: h.profile for name, h in handles.items()})

        return body

    def _default_consumer_body(self, ctx: StageContext
                               ) -> Generator[Any, Any, Any]:
        """Operate every incoming flow in declaration order; report each
        operator's result (single flow: the bare result)."""
        results: Dict[str, Any] = {}
        for flow in self.graph.flows_in(ctx.stage):
            handle = ctx.consumer(flow.name)
            yield from handle.operate()
            results[flow.name] = handle.result()
        if len(results) == 1:
            return next(iter(results.values()))
        return results
