"""The single run entry point of the declarative front-end.

``Simulation`` bundles the platform knobs (machine preset, process
count, tracing, noise) once, then runs either a :class:`~repro.api.
graph.StreamGraph` or a plain rank program::

    sim = Simulation(64, machine="beskow", trace=True)
    report = sim.run(graph)                     # declarative graph
    report = sim.run(worker, args=(cfg,))       # existing rank program

Both paths return a :class:`~repro.api.report.Report`; the low-level
:func:`repro.simmpi.run` / :func:`repro.core.run_decoupled` surface
stays available unchanged for finer control.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional, Union

from ..simmpi.config import (
    MachineConfig,
    NoiseConfig,
    TopologyConfig,
    beskow,
    ideal_network_testbed,
    quiet_testbed,
    resolve_topology,
)
from ..simmpi.errors import PlacementError
from ..simmpi.placement import (
    ColocatedPlacement,
    PartitionedPlacement,
    PlacementPolicy,
    resolve_placement,
)
from ..simmpi.launcher import run
from .errors import GraphError
from .graph import CompiledGraph, StreamGraph
from .report import Report

#: placement names that need a compiled plan's group blocks
_PLAN_PLACEMENTS = {
    "colocated": ColocatedPlacement,
    "partitioned": PartitionedPlacement,
}


def plan_placement(kind: str, plan) -> PlacementPolicy:
    """Build a group-aware placement policy from a validated
    :class:`~repro.core.groups.DecouplingPlan`'s rank blocks."""
    factory = _PLAN_PLACEMENTS.get(kind)
    if factory is None:
        raise GraphError(
            f"unknown plan placement {kind!r}; "
            f"choose from {sorted(_PLAN_PLACEMENTS)}")
    blocks = [(name, spec.first_rank, spec.size)
              for name, spec in plan.groups.items()]
    return factory(blocks)

#: machine presets accepted by name
MACHINE_PRESETS = {
    "beskow": beskow,
    "quiet": quiet_testbed,
    "quiet_testbed": quiet_testbed,
    "ideal": ideal_network_testbed,
    "ideal_network": ideal_network_testbed,
}


def _resolve_machine(machine: Union[None, str, MachineConfig],
                     noise: Union[None, bool, int, NoiseConfig]
                     ) -> MachineConfig:
    if machine is None:
        cfg = quiet_testbed()
    elif isinstance(machine, str):
        factory = MACHINE_PRESETS.get(machine)
        if factory is None:
            raise GraphError(
                f"unknown machine preset {machine!r}; choose from "
                f"{sorted(MACHINE_PRESETS)} or pass a MachineConfig")
        cfg = factory()
    elif isinstance(machine, MachineConfig):
        cfg = machine
    else:
        raise GraphError(
            f"machine must be a preset name or MachineConfig, "
            f"got {type(machine).__name__}")

    if noise is None or noise is True:
        return cfg
    if noise is False:
        return cfg.with_(noise=replace(
            cfg.noise, persistent_skew=0.0, quantum_fraction=0.0))
    if isinstance(noise, NoiseConfig):
        return cfg.with_(noise=noise)
    if isinstance(noise, int):
        return cfg.with_(noise=replace(cfg.noise, seed=noise))
    raise GraphError(
        f"noise must be None, a bool, a seed or a NoiseConfig, "
        f"got {type(noise).__name__}")


class Simulation:
    """One simulated platform + process count, ready to run work."""

    def __init__(self, nprocs: int,
                 machine: Union[None, str, MachineConfig] = None, *,
                 trace: bool = False,
                 noise: Union[None, bool, int, NoiseConfig] = None,
                 topology: Union[None, str, TopologyConfig] = None,
                 placement: Union[None, str, PlacementPolicy] = None,
                 faults=None,
                 compile: Union[None, bool, dict, object] = None,
                 parallel: Union[None, bool, int, dict, object] = None,
                 max_events: Optional[int] = None):
        """
        Parameters
        ----------
        nprocs:
            Number of simulated processes.
        machine:
            Platform: a :class:`~repro.simmpi.config.MachineConfig`, a
            preset name (``"beskow"``, ``"quiet"``, ``"ideal"``) or
            None for the quiet testbed.
        trace:
            Record a :class:`~repro.trace.recorder.Tracer`, enabling the
            report's overlap/idle/imbalance analyses.
        noise:
            Noise override: ``False`` silences the machine's noise
            model, an ``int`` reseeds it, a :class:`~repro.simmpi.
            config.NoiseConfig` replaces it, ``None`` keeps the preset.
        topology:
            Fabric override: a kind name (``"flat"``, ``"fat_tree"``,
            ``"dragonfly"``) or a :class:`~repro.simmpi.config.
            TopologyConfig`; ``None`` keeps the machine's fabric.
        placement:
            Rank→node override: ``"block"``, ``"round_robin"``, a
            :class:`~repro.simmpi.placement.PlacementPolicy`, or —
            when running a :class:`StreamGraph` — ``"colocated"`` /
            ``"partitioned"``, which are built from the compiled
            plan's group blocks automatically.
        faults:
            Deterministic fault injection: a :class:`~repro.faults.
            plan.FaultPlan` or its JSON dict (None = fault-free).
            Crash ranks may be negative (``-1`` = last rank).
        compile:
            Opt into the plan compiler (:mod:`repro.compile`):
            ``True``, a :class:`~repro.compile.CompileOptions` or its
            dict form (e.g. ``{"auto_alpha": True}``).  Graph runs then
            execute through the pass pipeline's fused driver and static
            send schedules — bit-identical virtual-time results unless
            ``auto_alpha`` rewrites group sizes.  Silently bypassed
            under fault injection (the interpreted layering carries the
            recovery protocol).  See :meth:`explain` for the pipeline's
            account of a graph.
        parallel:
            Opt into partitioned execution (:mod:`repro.parallel`):
            ``True``, a shard count, an options dict (e.g.
            ``{"workers": 4}``) or ``ParallelOptions``.  Graph runs
            shard on the compiled plan's group blocks, rank programs on
            the machine's node map; results stay bit-identical to
            serial (the conservative merge preserves global event
            order).  Silently bypassed under fault injection, like
            ``compile=`` — and an active parallel run keeps the plan
            compiler uninstalled.  :meth:`explain` appends the chosen
            partition, its lookahead window, and a warning for any
            shard cut through an eager flow.
        max_events:
            Safety budget on engine events (livelock guard).
        """
        if nprocs <= 0:
            raise GraphError("nprocs must be positive")
        self.nprocs = nprocs
        if faults is not None:
            from ..faults.plan import FaultError, resolve_faults
            try:
                faults = resolve_faults(faults)
            except FaultError as exc:
                raise GraphError(str(exc)) from exc
        self.faults = faults
        machine_cfg = _resolve_machine(machine, noise)
        if topology is not None:
            try:
                machine_cfg = machine_cfg.with_(
                    topology=resolve_topology(topology))
            except ValueError as exc:
                raise GraphError(str(exc)) from exc
        #: placement deferred until run(): colocated/partitioned need
        #: the compiled graph's plan to know the group rank blocks
        self._plan_placement = (placement
                                if isinstance(placement, str)
                                and placement in _PLAN_PLACEMENTS else None)
        if placement is not None and self._plan_placement is None:
            try:
                machine_cfg = machine_cfg.with_(
                    placement=resolve_placement(placement))
            except PlacementError as exc:
                raise GraphError(str(exc)) from exc
        self.machine = machine_cfg
        self.trace = trace
        self.max_events = max_events
        if compile is not None and compile is not False:
            from ..compile.options import resolve_options
            try:
                self.compile_opts = resolve_options(compile)
            except ValueError as exc:
                raise GraphError(str(exc)) from exc
        else:
            self.compile_opts = None
        if parallel is not None and parallel is not False:
            from ..parallel import ParallelError, resolve_parallel
            try:
                self.parallel_opts = resolve_parallel(parallel)
            except ParallelError as exc:
                raise GraphError(str(exc)) from exc
        else:
            self.parallel_opts = None

    # ------------------------------------------------------------------
    def run(self, target: Union[StreamGraph, CompiledGraph, Callable], *,
            args: tuple = (),
            rank_args: Optional[Callable[[int], tuple]] = None) -> Report:
        """Run a :class:`StreamGraph` (compiling it for this machine) or
        a plain generator rank program ``fn(comm, *args)``."""
        if isinstance(target, (StreamGraph, CompiledGraph)):
            if args or rank_args is not None:
                raise GraphError(
                    "args/rank_args apply to rank programs; parameterize "
                    "a StreamGraph through its stage bodies instead")
            return self._run_graph(target)
        if callable(target):
            return self._run_program(target, args, rank_args)
        raise GraphError(
            f"cannot run {type(target).__name__}; pass a StreamGraph "
            "or a generator rank program")

    # ------------------------------------------------------------------
    def _run_graph(self, target: Union[StreamGraph, CompiledGraph]) -> Report:
        compiled = (target if isinstance(target, CompiledGraph)
                    else target.compile(self.nprocs))
        if compiled.total_procs != self.nprocs:
            raise GraphError(
                f"graph compiled for {compiled.total_procs} processes, "
                f"simulation has {self.nprocs}")

        def main(comm):
            record = yield from compiled.execute(comm)
            return record

        # compiled mode: specialize up front so placement and the
        # report see the executable's plan (auto_alpha may resize
        # groups); the launcher's executable_for() hits the same memo
        plan = compiled.plan
        if self.compile_opts is not None and self.faults is None:
            from ..compile.executor import executable_for
            plan = executable_for(compiled, self.compile_opts).plan

        machine = self.machine
        if self._plan_placement is not None:
            machine = machine.with_(placement=plan_placement(
                self._plan_placement, plan))
        sim = run(main, self.nprocs, machine=machine,
                  trace=self.trace, max_events=self.max_events,
                  faults=self.faults, compile=self.compile_opts,
                  parallel=self._graph_parallel(plan))
        return Report(sim=sim, plan=plan,
                      records=list(sim.values))

    def _graph_parallel(self, plan):
        """Graph runs shard on the plan's group blocks (a stage never
        straddles a shard) unless the opt-in pinned explicit shards."""
        par = self.parallel_opts
        if par is None or par.shards is not None:
            return par
        from ..parallel import shards_from_blocks
        blocks = [(name, spec.first_rank, spec.size)
                  for name, spec in plan.groups.items()]
        return replace(par, shards=shards_from_blocks(
            blocks, self.nprocs, par.workers))

    def explain(self, target: Union[StreamGraph, CompiledGraph]) -> str:
        """The pass pipeline's account of how ``target`` would execute
        on this simulation — one line per pass decision (fusion, sizing,
        schedules, engine segments).  Uses this simulation's compile
        options when set, the defaults otherwise."""
        from ..compile.executor import compile_graph
        compiled = (target if isinstance(target, CompiledGraph)
                    else target.compile(self.nprocs))
        if compiled.total_procs != self.nprocs:
            raise GraphError(
                f"graph compiled for {compiled.total_procs} processes, "
                f"simulation has {self.nprocs}")
        exe = compile_graph(compiled, machine=self.machine,
                            options=self.compile_opts)
        text = exe.explain()
        if self.parallel_opts is not None:
            graph = compiled.graph if hasattr(compiled, "graph") else None
            text = text + "\n" + self._parallel_report(compiled.plan, graph)
        return text

    def _parallel_report(self, plan, graph) -> str:
        """The partition block :meth:`explain` appends: chosen shards,
        lookahead window, and eager-flow cut warnings."""
        from ..parallel import (
            cut_warnings,
            lookahead_bound,
            partition_report,
            validate_shards,
        )
        from ..simmpi.network import build_network
        par = self._graph_parallel(plan)
        shards = validate_shards(par.shards, self.nprocs)
        fabric = build_network(self.machine, self.nprocs)
        window = (par.window if par.window is not None
                  else lookahead_bound(fabric, shards))
        warnings = cut_warnings(graph, plan, shards)
        return partition_report(shards, window, warnings,
                                workers_requested=par.workers)

    def couple(self, graph_a: StreamGraph, graph_b: StreamGraph, *,
               hub=None, port_a: str, port_b: str,
               nprocs_a: Optional[int] = None) -> Report:
        """Run two stream graphs coupled through a translator hub.

        The world is split ``[A ranks | hub ranks | B ranks]``; each
        graph runs on its own sub-communicator and the two exchange
        elements through the hub's receive → transform → send stage
        (see :mod:`repro.cosim`).  ``hub`` is a
        :class:`~repro.cosim.HubSpec`, its mapping form, or None for
        the defaults; ``port_a``/``port_b`` name the stage of each
        graph that talks to the hub; ``nprocs_a`` overrides the even
        split of the non-hub ranks.
        """
        from ..cosim import CosimError, plan_layout, run_coupled
        if self._plan_placement is not None:
            raise GraphError(
                f"placement {self._plan_placement!r} derives group blocks "
                "from a single StreamGraph's plan; coupled runs need an "
                "explicit PlacementPolicy")
        try:
            layout = plan_layout(self.nprocs, hub, graph_a, graph_b,
                                 port_a, port_b, nprocs_a)
        except CosimError as exc:
            raise GraphError(str(exc)) from exc

        def main(comm):
            record = yield from run_coupled(
                comm, graph_a, graph_b, layout.hub,
                port_a=port_a, port_b=port_b, nprocs_a=layout.nprocs_a)
            return record

        sim = run(main, self.nprocs, machine=self.machine,
                  trace=self.trace, max_events=self.max_events,
                  faults=self.faults, parallel=self.parallel_opts)
        return Report(sim=sim)

    def _run_program(self, fn: Callable, args: tuple,
                     rank_args: Optional[Callable[[int], tuple]]) -> Report:
        if self._plan_placement is not None:
            raise GraphError(
                f"placement {self._plan_placement!r} derives group blocks "
                "from a StreamGraph's plan; rank programs need an explicit "
                "PlacementPolicy (e.g. ColocatedPlacement(groups))")
        sim = run(fn, self.nprocs, machine=self.machine, args=args,
                  rank_args=rank_args, trace=self.trace,
                  max_events=self.max_events, faults=self.faults,
                  parallel=self.parallel_opts)
        return Report(sim=sim)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Simulation(nprocs={self.nprocs}, "
                f"machine={self.machine.name!r}, trace={self.trace})")
