"""Stage-side handles: what a stage body programs against.

A stage body is a generator function ``body(ctx)`` receiving a
:class:`StageContext`.  The context exposes this stage's group
communicator, the world communicator, and one handle per flow touching
the stage:

* :class:`ProducerHandle` — ``yield from handle.send(data)`` injects one
  element.  Used as a context manager (``with ctx.producer("f") as s:``)
  the handle is *closed* when the block exits: further sends raise
  :class:`~repro.api.errors.GraphError` and the runtime flushes the
  in-flight window and terminates the stream automatically after the
  body returns — the ``MPIStream_Terminate`` / ``MPIStream_FreeChannel``
  protocol cannot be forgotten.
* :class:`ConsumerHandle` — ``yield from handle.operate()`` services the
  flow until every producer terminated, applying the flow's operator
  (or a per-rank override) to each element on arrival.

Neither handle performs simulated communication outside ``yield from``
calls, so the with-statement itself is free: closing only flips local
state, and the actual flush/terminate runs in the runtime's epilogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

from ..core.runtime import GroupContext
from ..mpistream.channel import StreamChannel
from ..mpistream.profiles import StreamProfile
from ..mpistream.stream import Stream
from .errors import GraphError


@dataclass
class StageRecord:
    """What one rank of a compiled graph returns: the body's result plus
    per-flow stream statistics (merged into the :class:`~repro.api.
    report.Report`)."""

    stage: str
    result: Any
    profiles: Dict[str, StreamProfile] = field(default_factory=dict)


def operator_result(operator: Any) -> Any:
    """The value a defaulted consumer stage reports for its operator:
    ``operator.summary()`` when the operator offers one (e.g.
    :class:`~repro.mpistream.operators.RunningStats`), otherwise the
    operator object itself (e.g. a ``Collector`` whose ``items`` the
    caller inspects)."""
    summary = getattr(operator, "summary", None)
    if callable(summary):
        return summary()
    return operator


class ProducerHandle:
    """Producer side of one flow on this rank."""

    def __init__(self, flow_name: str, stream: Stream):
        self.flow_name = flow_name
        self._stream = stream
        self.closed = False
        self.terminated = False

    # -- context-manager protocol: scoping + can't-forget-terminate ----
    def __enter__(self) -> "ProducerHandle":
        if self.closed:
            raise GraphError(
                f"producer for flow {self.flow_name!r} already closed")
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.closed = True
        return False

    # -- stream operations ---------------------------------------------
    def send(self, data: Any) -> Generator[Any, Any, None]:
        """Inject one element (``MPIStream_Isend``).

        Returns the stream's generator directly (``yield from`` treats
        both identically) — the extra delegation frame was measurable
        at per-element rates."""
        if self.closed or self.terminated:
            raise GraphError(
                f"send on closed producer for flow {self.flow_name!r}")
        return self._stream.isend(data)

    def terminate(self) -> Generator[Any, Any, None]:
        """Flush the in-flight window and end this producer's flow.

        Idempotent: the runtime epilogue calls it for any producer the
        body did not terminate explicitly."""
        if self.terminated:
            return
        self.terminated = True
        self.closed = True
        yield from self._stream.terminate()

    @property
    def profile(self) -> StreamProfile:
        return self._stream.profile


class ConsumerHandle:
    """Consumer side of one flow on this rank."""

    def __init__(self, flow_name: str, stream: Stream,
                 operator: Optional[Callable] = None):
        self.flow_name = flow_name
        self._stream = stream
        self.operator = operator
        self.operated = False
        self.closed = False

    def __enter__(self) -> "ConsumerHandle":
        if self.closed:
            raise GraphError(
                f"consumer for flow {self.flow_name!r} already closed")
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # mirror of ProducerHandle: leaving the with-block closes the
        # handle, so later operate/pending calls are caught as misuse
        self.closed = True
        return False

    def operate(self, operator: Optional[Callable] = None
                ) -> Generator[Any, Any, StreamProfile]:
        """Service the flow until every producer terminated
        (``MPIStream_Operate``).  ``operator`` overrides the flow-level
        operator for this rank (e.g. a closure over body state)."""
        if self.closed:
            raise GraphError(
                f"operate on closed consumer for flow {self.flow_name!r}")
        op = operator if operator is not None else self.operator
        if op is None:
            raise GraphError(
                f"flow {self.flow_name!r} has no operator; declare one on "
                "the flow or pass one to operate()")
        self.operator = op
        self._stream.operator = op
        profile = yield from self._stream.operate()
        self.operated = True
        return profile

    def pending(self, operator: Optional[Callable] = None
                ) -> Generator[Any, Any, int]:
        """Drain only the elements already queued (non-blocking); lets a
        consumer interleave stream service with its own work."""
        if self.closed:
            raise GraphError(
                f"pending on closed consumer for flow {self.flow_name!r}")
        op = operator if operator is not None else self.operator
        if op is None:
            raise GraphError(
                f"flow {self.flow_name!r} has no operator; declare one on "
                "the flow or pass one to pending()")
        self.operator = op
        self._stream.operator = op
        n = yield from self._stream.operate_pending()
        return n

    @property
    def active_producers(self) -> int:
        return self._stream.active_producers

    def result(self) -> Any:
        return operator_result(self.operator)

    @property
    def profile(self) -> StreamProfile:
        return self._stream.profile


class StageContext:
    """Everything a stage body needs, one level above
    :class:`~repro.core.runtime.GroupContext`."""

    def __init__(self, stage: str, group_ctx: GroupContext,
                 handles: Dict[str, Any]):
        self.stage = stage
        self._group_ctx = group_ctx
        self._handles = handles

    # -- communicators --------------------------------------------------
    @property
    def comm(self):
        """This stage's group communicator."""
        return self._group_ctx.comm

    @property
    def world(self):
        """The full (world) communicator."""
        return self._group_ctx.world

    @property
    def plan(self):
        return self._group_ctx.plan

    @property
    def alpha(self) -> float:
        return self._group_ctx.alpha

    @property
    def time(self) -> float:
        return self._group_ctx.world.time

    def compute(self, seconds: float, label: str = "compute"
                ) -> Generator[Any, Any, None]:
        """Charge compute time on this rank (sugar for ``comm.compute``)."""
        return self.comm.compute(seconds, label=label)

    # -- flow handles ---------------------------------------------------
    def _handle(self, flow_name: str) -> Any:
        h = self._handles.get(flow_name)
        if h is None:
            raise GraphError(
                f"flow {flow_name!r} does not touch stage {self.stage!r}")
        return h

    def producer(self, flow_name: str) -> ProducerHandle:
        h = self._handle(flow_name)
        if not isinstance(h, ProducerHandle):
            raise GraphError(
                f"stage {self.stage!r} is the consumer of flow "
                f"{flow_name!r}, not its producer")
        return h

    def consumer(self, flow_name: str) -> ConsumerHandle:
        h = self._handle(flow_name)
        if not isinstance(h, ConsumerHandle):
            raise GraphError(
                f"stage {self.stage!r} is the producer of flow "
                f"{flow_name!r}, not its consumer")
        return h

    def consume(self, flow_name: str, operator: Optional[Callable] = None
                ) -> Generator[Any, Any, StreamProfile]:
        """Sugar: ``yield from ctx.consume("f")`` operates the flow."""
        return self.consumer(flow_name).operate(operator)

    def channel(self, flow_name: str) -> StreamChannel:
        """The underlying stream channel (finer-control escape hatch)."""
        return self._group_ctx.channel(flow_name)
