"""``repro.api`` — the declarative front-end over the decoupling stack.

One high-level surface that compiles user intent down to the existing
layers (`simmpi` communicators, `mpistream` channels/streams, `core`
plans and the decoupled runtime, `trace` analysis):

* :class:`StreamGraph` — declare stages and flows fluently; compiles to
  a validated :class:`~repro.core.groups.DecouplingPlan` plus
  deterministic channel/stream wiring.
* :class:`Simulation` — the single run entry point: pick a machine,
  process count, tracing and noise once; run graphs or plain rank
  programs.
* :class:`~repro.api.handles.StageContext` with context-manager
  producer/consumer handles — the ``terminate``/``free`` protocol is
  applied automatically, so it cannot be forgotten.
* :class:`Report` — merged :class:`~repro.simmpi.launcher.SimResult`,
  per-flow stream profiles and trace overlap analysis.

The low-level API (``repro.simmpi.run``, ``repro.mpistream.attach`` /
``create_channel``, ``repro.core.run_decoupled``) remains the
"for finer control" layer and is unchanged.
"""

from .errors import GraphError
from .graph import CompiledGraph, FlowDef, StageDef, StreamGraph
from .handles import (
    ConsumerHandle,
    ProducerHandle,
    StageContext,
    StageRecord,
)
from .report import Report
from .simulation import MACHINE_PRESETS, Simulation, plan_placement

__all__ = [
    "CompiledGraph", "ConsumerHandle", "FlowDef", "GraphError",
    "MACHINE_PRESETS", "ProducerHandle", "Report", "Simulation",
    "StageContext", "StageDef", "StageRecord", "StreamGraph",
    "plan_placement",
]
