"""Errors raised by the declarative front-end.

:class:`GraphError` subclasses :class:`~repro.core.groups.PlanError` so
code that already guards low-level plan construction keeps working when
it moves to the builder API.
"""

from __future__ import annotations

from ..core.groups import PlanError


class GraphError(PlanError):
    """An invalid :class:`~repro.api.graph.StreamGraph` declaration or an
    illegal operation on a compiled graph's handles."""
