"""The unified run report: simulation outcome + streams + trace analysis.

A :class:`Report` merges what the lower layers return separately — the
:class:`~repro.simmpi.launcher.SimResult`, each rank's per-flow
:class:`~repro.mpistream.profiles.StreamProfile`, and (when tracing is
enabled) the :mod:`repro.trace` overlap/idle/imbalance analyses — into
one object figures and tests query directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..core.groups import DecouplingPlan
from ..mpistream.profiles import StreamProfile
from ..simmpi.launcher import SimResult
from ..trace.analysis import (
    idle_fraction,
    imbalance_stats,
    measured_beta,
    overlap_fraction,
)
from .errors import GraphError
from .handles import StageRecord


def _jsonable(value: Any) -> Any:
    """Coerce a rank result to plain JSON data (repr as last resort)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


@dataclass
class Report:
    """Outcome of one :class:`~repro.api.simulation.Simulation` run."""

    sim: SimResult
    plan: Optional[DecouplingPlan] = None
    records: Optional[List[StageRecord]] = None

    # ------------------------------------------------------------------
    # SimResult passthroughs
    # ------------------------------------------------------------------
    @property
    def nprocs(self) -> int:
        return self.sim.nprocs

    @property
    def elapsed(self) -> float:
        """Virtual time when the last rank finished."""
        return self.sim.elapsed

    @property
    def messages(self) -> int:
        return self.sim.messages

    @property
    def bytes(self) -> int:
        return self.sim.bytes

    @property
    def events(self) -> int:
        return self.sim.events

    @property
    def imbalance(self) -> float:
        return self.sim.imbalance

    @property
    def tracer(self):
        return self.sim.tracer

    @property
    def values(self) -> List[Any]:
        """Per-rank body results (stage records unwrapped); crashed
        ranks (fault-injection runs) report ``None``."""
        if self.records is not None:
            return [r.result if r is not None else None
                    for r in self.records]
        return self.sim.values

    @property
    def failed_ranks(self) -> Dict[int, float]:
        """``{rank: crash_time}`` for ranks killed by fault injection
        (empty on fault-free runs)."""
        summary = self.sim.extras.get("faults")
        if not summary:
            return {}
        return dict(summary.get("failed", {}))

    # ------------------------------------------------------------------
    # stage / flow queries (graph runs)
    # ------------------------------------------------------------------
    def _require_records(self) -> List[StageRecord]:
        if self.records is None:
            raise GraphError(
                "this report came from a plain rank program; stage and "
                "flow queries need a StreamGraph run")
        return self.records

    def stage_of(self, rank: int) -> str:
        records = self._require_records()
        rec = records[rank]
        if rec is None:
            if self.plan is not None:
                return self.plan.group_of(rank)
            raise GraphError(f"rank {rank} crashed; no stage record")
        return rec.stage

    def stage_ranks(self, stage: str) -> List[int]:
        """Surviving ranks of ``stage`` (crashed ranks report nothing)."""
        records = self._require_records()
        out = [r for r, rec in enumerate(records)
               if rec is not None and rec.stage == stage]
        if not out:
            raise GraphError(f"unknown stage {stage!r}")
        return out

    def stage_values(self, stage: str) -> List[Any]:
        """Body results of every surviving rank in ``stage``."""
        records = self._require_records()
        return [records[r].result for r in self.stage_ranks(stage)]

    def flow_profiles(self, flow: str) -> Dict[int, StreamProfile]:
        """``{world_rank: StreamProfile}`` for every surviving rank
        touching ``flow`` (producers and consumers)."""
        records = self._require_records()
        out = {r: rec.profiles[flow]
               for r, rec in enumerate(records)
               if rec is not None and flow in rec.profiles}
        if not out:
            raise GraphError(f"unknown flow {flow!r}")
        return out

    def flow_elements(self, flow: str) -> int:
        """Total elements delivered on ``flow`` (sum over consumers)."""
        return sum(p.elements_received
                   for p in self.flow_profiles(flow).values())

    # ------------------------------------------------------------------
    # trace analysis (requires trace=True)
    # ------------------------------------------------------------------
    def _require_tracer(self):
        if self.sim.tracer is None:
            raise GraphError(
                "trace analysis needs Simulation(..., trace=True)")
        return self.sim.tracer

    def overlap(self, label_a: str, label_b: str) -> float:
        """Fraction of label-A busy time hidden behind label-B."""
        return overlap_fraction(self._require_tracer(), label_a, label_b)

    def beta(self, op0_label: str, op1_label: str) -> float:
        """Empirical Eq.-3 beta between two operations."""
        return measured_beta(self._require_tracer(), op0_label, op1_label)

    def idle(self, rank: int) -> float:
        """Share of the run this rank spent waiting."""
        return idle_fraction(self._require_tracer(), rank)

    def busy_imbalance(self, category: str = "compute",
                       label: Optional[str] = None) -> Dict[str, float]:
        """min/max/mean/CV of per-rank busy time."""
        return imbalance_stats(self._require_tracer(), category,
                               label=label)

    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """The report as a JSON-safe dict: the :meth:`summary` headline
        numbers plus per-rank finish times and per-rank results.

        Strictly round-trippable — ``json.loads(json.dumps(r.to_json()))
        == r.to_json()`` — so reports can ride in study artifacts and
        logs.  Rank results that are not plain data (operator objects,
        channels) degrade to their ``repr``.
        """
        out = self.summary()
        out["finish_times"] = [float(t) for t in self.sim.finish_times]
        if self.records is not None:
            out["stage_results"] = {
                name: [_jsonable(v) for v in self.stage_values(name)]
                for name in out["stages"]
            }
        else:
            out["values"] = [_jsonable(v) for v in self.sim.values]
        return out

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """One dict with the headline numbers (reports, logs)."""
        out: Dict[str, Any] = {
            "nprocs": self.nprocs,
            "elapsed": self.elapsed,
            "messages": self.messages,
            "bytes": self.bytes,
            "events": self.events,
            "imbalance": self.imbalance,
        }
        if self.plan is not None and self.records is not None:
            out["stages"] = {
                name: len(self.stage_ranks(name))
                for name in (s.name for s in self.plan.groups.values())
            }
            out["flows"] = {
                f.name: self.flow_elements(f.name) for f in self.plan.flows
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "graph" if self.records is not None else "program"
        return (f"Report({kind}, nprocs={self.nprocs}, "
                f"elapsed={self.elapsed:.4f}s, messages={self.messages})")
