"""ASCII timeline rendering (the Fig. 2 view).

Renders a :class:`~repro.trace.recorder.Tracer` as one text row per
rank, one character per time bucket, using a category glyph for the
dominant activity in each bucket::

    rank 0 |ccccccccmmmmmm......|
    rank 1 |ccccccmmmmmmmm......|
            0.0s            2.0s

Default glyphs: compute phases get letters derived from their label,
``.`` is idle, ``~`` is wait.  This is deliberately the same picture
HPCToolkit's trace view gives — enough to *see* whether two operations
overlap — and the benchmark for Fig. 2 asserts on the measured overlap
rather than on pixels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .recorder import Interval, Tracer

IDLE_CHAR = "."
DEFAULT_GLYPHS = {
    "wait": "~",
    "io": "#",
}


def _glyph_for(category: str, label: str,
               glyphs: Dict[str, str]) -> str:
    if label in glyphs:
        return glyphs[label]
    if category in glyphs:
        return glyphs[category]
    base = label or category or "?"
    return base[0].lower() or "?"


def render(tracer: Tracer, width: int = 72,
           ranks: Optional[List[int]] = None,
           glyphs: Optional[Dict[str, str]] = None,
           span: Optional[Tuple[float, float]] = None) -> str:
    """Render the tracer's intervals as an ASCII timeline."""
    glyphs = {**DEFAULT_GLYPHS, **(glyphs or {})}
    if ranks is None:
        ranks = tracer.ranks()
    if not ranks:
        return "(empty trace)"
    t0, t1 = span if span is not None else tracer.span()
    if t1 <= t0:
        return "(empty trace)"
    dt = (t1 - t0) / width
    lines = []
    rank_width = max(len(str(r)) for r in ranks)
    for rank in ranks:
        # bucket -> (coverage, glyph) keeping the longest-covering interval
        buckets: List[Tuple[float, str]] = [(0.0, IDLE_CHAR)] * width
        for iv in tracer.for_rank(rank):
            g = _glyph_for(iv.category, iv.label, glyphs)
            b0 = max(0, int((iv.t0 - t0) / dt))
            b1 = min(width - 1, int((iv.t1 - t0) / dt))
            for b in range(b0, b1 + 1):
                lo = t0 + b * dt
                hi = lo + dt
                cover = min(iv.t1, hi) - max(iv.t0, lo)
                if cover > buckets[b][0]:
                    buckets[b] = (cover, g)
        row = "".join(g for _, g in buckets)
        lines.append(f"rank {rank:>{rank_width}} |{row}|")
    footer = f"{' ' * (6 + rank_width)} {t0:<10.4g}{' ' * max(0, width - 20)}{t1:>10.4g}"
    lines.append(footer)
    return "\n".join(lines)


def legend(tracer: Tracer, glyphs: Optional[Dict[str, str]] = None) -> str:
    """One line per distinct (category, label) with its glyph."""
    glyphs = {**DEFAULT_GLYPHS, **(glyphs or {})}
    seen = {}
    for iv in tracer.intervals:
        key = (iv.category, iv.label)
        if key not in seen:
            seen[key] = _glyph_for(iv.category, iv.label, glyphs)
    return "\n".join(
        f"  {g}  {cat}:{lbl}" for (cat, lbl), g in sorted(seen.items())
    )
