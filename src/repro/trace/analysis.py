"""Quantitative trace analysis: overlap, idle time, measured beta.

These metrics turn the Fig. 2 picture into numbers the tests and
benchmarks assert on:

* :func:`overlap_fraction` — how much of operation A's busy time runs
  concurrently with operation B somewhere in the job (the pipelining
  the decoupling strategy creates);
* :func:`measured_beta` — the empirical Eq. 3/4 beta: the fraction of
  A that ran while B had *not* started processing;
* :func:`idle_fraction` — per-rank idle share (the imbalance cost the
  strategy absorbs);
* :func:`imbalance_stats` — spread of per-rank busy time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .recorder import Interval, Tracer, measure, merge_intervals


def _spans(tracer: Tracer, label: Optional[str] = None,
           category: Optional[str] = None,
           ranks: Optional[Iterable[int]] = None) -> List[Tuple[float, float]]:
    rankset = set(ranks) if ranks is not None else None
    out = []
    for iv in tracer.intervals:
        if label is not None and iv.label != label:
            continue
        if category is not None and iv.category != category:
            continue
        if rankset is not None and iv.rank not in rankset:
            continue
        out.append((iv.t0, iv.t1))
    return out


def overlap_fraction(tracer: Tracer, label_a: str, label_b: str) -> float:
    """Fraction of label-A busy time that coincides with label-B busy time
    (union across ranks on both sides).  1.0 = A fully hidden behind B."""
    a = merge_intervals(_spans(tracer, label=label_a))
    b = merge_intervals(_spans(tracer, label=label_b))
    total_a = sum(t1 - t0 for t0, t1 in a)
    if total_a == 0:
        return 0.0
    overlap = 0.0
    j = 0
    for a0, a1 in a:
        while j < len(b) and b[j][1] <= a0:
            j += 1
        k = j
        while k < len(b) and b[k][0] < a1:
            overlap += min(a1, b[k][1]) - max(a0, b[k][0])
            k += 1
    return overlap / total_a


def measured_beta(tracer: Tracer, op0_label: str, op1_label: str) -> float:
    """Empirical beta of Eq. 3: the fraction of Op0's busy time that
    elapsed before Op1 first became active.

    The paper defines beta as "the portion of Op0 without overlapping":
    beta = 0.3 means Op1 starts once Op0 is 30% done.  A staged
    execution measures ~1.0; a perfectly pipelined one ~0.0.
    """
    a = merge_intervals(_spans(tracer, label=op0_label))
    b = merge_intervals(_spans(tracer, label=op1_label))
    total_a = sum(t1 - t0 for t0, t1 in a)
    if total_a == 0 or not b:
        return 1.0
    op1_start = b[0][0]
    before = sum(min(t1, op1_start) - t0 for t0, t1 in a if t0 < op1_start)
    return max(0.0, min(1.0, before / total_a))


def idle_fraction(tracer: Tracer, rank: int, t_end: Optional[float] = None,
                  idle_categories: Tuple[str, ...] = ("wait",)) -> float:
    """Share of [start-of-trace, t_end] this rank spent idle or waiting."""
    ivs = tracer.for_rank(rank)
    if not ivs:
        return 0.0
    t0 = min(iv.t0 for iv in ivs)
    t1 = t_end if t_end is not None else max(iv.t1 for iv in ivs)
    horizon = t1 - t0
    if horizon <= 0:
        return 0.0
    busy = measure(
        (iv.t0, min(iv.t1, t1)) for iv in ivs
        if iv.category not in idle_categories and iv.t0 < t1
    )
    return max(0.0, min(1.0, 1.0 - busy / horizon))


def imbalance_stats(tracer: Tracer, category: str = "compute",
                    label: Optional[str] = None) -> Dict[str, float]:
    """min / max / mean / CV of per-rank busy time in ``category``."""
    per_rank: Dict[int, float] = {}
    for iv in tracer.intervals:
        if iv.category != category:
            continue
        if label is not None and iv.label != label:
            continue
        per_rank[iv.rank] = per_rank.get(iv.rank, 0.0) + iv.duration
    if not per_rank:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "cv": 0.0, "ranks": 0}
    vals = list(per_rank.values())
    mean = sum(vals) / len(vals)
    var = sum((v - mean) ** 2 for v in vals) / len(vals)
    cv = (var ** 0.5) / mean if mean > 0 else 0.0
    return {"min": min(vals), "max": max(vals), "mean": mean, "cv": cv,
            "ranks": len(vals)}


def concurrency_profile(tracer: Tracer, label: str, nbuckets: int = 50
                        ) -> List[int]:
    """How many ranks were running ``label`` in each time bucket —
    the shape of a phase's parallelism over time."""
    spans_by_rank: Dict[int, List[Tuple[float, float]]] = {}
    for iv in tracer.intervals:
        if iv.label == label:
            spans_by_rank.setdefault(iv.rank, []).append((iv.t0, iv.t1))
    if not spans_by_rank:
        return [0] * nbuckets
    t0 = min(s[0] for spans in spans_by_rank.values() for s in spans)
    t1 = max(s[1] for spans in spans_by_rank.values() for s in spans)
    if t1 <= t0:
        return [0] * nbuckets
    dt = (t1 - t0) / nbuckets
    out = []
    for b in range(nbuckets):
        lo, hi = t0 + b * dt, t0 + (b + 1) * dt
        n = sum(
            1 for spans in spans_by_rank.values()
            if any(s0 < hi and s1 > lo for s0, s1 in spans)
        )
        out.append(n)
    return out
