"""Per-rank interval tracing (the simulation's HPCToolkit).

Every traced activity is an interval ``(rank, category, label, t0, t1)``.
The communicator layer records ``compute`` and ``wait`` intervals
automatically when a tracer is attached; applications can add their own
phases with :meth:`Tracer.record` or the :meth:`Tracer.phase` helper.

The recorder is intentionally dumb — an append-only list — so tracing
overhead never perturbs simulated timing (virtual time only advances
through engine events).  Analysis and rendering live in
:mod:`repro.trace.timeline` and :mod:`repro.trace.analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class Interval:
    """One traced activity on one rank."""

    rank: int
    category: str   # "compute" | "wait" | "io" | application-defined
    label: str
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class Tracer:
    """Append-only interval store with cheap filters."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.intervals: List[Interval] = []

    def record(self, rank: int, category: str, label: str,
               t0: float, t1: float) -> None:
        """Record one interval; no-op when disabled or zero-length."""
        if not self.enabled or t1 <= t0:
            return
        self.intervals.append(Interval(rank, category, label, t0, t1))

    def for_rank(self, rank: int) -> List[Interval]:
        return [iv for iv in self.intervals if iv.rank == rank]

    def by_category(self, category: str) -> List[Interval]:
        return [iv for iv in self.intervals if iv.category == category]

    def by_label(self, label: str) -> List[Interval]:
        return [iv for iv in self.intervals if iv.label == label]

    def ranks(self) -> List[int]:
        return sorted({iv.rank for iv in self.intervals})

    def span(self) -> Tuple[float, float]:
        """(earliest start, latest end) across all intervals."""
        if not self.intervals:
            return (0.0, 0.0)
        return (
            min(iv.t0 for iv in self.intervals),
            max(iv.t1 for iv in self.intervals),
        )

    def total_time(self, rank: Optional[int] = None,
                   category: Optional[str] = None,
                   label: Optional[str] = None) -> float:
        """Summed duration of intervals matching all given filters."""
        total = 0.0
        for iv in self.intervals:
            if rank is not None and iv.rank != rank:
                continue
            if category is not None and iv.category != category:
                continue
            if label is not None and iv.label != label:
                continue
            total += iv.duration
        return total

    def category_breakdown(self, rank: Optional[int] = None
                           ) -> Dict[str, float]:
        """Total duration per category (optionally one rank)."""
        out: Dict[str, float] = {}
        for iv in self.intervals:
            if rank is not None and iv.rank != rank:
                continue
            out[iv.category] = out.get(iv.category, 0.0) + iv.duration
        return out

    def to_records(self) -> List[dict]:
        """Plain-dict export (JSON-serializable)."""
        return [
            {"rank": iv.rank, "category": iv.category, "label": iv.label,
             "t0": iv.t0, "t1": iv.t1}
            for iv in self.intervals
        ]


def merge_intervals(spans: Iterable[Tuple[float, float]]
                    ) -> List[Tuple[float, float]]:
    """Union of possibly-overlapping (t0, t1) spans, sorted and merged.

    Shared by the overlap metrics: the *busy time* of a rank or group is
    the measure of the union of its intervals, not the sum (concurrent
    activities must not double-count).
    """
    spans = sorted((s for s in spans if s[1] > s[0]), key=lambda s: s[0])
    out: List[Tuple[float, float]] = []
    for t0, t1 in spans:
        if out and t0 <= out[-1][1]:
            if t1 > out[-1][1]:
                out[-1] = (out[-1][0], t1)
        else:
            out.append((t0, t1))
    return out


def measure(spans: Iterable[Tuple[float, float]]) -> float:
    """Total length of the union of spans."""
    return sum(t1 - t0 for t0, t1 in merge_intervals(spans))
