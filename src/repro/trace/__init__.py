"""Execution tracing and timeline analysis (the simulation's HPCToolkit)."""

from .analysis import (
    concurrency_profile,
    idle_fraction,
    imbalance_stats,
    measured_beta,
    overlap_fraction,
)
from .recorder import Interval, Tracer, measure, merge_intervals
from .timeline import legend, render

__all__ = [
    "Interval", "Tracer", "concurrency_profile", "idle_fraction",
    "imbalance_stats", "legend", "measure", "measured_beta",
    "merge_intervals", "overlap_fraction", "render",
]
