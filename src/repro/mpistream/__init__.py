"""``repro.mpistream`` — the paper's MPIStream library, in Python.

A faithful port of the MPI-based stream library of Section III
(Peng et al., also EuroMPI'15 "A data streaming model in MPI"):
directional channels between producer and consumer groups, small
asynchronous stream elements, on-the-fly operators, first-come-first-
served consumption, explicit termination.

Paper-to-API map::

    MPIStream_CreateChannel  ->  create_channel(comm, is_prod, is_cons)
    MPIStream_Attach         ->  attach(channel, operator, ...)
    MPIStream_Isend          ->  stream.isend(data)
    MPIStream_Operate        ->  stream.operate()
    MPIStream_Terminate      ->  stream.terminate()
    MPIStream_FreeChannel    ->  channel.free()
"""

from .channel import StreamChannel, create_channel
from .element import TERMINATE, StreamElement, element_nbytes
from .operators import Aggregator, Collector, Forwarder, ReduceByKey, RunningStats
from .profiles import StreamProfile
from .stream import DEFAULT_ELEMENT_OVERHEAD, DEFAULT_WINDOW, Stream, attach

__all__ = [
    "Aggregator", "Collector", "DEFAULT_ELEMENT_OVERHEAD", "DEFAULT_WINDOW",
    "Forwarder", "ReduceByKey", "RunningStats", "Stream", "StreamChannel",
    "StreamElement", "StreamProfile", "TERMINATE", "attach", "create_channel",
    "element_nbytes",
]
