"""Builtin stream operators.

Operators are what the paper attaches to a data stream
(``MPIStream_Attach``): a callable applied to each arriving
:class:`~repro.mpistream.element.StreamElement`.  These cover the
patterns the case studies use — reduce-by-key (MapReduce), aggregation
buffers flushed by a callback (particle exchange, particle I/O), plain
collection, and running statistics (the Listing-1 workload analyzer).

All builtins are plain classes with ``__call__`` so they compose with
both plain-function and generator-function operator slots.  They run
once per arriving element — stream rates make attribute layout and the
per-pair combine dispatch measurable, hence ``__slots__`` throughout
and the inlined default combine in :class:`ReduceByKey`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, Generator, List, Optional

from .element import StreamElement


class Collector:
    """Append every element's payload to a list (test/diagnostic sink)."""

    __slots__ = ("items", "sources")

    def __init__(self) -> None:
        self.items: List[Any] = []
        self.sources: List[int] = []

    def __call__(self, element: StreamElement) -> None:
        self.items.append(element.data)
        self.sources.append(element.source)


class ReduceByKey:
    """Merge ``(key, value)`` elements into a running dictionary.

    ``combine`` folds a new value into the accumulator for its key
    (default: addition — the word-histogram reduce; ``combine`` is then
    None and the fold is inlined ``+``).  Elements may be a single pair
    or an iterable of pairs (micro-batched streams).
    """

    __slots__ = ("combine", "table")

    def __init__(self, combine: Optional[Callable] = None):
        self.combine = combine
        self.table: Dict[Any, Any] = {}

    def __call__(self, element: StreamElement) -> None:
        data = element.data
        pairs = data if isinstance(data, (list, tuple)) and data and \
            isinstance(data[0], tuple) else [data]
        table = self.table
        combine = self.combine
        if combine is None:
            for key, value in pairs:
                if key in table:
                    table[key] = table[key] + value
                else:
                    table[key] = value
        else:
            for key, value in pairs:
                if key in table:
                    table[key] = combine(table[key], value)
                else:
                    table[key] = value


class Aggregator:
    """Buffer payloads by a key and flush batches through a callback.

    The decoupled particle exchange uses this shape: elements are
    particles keyed by destination rank; once a destination's buffer
    reaches ``batch_size`` the ``flush`` generator is invoked with
    ``(key, batch)`` and may communicate.  Call :meth:`drain` at stream
    end for the leftovers.
    """

    __slots__ = ("key_fn", "flush", "batch_size", "buffers", "flushes")

    def __init__(self, key_fn: Callable[[StreamElement], Any],
                 flush: Callable[[Any, List[Any]], Generator],
                 batch_size: int = 64):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.key_fn = key_fn
        self.flush = flush
        self.batch_size = batch_size
        self.buffers: Dict[Any, List[Any]] = defaultdict(list)
        self.flushes = 0

    def __call__(self, element: StreamElement) -> Generator[Any, Any, None]:
        key = self.key_fn(element)
        buf = self.buffers[key]
        buf.append(element.data)
        if len(buf) >= self.batch_size:
            self.buffers[key] = []
            self.flushes += 1
            yield from self.flush(key, buf)

    def drain(self) -> Generator[Any, Any, None]:
        """Flush all non-empty buffers (call after ``operate`` returns)."""
        for key, buf in list(self.buffers.items()):
            if buf:
                self.buffers[key] = []
                self.flushes += 1
                yield from self.flush(key, buf)


class RunningStats:
    """Streaming min / max / mean / count over numeric payloads.

    The paper's Listing-1 example decouples exactly this analysis
    (min/max/median workload) to a consumer group.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def __call__(self, element: StreamElement) -> None:
        x = float(element.data)
        self.count += 1
        self.total += x
        self.min = x if self.min is None else min(self.min, x)
        self.max = x if self.max is None else max(self.max, x)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        return {"count": self.count, "min": self.min, "max": self.max,
                "mean": self.mean}


class Forwarder:
    """Re-stream each element onto another stream (pipeline stage).

    Used to chain groups: e.g. the MapReduce reduce group forwards
    partial tables toward the master aggregation stream.
    """

    __slots__ = ("downstream", "transform", "forwarded")

    def __init__(self, downstream, transform: Optional[Callable] = None):
        self.downstream = downstream
        self.transform = transform
        self.forwarded = 0

    def __call__(self, element: StreamElement) -> Generator[Any, Any, None]:
        data = element.data if self.transform is None else self.transform(
            element.data)
        yield from self.downstream.isend(data)
        self.forwarded += 1
