"""Stream elements: the basic unit of the dataflow.

The paper (Section III-A): *"The basic unit of a stream is called
stream element.  Stream elements are usually small in size and are
injected into the channel as soon as data for one stream element is
ready."*  An element carries its payload, provenance (which producer,
which position in that producer's sequence) and wire size, which the
performance model's overhead term ``(D/S) * o`` is accounted against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..simmpi.datatypes import payload_nbytes

class _Terminate:
    """Unique sentinel type for the end-of-stream control element."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<MPIStream TERMINATE>"


#: control marker payload announcing the end of one producer's stream.
#: Matched by identity (payloads travel by reference inside the
#: simulation), so no application payload can collide with it.
TERMINATE = _Terminate()


@dataclass(frozen=True)
class StreamElement:
    """One unit of streamed data, as seen by the consumer's operator."""

    data: Any
    source: int        # producer's rank in the channel communicator
    seq: int           # position in that producer's stream (0-based)
    nbytes: int        # wire size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"StreamElement(source={self.source}, seq={self.seq}, "
                f"nbytes={self.nbytes})")


def element_nbytes(data: Any) -> int:
    """Wire size of an element payload (plus a tiny header)."""
    return payload_nbytes(data) + 8  # seq header
