"""Stream elements: the basic unit of the dataflow.

The paper (Section III-A): *"The basic unit of a stream is called
stream element.  Stream elements are usually small in size and are
injected into the channel as soon as data for one stream element is
ready."*  An element carries its payload, provenance (which producer,
which position in that producer's sequence) and wire size, which the
performance model's overhead term ``(D/S) * o`` is accounted against.
"""

from __future__ import annotations

from typing import Any

from ..simmpi.datatypes import payload_nbytes

class _Terminate:
    """Unique sentinel type for the end-of-stream control element."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<MPIStream TERMINATE>"


#: control marker payload announcing the end of one producer's stream.
#: Matched by identity (payloads travel by reference inside the
#: simulation), so no application payload can collide with it.
TERMINATE = _Terminate()


class StreamElement:
    """One unit of streamed data, as seen by the consumer's operator.

    A plain ``__slots__`` record: one is created per received element,
    and the frozen-dataclass ``object.__setattr__`` construction path
    was measurable at stream rates of 100k+ elements/s.
    """

    __slots__ = ("data", "source", "seq", "nbytes")

    def __init__(self, data: Any, source: int, seq: int, nbytes: int):
        self.data = data
        self.source = source   # producer's rank in the channel communicator
        self.seq = seq         # position in that producer's stream (0-based)
        self.nbytes = nbytes   # wire size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"StreamElement(source={self.source}, seq={self.seq}, "
                f"nbytes={self.nbytes})")

    def __eq__(self, other) -> bool:
        if not isinstance(other, StreamElement):
            return NotImplemented
        return (self.data == other.data and self.source == other.source
                and self.seq == other.seq and self.nbytes == other.nbytes)

    def __hash__(self) -> int:
        # value hash, like the frozen dataclass this class replaced
        return hash((self.data, self.source, self.seq, self.nbytes))


def element_nbytes(data: Any) -> int:
    """Wire size of an element payload (plus a tiny header).

    The ``__wire_nbytes__`` protocol is checked first: application
    payload types (histograms, particle blocks) dominate the
    per-element path and skip the generic type dispatch.
    """
    wire = getattr(data, "__wire_nbytes__", None)
    if wire is not None:
        return int(wire() if callable(wire) else wire) + 8  # seq header
    return payload_nbytes(data) + 8
