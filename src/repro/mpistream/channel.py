"""Stream channels: the producer->consumer communication substrate.

``create_channel`` is the Python rendering of the paper's
``MPIStream_CreateChannel(is_data_producer, is_data_consumer, comm,
&channel)``: a collective over ``comm`` in which every rank declares
its role; the channel then knows the producer and consumer groups and
owns a *dedicated duplicate* of the communicator so stream traffic can
never match application point-to-point messages.

Routing: each producer is statically assigned one consumer by blocked
distribution (producer i of NP targets consumer ``i * NC // NP``), the
assignment the paper's case studies use (map ranks stream to "their"
reducer; compute ranks stream to "their" exchange/I-O server).  Custom
per-element routing is available per stream (see
:class:`~repro.mpistream.stream.Stream`).
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..simmpi.comm import Comm
from ..simmpi.errors import (
    CommunicatorError,
    ProcessFailedError,
    RevokedError,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is baked into the image
    _np = None

#: producer counts from which the routing table switches to a dense
#: numpy array (below this, list arithmetic wins on constant factors)
DENSE_PEERS = 256

#: blocked-routing tables keyed (nproducers, nconsumers) — shared by
#: every channel of the same shape and by the plan compiler's schedule
#: emission pass (repro.compile.passes), so runtime and compiler can
#: never disagree on the assignment
_peers_cache: dict = {}


def blocked_peers(nproducers: int, nconsumers: int):
    """Producer index -> consumer index table of the blocked
    distribution (producer ``i`` of NP targets consumer ``i*NC//NP``).

    Returns a numpy ``int64`` array for large producer counts, a plain
    list below :data:`DENSE_PEERS`.  Cached per shape."""
    key = (nproducers, nconsumers)
    hit = _peers_cache.get(key)
    if hit is not None:
        return hit[0]
    if _np is not None and nproducers >= DENSE_PEERS:
        table = (_np.arange(nproducers, dtype=_np.int64)
                 * nconsumers // nproducers)
        counts = _np.bincount(table, minlength=nconsumers)
    else:
        table = [i * nconsumers // nproducers for i in range(nproducers)]
        counts = [0] * nconsumers
        for ci in table:
            counts[ci] += 1
    if len(_peers_cache) >= 64:
        _peers_cache.clear()
    _peers_cache[key] = (table, counts)
    return table


def blocked_fan_in(nproducers: int, nconsumers: int):
    """Producers assigned per consumer (the bincount of
    :func:`blocked_peers`), from the same per-shape cache."""
    blocked_peers(nproducers, nconsumers)
    return _peers_cache[(nproducers, nconsumers)][1]


class _ChannelGroups:
    """Role structures shared by every rank of one channel.

    Built once per ``create_channel`` collective (all ranks receive the
    same role list object from the allgather, so the derived lists and
    index maps are computed once and shared) instead of per rank —
    channel setup used to be O(P) python work on each of P ranks.
    """

    __slots__ = ("producers", "consumers", "producer_index_of",
                 "consumer_index_of")

    def __init__(self, producers: List[int], consumers: List[int]):
        self.producers = producers
        self.consumers = consumers
        self.producer_index_of = {r: i for i, r in enumerate(producers)}
        self.consumer_index_of = {r: i for i, r in enumerate(consumers)}


class StreamChannel:
    """A directional dataflow link between two groups of processes."""

    def __init__(self, comm: Comm, producers: List[int], consumers: List[int],
                 groups: Optional[_ChannelGroups] = None):
        if not producers or not consumers:
            raise CommunicatorError(
                f"a stream channel needs at least one producer and one "
                f"consumer: got {len(producers)} producer(s) and "
                f"{len(consumers)} consumer(s) over {comm.name!r} "
                f"of size {comm.size}"
            )
        if groups is None:
            groups = _ChannelGroups(list(producers), list(consumers))
        self.comm = comm                    # dedicated dup, stream traffic only
        self.producers = groups.producers   # local ranks in `comm` (shared)
        self.consumers = groups.consumers
        self._groups = groups
        self._producer_index = groups.producer_index_of.get(comm.rank)
        self._consumer_index = groups.consumer_index_of.get(comm.rank)
        self.is_producer = self._producer_index is not None
        self.is_consumer = self._consumer_index is not None
        self._next_stream_tag = 1
        self.freed = False

    # ------------------------------------------------------------------
    @property
    def nproducers(self) -> int:
        return len(self.producers)

    @property
    def nconsumers(self) -> int:
        return len(self.consumers)

    @property
    def producer_index(self) -> Optional[int]:
        """This rank's index among the producers (None if not one)."""
        return self._producer_index

    @property
    def consumer_index(self) -> Optional[int]:
        return self._consumer_index

    # ------------------------------------------------------------------
    # static blocked routing
    # ------------------------------------------------------------------
    def consumer_of(self, producer_index: int) -> int:
        """Local rank of the consumer assigned to ``producer_index``."""
        nc, np_ = self.nconsumers, self.nproducers
        return self.consumers[producer_index * nc // np_]

    def producers_of(self, consumer_index: int) -> List[int]:
        """Indices of producers statically assigned to this consumer."""
        table = blocked_peers(self.nproducers, self.nconsumers)
        if _np is not None and isinstance(table, _np.ndarray):
            return _np.nonzero(table == consumer_index)[0].tolist()
        return [i for i, ci in enumerate(table) if ci == consumer_index]

    def fan_in(self, consumer_index: int) -> int:
        """Number of producers assigned to ``consumer_index`` — the
        consumer-side termination count, without materializing the
        index list ``producers_of`` returns."""
        return int(blocked_fan_in(self.nproducers,
                                  self.nconsumers)[consumer_index])

    @property
    def role(self) -> str:
        """This rank's role on the channel ("producer" / "consumer" /
        "bystander") — diagnostics and failure handling both need it."""
        return ("producer" if self.is_producer else
                "consumer" if self.is_consumer else "bystander")

    def producer_index_of(self, local_rank: int):
        """Producer index of a member local rank (None if not one)."""
        return self._groups.producer_index_of.get(local_rank)

    def consumer_index_of(self, local_rank: int):
        """Consumer index of a member local rank (None if not one)."""
        return self._groups.consumer_index_of.get(local_rank)

    # ------------------------------------------------------------------
    # failure notification (fault-mode runs; see repro.faults)
    # ------------------------------------------------------------------
    def failed_members(self):
        """Local ranks of channel members whose failure has been
        detected, with their roles: ``[(local_rank, role), ...]``.
        Empty on fault-free runs."""
        out = []
        for local in self.comm.failed_members():
            if self._groups.producer_index_of.get(local) is not None:
                out.append((local, "producer"))
            elif self._groups.consumer_index_of.get(local) is not None:
                out.append((local, "consumer"))
            else:
                out.append((local, "bystander"))
        return out

    def owner_consumer(self, consumer_index: int, dead_locals):
        """The live consumer currently responsible for ``consumer_index``'s
        work: the index itself if alive, else the next live consumer in
        cyclic index order (the deterministic successor rule every rank
        computes identically).  None when every consumer is dead."""
        consumers = self.consumers
        nc = len(consumers)
        for k in range(nc):
            cand = (consumer_index + k) % nc
            if consumers[cand] not in dead_locals:
                return cand
        return None

    # ------------------------------------------------------------------
    def alloc_stream_tag(self) -> int:
        """Per-channel stream id; identical across ranks because streams
        are attached collectively in program order."""
        tag = self._next_stream_tag
        self._next_stream_tag += 1
        return tag

    def check_alive(self) -> None:
        if self.freed:
            raise CommunicatorError(
                f"operation on a freed stream channel (rank "
                f"{self.comm.rank}, role {self.role})")

    def free(self) -> Generator[Any, Any, None]:
        """Collective channel teardown (``MPIStream_FreeChannel``).

        On a fault-mode run where a channel member has already failed,
        the collective barrier could never complete; teardown degrades
        to a local free (ULFM without shrink), deterministically on
        every surviving rank."""
        self.check_alive()
        ctl = self.comm.world._fault_ctl
        if ctl is not None:
            coll_only = (self.comm.context_coll,)
            if any(g in ctl.failed for g in self.comm.ranks):
                # revoke the collective context so members already
                # parked inside the teardown barrier (they entered
                # before the crash) escape instead of waiting for
                # ranks that will never arrive; the p2p context stays
                # live — other members may still be streaming
                ctl.revoke(self.comm, contexts=coll_only)
                self.freed = True
                return
            try:
                yield from self.comm.barrier()
            except (ProcessFailedError, RevokedError):
                # a member died while we were inside the barrier:
                # degrade, releasing everyone else parked in it too
                ctl.revoke(self.comm, contexts=coll_only)
            self.freed = True
            return
        yield from self.comm.barrier()
        self.freed = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"StreamChannel({self.nproducers}P->{self.nconsumers}C, "
                f"rank={self.comm.rank}:{self.role})")


def create_channel(comm: Comm, is_producer: bool, is_consumer: bool
                   ) -> Generator[Any, Any, StreamChannel]:
    """Collective channel creation over ``comm``.

    Every rank declares its role; ranks may be neither (bystanders that
    hold the channel but move no data), but not both — the paper's
    dataflow is directional between disjoint groups.
    """
    if is_producer and is_consumer:
        raise CommunicatorError(
            "a rank cannot be both producer and consumer of one channel; "
            "create two channels for bidirectional flow"
        )
    roles = yield from comm.allgather((bool(is_producer), bool(is_consumer)))
    # The allgather moves payloads by reference, so every member rank
    # holds the *same* roles list object; derive the role groups once
    # and share them instead of rebuilding O(P) structures per rank.
    world = comm.world
    cache = getattr(world, "_channel_groups", None)
    if cache is None:
        cache = world._channel_groups = {}
    hit = cache.get(id(roles))
    if hit is not None and hit[0] is roles:
        groups = hit[1]
    else:
        producers = [r for r, (p, _) in enumerate(roles) if p]
        consumers = [r for r, (_, c) in enumerate(roles) if c]
        groups = _ChannelGroups(producers, consumers)
        # bounded: eviction only costs a rebuild on the (rare) miss,
        # and the identity guard above rejects any stale id() reuse
        if len(cache) >= 8:
            cache.clear()
        cache[id(roles)] = (roles, groups)
    dedicated = yield from comm.dup()
    return StreamChannel(dedicated, groups.producers, groups.consumers,
                         groups=groups)
