"""Streams: attach, inject, operate, terminate.

The Python rendering of the paper's stream API (Section III-A):

=====================================  ==================================
Paper (C)                              Here
=====================================  ==================================
``MPIStream_Attach(dt, op, &s, &ch)``  ``s = yield from attach(ch, op)``
``MPIStream_Isend(&data, &s)``         ``yield from s.isend(data)``
``MPIStream_Operate(&s)``              ``yield from s.operate()``
``MPIStream_Terminate(&s)``            ``yield from s.terminate()``
=====================================  ==================================

Semantics reproduced faithfully:

* elements are injected *asynchronously* as soon as they exist
  (non-blocking sends with a bounded in-flight window);
* the consumer processes elements **first-come-first-served across all
  producers** (an ``ANY_SOURCE`` receive) — this is the imbalance-
  absorption mechanism;
* the attached operator is applied *on the fly* to each arriving
  element; operators may themselves communicate or charge compute time
  (pass a generator function);
* ``terminate`` ends one producer's flow; ``operate`` returns when all
  producers that target this consumer have terminated.

Each ``isend`` charges the Eq.-4 per-element overhead ``o``
(element construction + injection call), configurable per stream.
"""

from __future__ import annotations

import inspect
from collections import deque
from typing import Any, Callable, Deque, Generator, Optional

from ..simmpi.comm import ComputeCharge
from ..simmpi.engine import Delay, WaitFlag
from ..simmpi.errors import CommunicatorError, RequestError
from ..simmpi.matching import ANY_SOURCE
from .channel import StreamChannel
from .element import TERMINATE, StreamElement, element_nbytes
from .profiles import StreamProfile

#: default per-element injection overhead (seconds) — the `o` of Eq. 4
DEFAULT_ELEMENT_OVERHEAD = 2.0e-6

#: default bound on a producer's in-flight elements before it waits
DEFAULT_WINDOW = 64


class Stream:
    """One attached data stream over a :class:`StreamChannel`."""

    def __init__(self, channel: StreamChannel, operator: Optional[Callable],
                 tag: int, element_overhead: float, window: int,
                 router: Optional[Callable] = None, eager: bool = False):
        self.channel = channel
        self.operator = operator
        self.tag = tag
        self.element_overhead = element_overhead
        self.window = window
        self.router = router
        self.eager = eager
        self.profile = StreamProfile()
        self._seq = 0
        self._pending: Deque = deque()
        self._terminated = False
        # static blocked routing resolves the destination once, not per
        # element (custom routers stay per-element, see _dest)
        if channel.is_producer and router is None:
            self._static_dest = channel.consumer_of(channel.producer_index)
        else:
            self._static_dest = None
        # on noise-free machines the per-element injection delay is one
        # constant — prebuild the syscall object (lazily, see isend)
        self._inject_delay = None
        # consumer-side bookkeeping
        if channel.is_consumer:
            ci = channel.consumer_index
            if router is None:
                self._expected_terms = len(channel.producers_of(ci))
            else:
                # custom routing: every producer terminates to every consumer
                self._expected_terms = channel.nproducers
        else:
            self._expected_terms = 0
        self._terms_seen = 0

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def _dest(self, data: Any) -> int:
        pi = self.channel.producer_index
        if self.router is not None:
            ci = self.router(pi, self._seq, data) % self.channel.nconsumers
            return self.channel.consumers[ci]
        return self.channel.consumer_of(pi)

    def isend(self, data: Any) -> Generator[Any, Any, None]:
        """Inject one stream element (``MPIStream_Isend``).

        Non-blocking: returns once the element is handed to the
        transport.  When ``window`` elements are already in flight, the
        oldest is waited for before the new one is injected, so at most
        ``window`` elements are ever pending (bounded buffering,
        Section II-D's memory argument).
        """
        channel = self.channel
        if channel.freed:
            channel.check_alive()
        if not channel.is_producer:
            raise CommunicatorError("isend on a non-producer rank")
        if self._terminated:
            raise RequestError("isend after terminate")
        comm = channel.comm
        overhead = self.element_overhead
        if overhead > 0:
            world = comm.world
            if world._noise_free and world.tracer is None:
                # constant injection cost: reuse one Delay object and
                # skip the compute() generator entirely
                inject = self._inject_delay
                if inject is None:
                    inject = self._inject_delay = Delay(
                        overhead / world._compute_speed)
                yield inject
            else:
                yield from comm.compute(overhead, label="stream-inject")
        if len(self._pending) >= self.window:
            oldest = self._pending.popleft()
            # comm.wait inlined (label "stream-window"): the window is
            # normally full in steady state, so this runs per element
            oldest._waited = True
            if not oldest.is_set:
                world = comm.world
                engine = world.engine
                t0 = engine.now
                yield WaitFlag(oldest)
                if world.tracer is not None and engine.now > t0:
                    world.tracer.record(comm.global_rank, "wait",
                                        "stream-window", t0, engine.now)
        dest = (self._static_dest if self._static_dest is not None
                else self._dest(data))
        payload = (self._seq, data)
        # element_nbytes(data) == payload_nbytes((seq, data)): size the
        # element once for both the transport and the profile.  The
        # comm.isend generator is bypassed: destination and tag are
        # channel-fixed and already validated, so the per-element work
        # is exactly the o_send delay plus the transport hand-off.
        nbytes = element_nbytes(data)
        world = comm.world
        o_send_delay = world._o_send_delay
        if o_send_delay is not None:
            yield o_send_delay
        req = world.post_send(comm._global, comm.ranks[dest], comm._rank,
                              self.tag, comm.context, payload, nbytes,
                              force_eager=self.eager)
        self._pending.append(req)
        # profile.record_send inlined (per-element path)
        profile = self.profile
        profile.elements_sent += 1
        profile.bytes_sent += nbytes
        profile.overhead_paid += overhead
        self._seq += 1

    def terminate(self) -> Generator[Any, Any, None]:
        """End this producer's flow (``MPIStream_Terminate``).

        Flushes the in-flight window, then sends a TERM control element
        to the consumer(s) this producer can reach."""
        self.channel.check_alive()
        if not self.channel.is_producer:
            raise CommunicatorError("terminate on a non-producer rank")
        if self._terminated:
            raise RequestError("stream terminated twice")
        comm = self.channel.comm
        for req in self._pending:
            yield from comm.wait(req, label="stream-flush")
        self._pending.clear()
        if self.router is None:
            targets = [self.channel.consumer_of(self.channel.producer_index)]
        else:
            targets = list(self.channel.consumers)
        for dest in targets:
            yield from comm.send((self._seq, TERMINATE), dest, tag=self.tag)
        self._terminated = True

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    @property
    def active_producers(self) -> int:
        """Producers of this consumer that have not yet terminated."""
        return self._expected_terms - self._terms_seen

    def recv_element(self) -> Generator[Any, Any, Optional[StreamElement]]:
        """Receive the next element, FCFS across producers.

        Returns ``None`` when a TERM is absorbed (callers loop).  Raises
        if the stream is already fully terminated.
        """
        channel = self.channel
        if channel.freed:
            channel.check_alive()
        if not channel.is_consumer:
            raise CommunicatorError("recv_element on a non-consumer rank")
        if self._expected_terms - self._terms_seen <= 0:
            raise RequestError("stream fully terminated; no more elements")
        comm = channel.comm
        req = comm.irecv(ANY_SOURCE, self.tag)
        # comm.wait inlined: one request per element makes the wait
        # generator's allocation measurable at stream rates
        req._waited = True
        if req.is_set:
            (seq, data), st = req.payload
        else:
            world = comm.world
            engine = world.engine
            t0 = engine.now
            (seq, data), st = yield WaitFlag(req)
            if world.tracer is not None and engine.now > t0:
                world.tracer.record(comm.global_rank, "wait", "recv",
                                    t0, engine.now)
        if data is TERMINATE:  # identity: payloads move by reference in-sim
            self._terms_seen += 1
            self.profile.terminates_seen += 1
            return None
        self.profile.record_recv(st.nbytes, comm.time)
        return StreamElement(data, st.source, seq, st.nbytes)

    def _apply(self, element: StreamElement) -> Generator[Any, Any, None]:
        result = self.operator(element)
        if inspect.isgenerator(result) or type(result) is ComputeCharge:
            yield from result

    def operate(self) -> Generator[Any, Any, StreamProfile]:
        """Consume until every producer terminates (``MPIStream_Operate``),
        applying the attached operator to each element on arrival."""
        operator = self.operator
        if operator is None:
            raise CommunicatorError("operate on a stream with no operator")
        channel = self.channel
        if channel.freed:
            channel.check_alive()
        # note: no is_consumer guard — a non-consumer has zero expected
        # terminations, skips the loop and returns an empty profile,
        # exactly as before the loop was inlined
        comm = channel.comm
        world = comm.world
        engine = world.engine
        profile = self.profile
        tag = self.tag
        profile.service_start = engine.now
        # the consumer hot loop: recv_element + _apply are inlined — at
        # funnel rates the two extra generators per element are real
        # cost.  Semantics identical to `recv_element()` + `_apply()`.
        post_recv = world.post_recv
        my_global = comm._global
        context = comm.context
        while self._expected_terms > self._terms_seen:
            req = post_recv(my_global, ANY_SOURCE, tag, context,
                            label="stream-recv")
            req._waited = True
            if req.is_set:
                (seq, data), st = req.payload
            else:
                t0 = engine.now
                (seq, data), st = yield WaitFlag(req)
                if world.tracer is not None and engine.now > t0:
                    world.tracer.record(comm.global_rank, "wait", "recv",
                                        t0, engine.now)
            if data is TERMINATE:
                self._terms_seen += 1
                profile.terminates_seen += 1
                continue
            # profile.record_recv inlined (per-element path)
            profile.elements_received += 1
            profile.bytes_received += st.nbytes
            profile.arrival_times.append(engine.now)
            result = operator(StreamElement(data, st.source, seq, st.nbytes))
            if inspect.isgenerator(result) or type(result) is ComputeCharge:
                yield from result
        profile.service_end = engine.now
        return profile

    def operate_pending(self) -> Generator[Any, Any, int]:
        """Drain only the elements already queued (non-blocking variant);
        returns the number processed.  Lets a consumer interleave stream
        service with its own work."""
        if self.operator is None:
            raise CommunicatorError("operate_pending needs an operator")
        comm = self.channel.comm
        processed = 0
        while self.active_producers > 0:
            st = comm.iprobe(source=ANY_SOURCE, tag=self.tag)
            if st is None:
                break
            element = yield from self.recv_element()
            if element is not None:
                yield from self._apply(element)
                processed += 1
        return processed


def attach(channel: StreamChannel, operator: Optional[Callable] = None,
           element_overhead: float = DEFAULT_ELEMENT_OVERHEAD,
           window: int = DEFAULT_WINDOW,
           router: Optional[Callable] = None,
           eager: bool = False) -> Generator[Any, Any, Stream]:
    """Attach a stream to ``channel`` (``MPIStream_Attach``).

    Attaching is *local* (no synchronization): the stream id comes from
    a per-channel counter, so every rank that attaches streams to a
    given channel must do so in the same per-channel order — the same
    contract real MPI imposes on communicator/collective creation.
    Producers may start injecting before the consumer attaches; elements
    queue at the consumer until it begins operating.

    Parameters
    ----------
    operator:
        Callable applied to each :class:`StreamElement` on the consumer;
        may be a plain function or a generator function (to communicate
        or charge compute time).  Producers may pass None.
    element_overhead:
        Per-element injection cost in seconds — Eq. 4's ``o``.
    window:
        Producer-side bound on in-flight elements.
    router:
        Optional ``router(producer_index, seq, data) -> consumer_index``
        for per-element routing (e.g. key hashing).  With a custom
        router every producer's TERM fans out to all consumers.
    eager:
        Force fire-and-forget injection regardless of element size
        (models buffered eager delivery; relaxed-dataflow consumers may
        leave tail elements unconsumed without deadlocking producers).
    """
    channel.check_alive()
    if window < 1:
        raise ValueError("window must be >= 1")
    if element_overhead < 0:
        raise ValueError("element_overhead must be >= 0")
    tag = channel.alloc_stream_tag()
    if False:  # pragma: no cover - keeps this function a generator
        yield None
    return Stream(channel, operator, tag, element_overhead, window, router,
                  eager=eager)
