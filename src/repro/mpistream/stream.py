"""Streams: attach, inject, operate, terminate.

The Python rendering of the paper's stream API (Section III-A):

=====================================  ==================================
Paper (C)                              Here
=====================================  ==================================
``MPIStream_Attach(dt, op, &s, &ch)``  ``s = yield from attach(ch, op)``
``MPIStream_Isend(&data, &s)``         ``yield from s.isend(data)``
``MPIStream_Operate(&s)``              ``yield from s.operate()``
``MPIStream_Terminate(&s)``            ``yield from s.terminate()``
=====================================  ==================================

Semantics reproduced faithfully:

* elements are injected *asynchronously* as soon as they exist
  (non-blocking sends with a bounded in-flight window);
* the consumer processes elements **first-come-first-served across all
  producers** (an ``ANY_SOURCE`` receive) — this is the imbalance-
  absorption mechanism;
* the attached operator is applied *on the fly* to each arriving
  element; operators may themselves communicate or charge compute time
  (pass a generator function);
* ``terminate`` ends one producer's flow; ``operate`` returns when all
  producers that target this consumer have terminated.

Each ``isend`` charges the Eq.-4 per-element overhead ``o``
(element construction + injection call), configurable per stream.
"""

from __future__ import annotations

import inspect
from collections import deque
from typing import Any, Callable, Deque, Generator, Optional

from ..simmpi.comm import ComputeCharge
from ..simmpi.engine import Delay, WaitFlag
from ..simmpi.errors import (
    CommunicatorError,
    FaultSignal,
    ProcessFailedError,
    RequestError,
    RevokedError,
)
from ..simmpi.matching import ANY_SOURCE
from .channel import StreamChannel
from .element import TERMINATE, StreamElement, element_nbytes
from .profiles import StreamProfile

#: default per-element injection overhead (seconds) — the `o` of Eq. 4
DEFAULT_ELEMENT_OVERHEAD = 2.0e-6

#: default bound on a producer's in-flight elements before it waits
DEFAULT_WINDOW = 64

#: checkpoint acks travel on the stream's tag plus this offset, so they
#: can never match data elements (stream tags are small per-channel ints)
ACK_TAG_BASE = 1 << 16


class Stream:
    """One attached data stream over a :class:`StreamChannel`."""

    def __init__(self, channel: StreamChannel, operator: Optional[Callable],
                 tag: int, element_overhead: float, window: int,
                 router: Optional[Callable] = None, eager: bool = False,
                 checkpoint=None):
        self.channel = channel
        self.operator = operator
        self.tag = tag
        self.element_overhead = element_overhead
        self.window = window
        self.router = router
        self.eager = eager
        self.profile = StreamProfile()
        self._seq = 0
        self._pending: Deque = deque()
        self._terminated = False
        # fault mode: active when the run injects faults or the stream
        # checkpoints; fault-free streams keep the pristine hot paths
        self.checkpoint = checkpoint
        self._ctl = channel.comm.world._fault_ctl
        self._fault_mode = self._ctl is not None or checkpoint is not None
        if checkpoint is not None:
            checkpoint.validate()
            if router is not None:
                raise CommunicatorError(
                    "checkpoint recovery needs static blocked routing; "
                    "a custom router cannot replay deterministically")
        self.ack_tag = tag + ACK_TAG_BASE
        if self._fault_mode:
            self._seen_version = 0
            self._handled_globals: set = set()
            self._dead_locals: set = set()
            self._termed_sources: set = set()
            #: dead producers already subtracted from expected_terms; a
            #: TERM of theirs still in flight must not count twice
            self._discounted_sources: set = set()
            self._unacked: Deque = deque()   # (seq, data, nbytes) un-acked
            self._ack_req = None
            self._contrib: dict = {}         # src local rank -> last seq
            self._since_ckpt = 0
            self._stream_failed = None
        # static blocked routing resolves the destination once, not per
        # element (custom routers stay per-element, see _dest)
        if channel.is_producer and router is None:
            self._static_dest = channel.consumer_of(channel.producer_index)
            self._dest_ci0 = (channel.producer_index * channel.nconsumers
                              // channel.nproducers)
        else:
            self._static_dest = None
            self._dest_ci0 = None
        # on noise-free machines the per-element injection delay is one
        # constant — prebuild the syscall object (lazily, see isend)
        self._inject_delay = None
        # compiled mode (repro.compile): bind a static send schedule
        # when the run opted in and this stream is representable; the
        # binder returns None otherwise and isend stays interpreted
        binder = channel.comm.world._stream_compiler
        self._cursor = binder(self) if binder is not None else None
        # consumer-side bookkeeping
        if channel.is_consumer:
            ci = channel.consumer_index
            if router is None:
                self._expected_terms = channel.fan_in(ci)
            else:
                # custom routing: every producer terminates to every consumer
                self._expected_terms = channel.nproducers
        else:
            self._expected_terms = 0
        self._terms_seen = 0

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def _dest(self, data: Any) -> int:
        pi = self.channel.producer_index
        if self.router is not None:
            ci = self.router(pi, self._seq, data) % self.channel.nconsumers
            return self.channel.consumers[ci]
        return self.channel.consumer_of(pi)

    def isend(self, data: Any) -> Generator[Any, Any, None]:
        """Inject one stream element (``MPIStream_Isend``).

        Non-blocking: returns once the element is handed to the
        transport.  When ``window`` elements are already in flight, the
        oldest is waited for before the new one is injected, so at most
        ``window`` elements are ever pending (bounded buffering,
        Section II-D's memory argument).
        """
        cur = self._cursor
        if cur is not None:
            # compiled mode: one Segment syscall replays the element's
            # whole event sequence (cursor.load validates freed/term)
            yield cur.load(data)
            return
        channel = self.channel
        if channel.freed:
            channel.check_alive()
        if not channel.is_producer:
            raise CommunicatorError(
                f"isend on a non-producer rank (rank {channel.comm.rank}, "
                f"role {channel.role})")
        if self._terminated:
            raise RequestError("isend after terminate")
        if self._fault_mode:
            yield from self._isend_fault(data)
            return
        comm = channel.comm
        overhead = self.element_overhead
        if overhead > 0:
            world = comm.world
            if world._noise_free and world.tracer is None:
                # constant injection cost: reuse one Delay object and
                # skip the compute() generator entirely
                inject = self._inject_delay
                if inject is None:
                    inject = self._inject_delay = Delay(
                        overhead / world._compute_speed)
                yield inject
            else:
                yield from comm.compute(overhead, label="stream-inject")
        if len(self._pending) >= self.window:
            oldest = self._pending.popleft()
            # comm.wait inlined (label "stream-window"): the window is
            # normally full in steady state, so this runs per element
            oldest._waited = True
            if not oldest.is_set:
                world = comm.world
                engine = world.engine
                t0 = engine.now
                yield WaitFlag(oldest)
                if world.tracer is not None and engine.now > t0:
                    world.tracer.record(comm.global_rank, "wait",
                                        "stream-window", t0, engine.now)
        dest = (self._static_dest if self._static_dest is not None
                else self._dest(data))
        payload = (self._seq, data)
        # element_nbytes(data) == payload_nbytes((seq, data)): size the
        # element once for both the transport and the profile.  The
        # comm.isend generator is bypassed: destination and tag are
        # channel-fixed and already validated, so the per-element work
        # is exactly the o_send delay plus the transport hand-off.
        nbytes = element_nbytes(data)
        world = comm.world
        o_send_delay = world._o_send_delay
        if o_send_delay is not None:
            yield o_send_delay
        req = world.post_send(comm._global, comm.ranks[dest], comm._rank,
                              self.tag, comm.context, payload, nbytes,
                              force_eager=self.eager)
        self._pending.append(req)
        # profile.record_send inlined (per-element path)
        profile = self.profile
        profile.elements_sent += 1
        profile.bytes_sent += nbytes
        profile.overhead_paid += overhead
        self._seq += 1

    def terminate(self) -> Generator[Any, Any, None]:
        """End this producer's flow (``MPIStream_Terminate``).

        Flushes the in-flight window, then sends a TERM control element
        to the consumer(s) this producer can reach."""
        self.channel.check_alive()
        if not self.channel.is_producer:
            raise CommunicatorError(
                f"terminate on a non-producer rank (rank "
                f"{self.channel.comm.rank}, role {self.channel.role})")
        if self._terminated:
            raise RequestError("stream terminated twice")
        if self._fault_mode:
            yield from self._terminate_fault()
            return
        comm = self.channel.comm
        for req in self._pending:
            yield from comm.wait(req, label="stream-flush")
        self._pending.clear()
        if self.router is None:
            targets = [self.channel.consumer_of(self.channel.producer_index)]
        else:
            targets = list(self.channel.consumers)
        for dest in targets:
            yield from comm.send((self._seq, TERMINATE), dest, tag=self.tag)
        self._terminated = True

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    @property
    def active_producers(self) -> int:
        """Producers of this consumer that have not yet terminated."""
        return self._expected_terms - self._terms_seen

    def recv_element(self) -> Generator[Any, Any, Optional[StreamElement]]:
        """Receive the next element, FCFS across producers.

        Returns ``None`` when a TERM is absorbed (callers loop).  Raises
        if the stream is already fully terminated.
        """
        channel = self.channel
        if channel.freed:
            channel.check_alive()
        if not channel.is_consumer:
            raise CommunicatorError(
                f"recv_element on a non-consumer rank (rank "
                f"{channel.comm.rank}, role {channel.role})")
        if self._expected_terms - self._terms_seen <= 0:
            raise RequestError("stream fully terminated; no more elements")
        comm = channel.comm
        req = comm.irecv(ANY_SOURCE, self.tag)
        # comm.wait inlined: one request per element makes the wait
        # generator's allocation measurable at stream rates
        req._waited = True
        if req.is_set:
            payload = req.payload
        else:
            world = comm.world
            engine = world.engine
            t0 = engine.now
            payload = yield WaitFlag(req)
            if world.tracer is not None and engine.now > t0:
                world.tracer.record(comm.global_rank, "wait", "recv",
                                    t0, engine.now)
        if payload.__class__ is FaultSignal:
            raise payload.error
        (seq, data), st = payload
        if data is TERMINATE:  # identity: payloads move by reference in-sim
            if self._fault_mode:
                self._termed_sources.add(st.source)
                if st.source in self._discounted_sources:
                    # death already discounted this producer; absorb the
                    # in-flight TERM without double-counting
                    self._discounted_sources.discard(st.source)
                    return None
            self._terms_seen += 1
            self.profile.terminates_seen += 1
            return None
        self.profile.record_recv(st.nbytes, comm.time)
        return StreamElement(data, st.source, seq, st.nbytes)

    def _apply(self, element: StreamElement) -> Generator[Any, Any, None]:
        result = self.operator(element)
        if inspect.isgenerator(result) or type(result) is ComputeCharge:
            yield from result

    def operate(self) -> Generator[Any, Any, StreamProfile]:
        """Consume until every producer terminates (``MPIStream_Operate``),
        applying the attached operator to each element on arrival."""
        operator = self.operator
        if operator is None:
            raise CommunicatorError("operate on a stream with no operator")
        channel = self.channel
        if channel.freed:
            channel.check_alive()
        if self._fault_mode:
            profile = yield from self._operate_fault()
            return profile
        # note: no is_consumer guard — a non-consumer has zero expected
        # terminations, skips the loop and returns an empty profile,
        # exactly as before the loop was inlined
        comm = channel.comm
        world = comm.world
        engine = world.engine
        profile = self.profile
        tag = self.tag
        profile.service_start = engine.now
        # the consumer hot loop: recv_element + _apply are inlined — at
        # funnel rates the two extra generators per element are real
        # cost.  Semantics identical to `recv_element()` + `_apply()`.
        post_recv = world.post_recv
        my_global = comm._global
        context = comm.context
        while self._expected_terms > self._terms_seen:
            req = post_recv(my_global, ANY_SOURCE, tag, context,
                            label="stream-recv")
            req._waited = True
            if req.is_set:
                (seq, data), st = req.payload
            else:
                t0 = engine.now
                (seq, data), st = yield WaitFlag(req)
                if world.tracer is not None and engine.now > t0:
                    world.tracer.record(comm.global_rank, "wait", "recv",
                                        t0, engine.now)
            if data is TERMINATE:
                self._terms_seen += 1
                profile.terminates_seen += 1
                continue
            # profile.record_recv inlined (per-element path)
            profile.elements_received += 1
            profile.bytes_received += st.nbytes
            profile.arrival_times.append(engine.now)
            result = operator(StreamElement(data, st.source, seq, st.nbytes))
            if inspect.isgenerator(result) or type(result) is ComputeCharge:
                yield from result
        profile.service_end = engine.now
        return profile

    def operate_pending(self) -> Generator[Any, Any, int]:
        """Drain only the elements already queued (non-blocking variant);
        returns the number processed.  Lets a consumer interleave stream
        service with its own work."""
        if self.operator is None:
            raise CommunicatorError("operate_pending needs an operator")
        comm = self.channel.comm
        processed = 0
        while self.active_producers > 0:
            st = comm.iprobe(source=ANY_SOURCE, tag=self.tag)
            if st is None:
                break
            element = yield from self.recv_element()
            if element is not None:
                yield from self._apply(element)
                processed += 1
        return processed

    # ------------------------------------------------------------------
    # fault mode (repro.faults): notification, checkpointing, recovery.
    # Everything below only runs when the simulation injects faults or
    # the stream declares a Checkpoint policy; the pristine paths above
    # stay byte-identical for fault-free runs.
    # ------------------------------------------------------------------
    def _poll_failures(self) -> Generator[Any, Any, None]:
        """Catch up on failures detected since this stream last looked."""
        ctl = self._ctl
        if ctl is not None and ctl.version != self._seen_version:
            yield from self._handle_failures()
            self.channel.comm.failure_ack()

    def _handle_failures(self) -> Generator[Any, Any, None]:
        """Process newly detected failures in detection order: adjust
        termination accounting, retarget producers to the deterministic
        successor consumer (replaying un-acked elements when the stream
        checkpoints), and adopt orphaned producers on the successor."""
        ctl = self._ctl
        channel = self.channel
        ranks = channel.comm.ranks
        for g in list(ctl.detected):
            if g in self._handled_globals:
                continue
            self._handled_globals.add(g)
            try:
                local = ranks.index(g)
            except ValueError:
                continue          # not a member of this channel
            prev_dead = set(self._dead_locals)
            self._dead_locals.add(local)
            pi = channel.producer_index_of(local)
            if pi is not None:
                self._on_producer_death(pi)
            ci = channel.consumer_index_of(local)
            if ci is not None:
                yield from self._on_consumer_death(ci, prev_dead)
        self._seen_version = ctl.version

    def _on_producer_death(self, pi: int) -> None:
        """A producer died: its TERM will never arrive.  Only the
        consumer currently owning its flow adjusts accounting.  The
        producer's TERM may still be *delivered but unprocessed* in our
        mailbox, so the source is also marked discounted — a late TERM
        of a discounted source is absorbed without counting, else the
        consumer would exit one termination early and silently drop
        live producers' elements."""
        channel = self.channel
        if not channel.is_consumer:
            return
        p_local = channel.producers[pi]
        if p_local in self._termed_sources:
            return                # it already terminated to us
        if self._ctl is not None and p_local in self._ctl \
                .terminated_producers(channel.comm.context, self.tag):
            # it terminated elsewhere (in flight to us, or to a consumer
            # that died): either the TERM still arrives and counts, or
            # the adoption path already skipped it — never discount
            return
        if self.router is not None:
            # custom routing: every producer terminates to every consumer
            self._expected_terms -= 1
            self._discounted_sources.add(p_local)
            return
        ci0 = pi * channel.nconsumers // channel.nproducers
        if channel.owner_consumer(ci0, self._dead_locals) \
                == channel.consumer_index:
            self._expected_terms -= 1
            self._discounted_sources.add(p_local)

    def _on_consumer_death(self, ci_dead: int, prev_dead: set
                           ) -> Generator[Any, Any, None]:
        """A consumer died: producers retarget to the deterministic
        successor (next live consumer in cyclic index order) and replay
        their un-acked elements; the successor restores the checkpoint
        and adopts the orphaned producers' termination accounting."""
        channel = self.channel
        dead = self._dead_locals
        if channel.is_producer and self.router is None:
            if channel.owner_consumer(self._dest_ci0, prev_dead) == ci_dead:
                new_owner = channel.owner_consumer(self._dest_ci0, dead)
                if new_owner is None:
                    self._stream_failed = RevokedError(
                        f"stream tag {self.tag}: every consumer of the "
                        "channel has failed", rank=ci_dead)
                    return
                self._static_dest = channel.consumers[new_owner]
                if self.checkpoint is not None and self._unacked:
                    yield from self._replay(self._static_dest)
        if channel.is_consumer and self.router is None:
            my_ci = channel.consumer_index
            if channel.owner_consumer(ci_dead, dead) == my_ci:
                # I am the successor: adopt every live, un-terminated
                # producer whose flow the dead consumer owned.  A
                # producer that already terminated — to me, or to the
                # dead consumer (visible via the controller's
                # termination registry, the stand-in for persisted
                # recovery metadata) — sends no further TERM and must
                # not be waited for.
                comm = channel.comm
                already_termed = (self._termed_sources
                                  | (self._ctl.terminated_producers(
                                      comm.context, self.tag)
                                     if self._ctl is not None else set()))
                nc, np_ = channel.nconsumers, channel.nproducers
                adopted = 0
                for pi in range(np_):
                    p_local = channel.producers[pi]
                    if p_local in dead or p_local in already_termed:
                        continue
                    ci0 = pi * nc // np_
                    if channel.owner_consumer(ci0, prev_dead) == ci_dead:
                        adopted += 1
                self._expected_terms += adopted
                profile = self.profile
                profile.recoveries += 1
                profile.adopted_producers += adopted
                if self.checkpoint is not None:
                    yield from self._restore_cost()

    def _replay(self, dest: int) -> Generator[Any, Any, None]:
        """Resend every un-acked element (original sequence numbers) to
        the successor consumer — the recovery side of the checkpoint
        contract: acked elements live in the snapshot, the rest replay."""
        comm = self.channel.comm
        world = comm.world
        profile = self.profile
        o_send_delay = world._o_send_delay
        gdst = comm.ranks[dest]
        for seq, data, nbytes in self._unacked:
            if o_send_delay is not None:
                yield o_send_delay
            req = world.post_send(comm._global, gdst, comm._rank,
                                  self.tag, comm.context, (seq, data),
                                  nbytes, force_eager=self.eager)
            self._pending.append(req)
            profile.replayed_elements += 1

    def _restore_cost(self) -> Generator[Any, Any, None]:
        """Charge the successor's checkpoint read (client overhead plus
        streaming the snapshot back from the modeled filesystem)."""
        from ..simmpi.iolib import _filesystem
        iocfg = _filesystem(self.channel.comm.world).cfg
        yield Delay(iocfg.client_overhead)
        yield Delay(self.checkpoint.state_nbytes / iocfg.per_client_bandwidth)

    def _do_checkpoint(self) -> Generator[Any, Any, None]:
        """Snapshot the operator state through the filesystem model and
        ack every producer that contributed since the last snapshot."""
        from ..simmpi.iolib import _filesystem
        comm = self.channel.comm
        world = comm.world
        engine = world.engine
        fs = _filesystem(world)
        yield Delay(fs.cfg.client_overhead)
        done = fs.server_write(self.checkpoint.state_nbytes, engine.now)
        lag = done - engine.now
        if lag > 0:
            yield Delay(lag)
        profile = self.profile
        profile.checkpoints += 1
        profile.acked_elements += self._since_ckpt
        self._since_ckpt = 0
        ack_nbytes = self.checkpoint.ack_nbytes
        for src in sorted(self._contrib):
            if src in self._dead_locals:
                continue
            try:
                yield from comm.isend(self._contrib[src], src,
                                      tag=self.ack_tag, nbytes=ack_nbytes,
                                      force_eager=True)
            except RevokedError:
                continue          # detected between our poll and the ack
        self._contrib.clear()

    def _drain_acks(self) -> Generator[Any, Any, None]:
        """Producer side: consume any checkpoint acks that have arrived
        and drop the acked prefix of the replay buffer (non-blocking)."""
        comm = self.channel.comm
        if self._ack_req is None:
            yield from self._post_ack_recv(comm)
        while self._ack_req is not None and self._ack_req.is_set:
            req = self._ack_req
            self._ack_req = None
            req._waited = True
            payload = req.payload
            if payload.__class__ is FaultSignal:
                yield from self._handle_failures()
                comm.failure_ack()
            else:
                watermark, _st = payload
                unacked = self._unacked
                while unacked and unacked[0][0] <= watermark:
                    unacked.popleft()
            yield from self._post_ack_recv(comm)

    def _post_ack_recv(self, comm) -> Generator[Any, Any, None]:
        while True:
            try:
                self._ack_req = comm.irecv(ANY_SOURCE, self.ack_tag)
                return
            except ProcessFailedError:
                yield from self._handle_failures()
                comm.failure_ack()

    def _isend_fault(self, data: Any) -> Generator[Any, Any, None]:
        """Fault-mode injection: the pristine isend plus failure polling,
        ack draining and the un-acked replay buffer."""
        channel = self.channel
        comm = channel.comm
        yield from self._poll_failures()
        if self._stream_failed is not None:
            raise self._stream_failed
        if self.checkpoint is not None:
            yield from self._drain_acks()
        overhead = self.element_overhead
        if overhead > 0:
            yield from comm.compute(overhead, label="stream-inject")
        if len(self._pending) >= self.window:
            oldest = self._pending.popleft()
            oldest._waited = True
            if oldest.is_set:
                payload = oldest.payload
            else:
                payload = yield WaitFlag(oldest)
            if payload.__class__ is FaultSignal:
                yield from self._poll_failures()
                if self._stream_failed is not None:
                    raise self._stream_failed
        dest = (self._static_dest if self._static_dest is not None
                else self._dest(data))
        payload = (self._seq, data)
        nbytes = element_nbytes(data)
        world = comm.world
        o_send_delay = world._o_send_delay
        if o_send_delay is not None:
            yield o_send_delay
        try:
            req = world.post_send(comm._global, comm.ranks[dest], comm._rank,
                                  self.tag, comm.context, payload, nbytes,
                                  force_eager=self.eager)
        except RevokedError:
            # the destination's failure was detected while we yielded;
            # retarget (no virtual time passes in between) and resend
            yield from self._poll_failures()
            if self._stream_failed is not None:
                raise self._stream_failed
            dest = (self._static_dest if self._static_dest is not None
                    else self._dest(data))
            req = world.post_send(comm._global, comm.ranks[dest], comm._rank,
                                  self.tag, comm.context, payload, nbytes,
                                  force_eager=self.eager)
        self._pending.append(req)
        if self.checkpoint is not None:
            self._unacked.append((self._seq, data, nbytes))
        profile = self.profile
        profile.elements_sent += 1
        profile.bytes_sent += nbytes
        profile.overhead_paid += overhead
        self._seq += 1

    def _operate_fault(self) -> Generator[Any, Any, StreamProfile]:
        """Fault-mode consumption: the pristine operate loop plus failure
        polling, interrupted-wildcard handling and checkpointing."""
        operator = self.operator
        channel = self.channel
        comm = channel.comm
        world = comm.world
        engine = world.engine
        profile = self.profile
        tag = self.tag
        ckpt = self.checkpoint
        ctl = self._ctl
        profile.service_start = engine.now
        while self._expected_terms > self._terms_seen:
            if ctl is not None and ctl.version != self._seen_version:
                yield from self._handle_failures()
                comm.failure_ack()
                continue          # accounting may have changed
            try:
                req = comm.irecv(ANY_SOURCE, tag)
            except ProcessFailedError:
                yield from self._handle_failures()
                comm.failure_ack()
                continue
            req._waited = True
            if req.is_set:
                payload = req.payload
            else:
                t0 = engine.now
                payload = yield WaitFlag(req)
                if world.tracer is not None and engine.now > t0:
                    world.tracer.record(comm.global_rank, "wait", "recv",
                                        t0, engine.now)
            if payload.__class__ is FaultSignal:
                yield from self._handle_failures()
                comm.failure_ack()
                continue
            (seq, data), st = payload
            if data is TERMINATE:
                self._termed_sources.add(st.source)
                if st.source in self._discounted_sources:
                    # this producer's death already reduced the
                    # accounting; its in-flight TERM must not count too
                    self._discounted_sources.discard(st.source)
                    continue
                self._terms_seen += 1
                profile.terminates_seen += 1
                continue
            profile.elements_received += 1
            profile.bytes_received += st.nbytes
            profile.arrival_times.append(engine.now)
            result = operator(StreamElement(data, st.source, seq, st.nbytes))
            if inspect.isgenerator(result) or type(result) is ComputeCharge:
                yield from result
            if ckpt is not None:
                self._contrib[st.source] = seq
                self._since_ckpt += 1
                if self._since_ckpt >= ckpt.interval:
                    yield from self._do_checkpoint()
        profile.service_end = engine.now
        return profile

    def _terminate_fault(self) -> Generator[Any, Any, None]:
        """Fault-mode termination: flush tolerating poisoned requests,
        then TERM the consumer(s) that currently own this flow."""
        channel = self.channel
        comm = channel.comm
        pending = self._pending
        while pending:
            # popleft, not iteration: failure handling mid-flush can
            # replay un-acked elements, which appends to the window
            req = pending.popleft()
            req._waited = True
            if req.is_set:
                payload = req.payload
            else:
                payload = yield WaitFlag(req)
            if payload.__class__ is FaultSignal:
                yield from self._poll_failures()
        yield from self._poll_failures()
        if self._stream_failed is not None:
            # no consumer left to terminate to
            self._terminated = True
            return
        if self.router is None:
            targets = [self._static_dest]
        else:
            targets = [c for c in channel.consumers
                       if c not in self._dead_locals]
        for dest in targets:
            try:
                yield from comm.send((self._seq, TERMINATE), dest,
                                     tag=self.tag)
            except (ProcessFailedError, RevokedError):
                yield from self._poll_failures()
                if self.router is None and self._stream_failed is None:
                    yield from comm.send((self._seq, TERMINATE),
                                         self._static_dest, tag=self.tag)
        self._terminated = True
        if self._ctl is not None:
            # record the completed termination so a future successor
            # does not wait for a TERM that died with its consumer
            self._ctl.note_stream_terminated(comm.context, self.tag,
                                             comm._rank)


def attach(channel: StreamChannel, operator: Optional[Callable] = None,
           element_overhead: float = DEFAULT_ELEMENT_OVERHEAD,
           window: int = DEFAULT_WINDOW,
           router: Optional[Callable] = None,
           eager: bool = False,
           checkpoint=None) -> Generator[Any, Any, Stream]:
    """Attach a stream to ``channel`` (``MPIStream_Attach``).

    Attaching is *local* (no synchronization): the stream id comes from
    a per-channel counter, so every rank that attaches streams to a
    given channel must do so in the same per-channel order — the same
    contract real MPI imposes on communicator/collective creation.
    Producers may start injecting before the consumer attaches; elements
    queue at the consumer until it begins operating.

    Parameters
    ----------
    operator:
        Callable applied to each :class:`StreamElement` on the consumer;
        may be a plain function or a generator function (to communicate
        or charge compute time).  Producers may pass None.
    element_overhead:
        Per-element injection cost in seconds — Eq. 4's ``o``.
    window:
        Producer-side bound on in-flight elements.
    router:
        Optional ``router(producer_index, seq, data) -> consumer_index``
        for per-element routing (e.g. key hashing).  With a custom
        router every producer's TERM fans out to all consumers.
    eager:
        Force fire-and-forget injection regardless of element size
        (models buffered eager delivery; relaxed-dataflow consumers may
        leave tail elements unconsumed without deadlocking producers).
    checkpoint:
        Optional :class:`~repro.faults.plan.Checkpoint` policy enabling
        stream-level recovery: the consumer snapshots its state every
        ``interval`` elements (costed through the filesystem model) and
        acks its producers, which buffer un-acked elements for replay;
        on a consumer crash the deterministic successor restores the
        snapshot and producers replay from the last acked element.
        Requires static blocked routing (``router=None``).
    """
    channel.check_alive()
    if window < 1:
        raise ValueError("window must be >= 1")
    if element_overhead < 0:
        raise ValueError("element_overhead must be >= 0")
    tag = channel.alloc_stream_tag()
    if False:  # pragma: no cover - keeps this function a generator
        yield None
    return Stream(channel, operator, tag, element_overhead, window, router,
                  eager=eager, checkpoint=checkpoint)
