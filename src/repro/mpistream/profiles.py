"""Stream statistics.

Tracks the quantities the paper's performance model (Eq. 4) is written
in: number of elements (D/S), bytes moved (D), injection overhead paid
(D/S * o), and the consumer-side service pattern (how bursty arrivals
were, how long the consumer sat idle between elements) — the latter is
the measurable trace of "evenly distributed data flow" vs "bursty
communication" (Section II-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class StreamProfile:
    """Per-rank statistics for one stream."""

    elements_sent: int = 0
    elements_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    overhead_paid: float = 0.0        # injection overhead, seconds
    terminates_seen: int = 0
    arrival_times: List[float] = field(default_factory=list)
    service_start: float = 0.0
    service_end: float = 0.0
    # recovery accounting (repro.faults) — repr=False keeps fault-free
    # result digests (which hash record reprs) byte-identical
    checkpoints: int = field(default=0, repr=False)
    acked_elements: int = field(default=0, repr=False)
    replayed_elements: int = field(default=0, repr=False)
    recoveries: int = field(default=0, repr=False)
    adopted_producers: int = field(default=0, repr=False)

    # ------------------------------------------------------------------
    def record_send(self, nbytes: int, overhead: float) -> None:
        self.elements_sent += 1
        self.bytes_sent += nbytes
        self.overhead_paid += overhead

    def record_recv(self, nbytes: int, when: float) -> None:
        self.elements_received += 1
        self.bytes_received += nbytes
        self.arrival_times.append(when)

    # ------------------------------------------------------------------
    @property
    def mean_interarrival(self) -> float:
        """Mean gap between consecutive element arrivals (0 if < 2)."""
        ts = self.arrival_times
        if len(ts) < 2:
            return 0.0
        return (ts[-1] - ts[0]) / (len(ts) - 1)

    def arrival_cv(self) -> float:
        """Coefficient of variation of interarrival gaps.

        ~0 for a perfectly even flow, large for bursty arrivals; this is
        the quantitative form of the paper's network-utilization claim.
        """
        ts = self.arrival_times
        if len(ts) < 3:
            return 0.0
        gaps = [b - a for a, b in zip(ts, ts[1:])]
        mean = sum(gaps) / len(gaps)
        if mean <= 0:
            return 0.0
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        return (var ** 0.5) / mean

    def summary(self) -> dict:
        out = {
            "elements_sent": self.elements_sent,
            "elements_received": self.elements_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "overhead_paid": self.overhead_paid,
            "arrival_cv": self.arrival_cv(),
        }
        # recovery keys only appear when something recovery-related
        # happened, so fault-free summaries stay byte-identical
        if self.checkpoints or self.recoveries or self.replayed_elements:
            out["checkpoints"] = self.checkpoints
            out["acked_elements"] = self.acked_elements
            out["replayed_elements"] = self.replayed_elements
            out["recoveries"] = self.recoveries
            out["adopted_producers"] = self.adopted_producers
        return out
