"""repro.compile — the plan compiler (pass pipeline + batched execution).

Lowers a :class:`~repro.api.graph.CompiledGraph` through a fixed pass
pipeline (auto-size-groups, fuse-stages, emit-schedules,
engine-segments) into an :class:`~repro.compile.executor.
ExecutableGraph` whose flat driver and engine-serviced send schedules
replace the interpreted generator layering — bit-identical virtual
time, several times the events/sec.  See DESIGN.md §15 for the pass
contract and ``ExecutableGraph.explain()`` for what a given graph's
pipeline rewrote.

Entry points::

    exe = compile_graph(graph, nprocs=1024, machine=beskow())
    print(exe.explain())
    report = Simulation(1024, "beskow", compile=True).run(graph)
    sim = run(worker, 1024, args=(cfg,), compile=True)   # low-level
"""

from .executor import (
    CompiledProducerHandle,
    ExecutableGraph,
    compile_graph,
    executable_for,
)
from .options import CompileOptions, DEFAULT_OPTIONS, resolve_options
from .passes import (
    GraphIR,
    PIPELINE,
    PassNote,
    PipelineReport,
    SendPlan,
    run_pipeline,
)
from .schedule import bind_send_cursor
from .sizing import plan_auto_sizes

__all__ = [
    "CompileOptions",
    "CompiledProducerHandle",
    "DEFAULT_OPTIONS",
    "ExecutableGraph",
    "GraphIR",
    "PIPELINE",
    "PassNote",
    "PipelineReport",
    "SendPlan",
    "bind_send_cursor",
    "compile_graph",
    "executable_for",
    "plan_auto_sizes",
    "resolve_options",
    "run_pipeline",
]
