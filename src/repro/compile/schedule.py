"""Static send schedules and the engine-side cursor servicing them.

The interpreted per-element send path resumes the producer's generator
chain three times per element (injection charge, window admission,
``o_send`` charge) and re-derives destination, tag, context and delay
constants every time.  For a fault-free, noise-free, statically-routed
stream all of those are loop invariants: the schedule emission pass
resolves them once per (rank, flow) and the engine services the
per-element event sequence through a :class:`_SendCursor` — plain
bound-method callbacks on the event heap — handed over via the
:class:`~repro.simmpi.engine.Segment` syscall (batch-drain mode).

Bit-identity contract (DESIGN.md §15): the cursor pushes exactly the
events the interpreted path would push — same times, same heap
sequence numbers, same callbacks' effects — so ``events_fired``,
message timings and therefore every digest are unchanged.  The event
sequence per element, mirroring ``Stream.isend``:

1. injection charge: one ``Delay``-equivalent event (skipped when the
   flow's ``element_overhead`` is 0);
2. window admission: pop the oldest in-flight request; if unfinished,
   wait on its flag (the cursor itself enrolls as the flag waiter);
3. ``o_send`` charge: one event (skipped when the machine's o_send is 0);
4. transport hand-off: ``World.post_send`` inlined for both protocols —
   eager commits the NIC transfer and pushes delivery + sender-free with
   consecutive sequence numbers; rendezvous ships the header at the
   precomputed link latency and matches through one *shared* bound
   method (the envelope itself carries the per-element state the
   interpreted path captures in a per-element closure).

Eligibility is checked at bind time (:func:`bind_send_cursor`); any
stream the schedule cannot represent — custom router, checkpoint or
fault mode, noise or tracing enabled — keeps the interpreted path.
"""

from __future__ import annotations

from functools import partial
from heapq import heappush as _heappush
from typing import Any, Optional

from ..mpistream.element import element_nbytes
from ..simmpi.engine import Segment
from ..simmpi.errors import RequestError
from ..simmpi.matching import Envelope
from ..simmpi.request import Request

_env_new = Envelope.__new__
_req_new = Request.__new__


class _SendCursor:
    """Precomputed per-(rank, flow) send schedule, serviced by the engine.

    One cursor (and one reusable :class:`Segment`) exists per producer
    stream; the producer is suspended while its element is in flight
    through stages 1–4, so the single-slot ``payload``/``nbytes``
    staging is safe.
    """

    __slots__ = (
        "stream", "engine", "world", "pending", "window",
        "inject_dt", "osend_dt", "gsrc", "gdst", "lsrc", "tag", "context",
        "req_label", "deliver", "transfer", "header_latency",
        "eager_threshold",
        "force_eager", "profile", "segment", "token", "resume",
        "proc", "payload", "nbytes",
    )

    def __init__(self, stream):
        channel = stream.channel
        comm = channel.comm
        world = comm.world
        self.stream = stream
        self.engine = world.engine
        self.world = world
        self.pending = stream._pending
        self.window = stream.window
        overhead = stream.element_overhead
        self.inject_dt = (overhead / world._compute_speed
                          if overhead > 0 else 0.0)
        self.osend_dt = world._o_send
        self.gsrc = comm._global
        self.gdst = comm.ranks[stream._static_dest]
        self.lsrc = comm._rank
        self.tag = stream.tag
        self.context = comm.context
        self.req_label = ("send->", self.gdst, "#", stream.tag)
        self.deliver = world.mailboxes[self.gdst].deliver
        self.transfer = world.network.transfer
        # the (src, dst) pair is static, so the rendezvous header
        # latency is a schedule constant, not a per-element lookup
        self.header_latency = world.network._link(self.gsrc, self.gdst)[0]
        self.eager_threshold = world._eager_threshold
        self.force_eager = stream.eager
        self.profile = stream.profile
        self.segment = Segment(self.start)
        self.token = (self.segment,)
        # flag-waiter protocol: the engine wakes a window-blocked cursor
        # through `.resume`, exactly as it wakes a blocked process
        self.resume = self._after_window
        self.proc = None
        self.payload = None
        self.nbytes = 0

    def __repr__(self) -> str:  # pragma: no cover - deadlock dumps
        return (f"send-schedule(flow tag {self.tag} -> rank {self.gdst}, "
                f"window {self.window})")

    # ------------------------------------------------------------------
    # element staging (called from the producer's handle, synchronously)
    # ------------------------------------------------------------------
    def load(self, data: Any) -> Segment:
        """Stage one element and return the Segment syscall to yield."""
        stream = self.stream
        if stream._terminated or stream.channel.freed:
            self._reject()
        nbytes = element_nbytes(data)
        self.payload = (stream._seq, data)
        self.nbytes = nbytes
        stream._seq += 1
        profile = self.profile
        profile.elements_sent += 1
        profile.bytes_sent += nbytes
        profile.overhead_paid += stream.element_overhead
        return self.segment

    def load_token(self, data: Any) -> tuple:
        """Like :meth:`load` but returns the reusable 1-tuple, so stage
        bodies can ``yield from handle.send(data)`` unchanged."""
        self.load(data)
        return self.token

    def _reject(self) -> None:
        # mirror Stream.isend's validation order and exceptions
        channel = self.stream.channel
        if channel.freed:
            channel.check_alive()
        raise RequestError("isend after terminate")

    # ------------------------------------------------------------------
    # the per-element event sequence (engine-side)
    # ------------------------------------------------------------------
    def start(self, engine, proc) -> bool:
        self.proc = proc
        if self.inject_dt > 0.0:
            engine._seq += 1
            _heappush(engine._heap, (engine.now + self.inject_dt,
                                     engine._seq, self._after_inject))
            return True
        # zero injection cost: fall through to window admission now
        pending = self.pending
        if len(pending) >= self.window:
            oldest = pending.popleft()
            oldest._waited = True
            if not oldest.is_set:
                oldest._waiters.append(self)
                return True
        if self.osend_dt > 0.0:
            engine._seq += 1
            _heappush(engine._heap, (engine.now + self.osend_dt,
                                     engine._seq, self._after_osend))
            return True
        self._post()
        return False  # fully synchronous: _step continues the body inline

    def _after_inject(self) -> None:
        pending = self.pending
        if len(pending) >= self.window:
            oldest = pending.popleft()
            oldest._waited = True
            if not oldest.is_set:
                oldest._waiters.append(self)
                return
        self._after_window()

    def _after_window(self) -> None:
        if self.osend_dt > 0.0:
            engine = self.engine
            engine._seq += 1
            _heappush(engine._heap, (engine.now + self.osend_dt,
                                     engine._seq, self._after_osend))
        else:
            self._post()
            self.engine._step(self.proc, None)

    def _after_osend(self) -> None:
        self._post()
        self.engine._step(self.proc, None)

    def _post(self) -> None:
        """``World.post_send``'s eager fast path, specialized: source,
        destination, tag, context, mailbox and NIC are loop invariants."""
        nbytes = self.nbytes
        payload = self.payload
        self.payload = None
        if self.force_eager or nbytes <= self.eager_threshold:
            engine = self.engine
            req = _req_new(Request)
            req.is_set = False
            req.time = 0.0
            req.payload = None
            req._waiters = []
            req.label = self.req_label
            req.kind = "send"
            req._waited = False
            timing = self.transfer(self.gsrc, self.gdst, nbytes, engine.now)
            env = _env_new(Envelope)
            env.src = self.lsrc
            env.tag = self.tag
            env.context = self.context
            env.nbytes = nbytes
            env.payload = payload
            env.eager = True
            env.delivered_time = timing.delivered
            env.on_match = None
            heap = engine._heap
            seq = engine._seq + 1
            _heappush(heap, (timing.delivered, seq, partial(self.deliver, env)))
            seq += 1
            _heappush(heap, (timing.sender_free, seq,
                             partial(engine.set_flag, req)))
            engine._seq = seq
        else:
            # rendezvous, specialized: header now, transfer on match.
            # The envelope carries the per-element state (nbytes, post
            # time in delivered_time, sender request), so _rdv_match —
            # one shared bound method — replaces the interpreted path's
            # per-element on_match closure
            engine = self.engine
            now = engine.now
            req = _req_new(Request)
            req.is_set = False
            req.time = 0.0
            req.payload = None
            req._waiters = []
            req.label = self.req_label
            req.kind = "send"
            req._waited = False
            env = _env_new(Envelope)
            env.src = self.lsrc
            env.tag = self.tag
            env.context = self.context
            env.nbytes = nbytes
            env.payload = payload
            env.eager = False
            env.delivered_time = now
            env.on_match = self._rdv_match
            env.sender_req = req
            # header arrives at now + latency >= now: call_at's clamp
            # is provably a no-op, push directly
            engine._seq += 1
            _heappush(engine._heap, (now + self.header_latency,
                                     engine._seq, partial(self.deliver, env)))
        self.pending.append(req)

    def _rdv_match(self, env: Envelope, recv_done) -> None:
        """Rendezvous match: commit the NIC transfer, free the sender,
        complete the receive — ``World.post_send``'s on_match closure as
        a shared method (``env`` holds what the closure would capture)."""
        engine = self.engine
        ready = engine.now
        posted = env.delivered_time
        if posted > ready:
            ready = posted
        timing = self.transfer(self.gsrc, self.gdst, env.nbytes, ready)
        # call_at semantics, inlined (clamp kept for exactness)
        t = timing.sender_free
        if t < engine.now:
            t = engine.now
        engine._seq += 1
        _heappush(engine._heap, (t, engine._seq,
                                 partial(engine.set_flag, env.sender_req)))
        recv_done(timing.delivered)


def bind_send_cursor(stream) -> Optional[_SendCursor]:
    """Bind a send schedule to ``stream`` if it is representable.

    Returns None — keeping the interpreted path — for consumer-side
    streams and for anything the static schedule cannot express: custom
    routers (per-element destinations), fault/checkpoint mode, noisy or
    traced runs (per-element draws break the constant-delay schedule).
    """
    channel = stream.channel
    if not channel.is_producer:
        return None
    if stream._fault_mode or stream.router is not None:
        return None
    if not channel.comm.world._compute_fast:
        return None
    return _SendCursor(stream)
