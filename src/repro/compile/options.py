"""Options controlling the plan-compiler pass pipeline.

``CompileOptions`` selects which passes run and feeds the sizing model.
The default configuration (``fuse`` + ``schedule`` + ``batch``) is
bit-identity preserving: it only changes *how* the simulator executes
the plan, never which virtual-time events occur.  ``auto_alpha`` is the
exception — it rewrites the plan's group sizes from the machine model,
which legitimately changes the simulated run — so it is opt-in and
never enabled by the plain ``compile=True`` switch threading through
:func:`repro.simmpi.launcher.run`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Union


@dataclass(frozen=True)
class CompileOptions:
    """Which passes run, plus the auto-sizing model inputs.

    Parameters
    ----------
    fuse:
        Collapse the ``execute -> run_decoupled -> stage body`` framework
        layers into one flat driver generator (stage fusion).
    schedule:
        Emit per-flow static send schedules: destination, tag, context
        and delay constants resolved once instead of per element.
    batch:
        Service emitted schedules through the engine's batch-drain
        ``Segment`` mode (precomputed event sequences, no generator
        round-trips).  Requires ``schedule``.
    auto_alpha:
        Re-size the plan's groups from the Eq. 2 balance point
        (:func:`repro.core.model.optimal_alpha`) using per-stage
        ``work=`` hints and the machine's noise model.  Changes
        virtual-time results by design.
    volume:
        Total streamed bytes D (auto_alpha refinement input).
    granularity:
        Stream element size S in bytes; with ``beta`` (or the default
        :class:`~repro.core.model.BetaModel`) it scales the helper-side
        work by the pipelining efficiency beta(S).
    beta:
        ``beta(S)`` callable overriding the default BetaModel.
    """

    fuse: bool = True
    schedule: bool = True
    batch: bool = True
    auto_alpha: bool = False
    volume: Optional[float] = None
    granularity: Optional[float] = None
    beta: Optional[Callable[[float], float]] = None

    def __post_init__(self):
        if self.batch and not self.schedule:
            raise ValueError("batch mode services emitted schedules; "
                             "enable schedule too (or disable batch)")
        for name in ("volume", "granularity"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")


#: the plain ``compile=True`` configuration (shared so launcher runs
#: with identical options hit the executable memo)
DEFAULT_OPTIONS = CompileOptions()


def resolve_options(compile: Union[None, bool, dict, CompileOptions]
                    ) -> Optional[CompileOptions]:
    """Normalize a ``compile=`` argument: None/False -> None (compiled
    mode off), True -> the defaults, a dict -> ``CompileOptions(**d)``."""
    if compile is None or compile is False:
        return None
    if compile is True:
        return DEFAULT_OPTIONS
    if isinstance(compile, CompileOptions):
        return compile
    if isinstance(compile, dict):
        try:
            return CompileOptions(**compile)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"bad compile options: {exc}") from exc
    raise ValueError(
        f"compile must be a bool, dict or CompileOptions, "
        f"got {type(compile).__name__}")
