"""The pass pipeline: analyze a compiled graph, rewrite, emit schedules.

Modelled on how op-graph compilers (ngraph-style transformer passes)
lower a declarative graph: each pass reads/rewrites a small IR and
records what it did, so the pipeline is inspectable
(``Simulation.explain`` / ``ExecutableGraph.explain``).

Pass order (fixed — see DESIGN.md §15 for the contract):

1. ``auto-size-groups`` (opt-in): rewrites the plan's group sizes from
   the Eq. 2 balance point.  The only pass allowed to change
   virtual-time results.
2. ``fuse-stages``: plans the flat driver — which framework layers
   collapse into one generator body per stage.
3. ``emit-schedules``: per flow, resolves the static (peer, tag, size
   threshold, delay) structure producers replay in steady state.
4. ``engine-segments``: marks which emitted schedules the engine may
   service in batch-drain mode (``Segment`` cursors).

Passes 2–4 are descriptive + structural: the rewritten execution must
push the same events at the same times as the interpreted path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the baked image
    _np = None

from ..core.groups import DecouplingPlan
from ..mpistream.channel import DENSE_PEERS, blocked_fan_in, blocked_peers
from .sizing import plan_auto_sizes


@dataclass
class PassNote:
    """One line of the explain report: what a pass did to one subject."""

    pass_name: str
    subject: str       # stage/flow name, or "" for pipeline-level notes
    detail: str


@dataclass
class SendPlan:
    """Static structure of one flow's producer-side send loop."""

    flow: str
    src: str
    dst: str
    nproducers: int
    nconsumers: int
    tag: int                    # predicted stream tag (one stream/channel)
    window: int
    element_overhead: float
    static: bool                # blocked routing, no checkpoint
    reason: str = ""            # why not static, when it isn't
    peers: Any = None           # producer index -> consumer index table
    inject_dt: Optional[float] = None   # machine-resolved, explain only
    osend_dt: Optional[float] = None
    eager_threshold: Optional[int] = None
    segments: bool = False      # serviced by engine batch-drain mode

    def fan_in(self) -> str:
        if self.peers is None:
            return "per-element routing"
        counts = blocked_fan_in(self.nproducers, self.nconsumers)
        lo, hi = int(min(counts)), int(max(counts))
        if lo == hi:
            return f"fan-in {lo} per consumer"
        return f"fan-in {lo}..{hi} per consumer"


@dataclass
class GraphIR:
    """What the passes read and rewrite."""

    graph: Any                  # StreamGraph
    plan: DecouplingPlan
    options: Any                # CompileOptions
    machine: Any = None         # MachineConfig or None
    fused: Dict[str, List[str]] = field(default_factory=dict)
    schedules: Dict[str, SendPlan] = field(default_factory=dict)
    sizing: dict = field(default_factory=dict)
    notes: List[PassNote] = field(default_factory=list)

    def note(self, pass_name: str, subject: str, detail: str) -> None:
        self.notes.append(PassNote(pass_name, subject, detail))


class Pass:
    """Base: a named rewrite over the IR."""

    name = "pass"

    def run(self, ir: GraphIR) -> None:
        raise NotImplementedError


class AutoSizeGroupsPass(Pass):
    name = "auto-size-groups"

    def run(self, ir: GraphIR) -> None:
        if not ir.options.auto_alpha:
            ir.note(self.name, "", "disabled (auto_alpha=False); "
                    "declared group sizes kept")
            return
        sizes, notes, model = plan_auto_sizes(
            ir.graph, ir.plan, ir.machine, ir.options)
        for line in notes:
            ir.note(self.name, "", line)
        if sizes is None:
            return
        before = {name: spec.size for name, spec in ir.plan.groups.items()}
        plan = DecouplingPlan(ir.plan.total_procs)
        for s in ir.graph.stages:
            plan.add_group(s.name, size=sizes[s.name])
            plan.map_operation(s.name, s.name)
        for f in ir.graph.flows:
            plan.add_flow(f.name, f.src, f.dst)
        plan.validate()
        ir.plan = plan
        ir.sizing = model
        for s in ir.graph.stages:
            if sizes[s.name] != before[s.name]:
                ir.note(self.name, s.name,
                        f"resized {before[s.name]} -> {sizes[s.name]} ranks")


class FuseStagesPass(Pass):
    name = "fuse-stages"

    def run(self, ir: GraphIR) -> None:
        if not ir.options.fuse:
            ir.note(self.name, "", "disabled; interpreted "
                    "execute/run_decoupled layering kept")
            return
        graph = ir.graph
        for s in graph.stages:
            frames = ["execute", "run_decoupled", "stage-body wrapper",
                      "attach"]
            if s.body is None:
                frames.append("default-consumer loop")
            ir.fused[s.name] = frames
            nflows = len(graph.flows_in(s.name)) + len(graph.flows_out(s.name))
            ir.note(self.name, s.name,
                    f"fused {' + '.join(frames)} into one driver frame "
                    f"({nflows} flow(s) attached inline)")


class EmitSchedulesPass(Pass):
    name = "emit-schedules"

    def run(self, ir: GraphIR) -> None:
        if not ir.options.schedule:
            ir.note(self.name, "", "disabled; per-element destination/"
                    "delay derivation kept")
            return
        plan = ir.plan
        machine = ir.machine
        for f in ir.graph.flows:
            np_ = plan.groups[f.src].size
            nc = plan.groups[f.dst].size
            static = f.router is None and f.checkpoint is None
            reason = ("" if static else
                      "custom router" if f.router is not None
                      else "checkpointed (fault mode)")
            sched = SendPlan(
                flow=f.name, src=f.src, dst=f.dst,
                nproducers=np_, nconsumers=nc, tag=1, window=f.window,
                element_overhead=f.element_overhead,
                static=static, reason=reason)
            if static:
                # the runtime's own routing table (shared cache): the
                # compiler cannot emit an assignment the channel layer
                # would not execute
                sched.peers = blocked_peers(np_, nc)
            if machine is not None:
                sched.inject_dt = f.element_overhead / machine.compute_speed
                sched.osend_dt = machine.network.o_send
                sched.eager_threshold = machine.network.eager_threshold
            ir.schedules[f.name] = sched
            if static:
                dense = (_np is not None
                         and isinstance(sched.peers, _np.ndarray))
                detail = (f"{np_} -> {nc} blocked routing, "
                          f"{sched.fan_in()}, tag {sched.tag}, "
                          f"window {f.window}"
                          + (", dense numpy peer table" if dense else ""))
                if sched.inject_dt is not None:
                    detail += (f", inject {sched.inject_dt:.3g}s, "
                               f"o_send {sched.osend_dt:.3g}s, "
                               f"eager <= {sched.eager_threshold}B")
                ir.note(self.name, f.name, detail)
            else:
                ir.note(self.name, f.name,
                        f"kept interpreted ({reason}); destinations "
                        "resolve per element")


class EngineSegmentsPass(Pass):
    name = "engine-segments"

    def run(self, ir: GraphIR) -> None:
        if not ir.options.batch:
            ir.note(self.name, "", "disabled; emitted schedules are "
                    "informational only")
            return
        if not ir.schedules:
            ir.note(self.name, "", "nothing to bind (no schedules emitted)")
            return
        for name, sched in ir.schedules.items():
            if not sched.static:
                ir.note(self.name, name,
                        f"interpreted ({sched.reason})")
                continue
            sched.segments = True
            ir.note(self.name, name,
                    "producers send through engine batch-drain segments "
                    "(window admission + transport hand-off without "
                    "generator round-trips; binds per run when the "
                    "machine is noise-free, trace-free and fault-free)")


#: the fixed pipeline, in contract order
PIPELINE = (AutoSizeGroupsPass, FuseStagesPass, EmitSchedulesPass,
            EngineSegmentsPass)


class PipelineReport:
    """Human-readable account of what each pass rewrote."""

    def __init__(self, ir: GraphIR, graph_name: str):
        self.ir = ir
        self.graph_name = graph_name

    def render(self) -> str:
        ir = self.ir
        machine = (f"machine {ir.machine.name!r}" if ir.machine is not None
                   else "machine unbound (runtime constants resolve at run)")
        lines = [f"repro.compile pipeline for {self.graph_name!r} on "
                 f"{ir.plan.total_procs} procs, {machine}"]
        for cls in PIPELINE:
            lines.append(f"  pass {cls.name}:")
            pass_notes = [n for n in ir.notes if n.pass_name == cls.name]
            if not pass_notes:
                lines.append("    (no effect)")
            for n in pass_notes:
                subject = f"{n.subject}: " if n.subject else ""
                lines.append(f"    {subject}{n.detail}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def run_pipeline(graph, plan, options, machine=None) -> GraphIR:
    """Run every pass over a fresh IR and return it."""
    ir = GraphIR(graph=graph, plan=plan, options=options, machine=machine)
    for cls in PIPELINE:
        cls().run(ir)
    return ir
