"""Auto helper-group sizing: choose alpha from the graph + machine model.

The paper hand-sets the decoupled fraction alpha; the hp-adaptivity
line of work sizes it from a model instead.  This pass reads per-stage
``work=`` hints (nominal seconds if the whole machine ran the stage),
splits the graph into the compute side (stages that produce flows, or
touch none) and the helper side (pure consumers), and solves Eq. 2's
balance point with :func:`repro.core.model.optimal_alpha`:

    T_W0 / (1 - alpha) + T_sigma = T'_W1(alpha) / alpha

T_sigma comes from the machine's noise model via
:func:`~repro.core.model.predicted_sigma`; when the options carry a
stream ``granularity`` the helper-side work is scaled by the
:class:`~repro.core.model.BetaModel` pipelining efficiency beta(S).

The result is a *proposed* size per stage — the pass rewrites the
plan's group sizes, which changes virtual-time results by design (see
``CompileOptions.auto_alpha``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..core.model import BetaModel, optimal_alpha, predicted_sigma


def _distribute(total: int, stages, weights: Dict[str, float]) -> Dict[str, int]:
    """Split ``total`` ranks over ``stages`` proportional to ``weights``,
    every stage >= 1, remainder to the heaviest stage."""
    names = [s.name for s in stages]
    wsum = sum(weights[n] for n in names) or float(len(names))
    sizes = {n: max(1, int(round(total * weights[n] / wsum))) for n in names}
    drift = total - sum(sizes.values())
    heaviest = max(names, key=lambda n: weights[n])
    sizes[heaviest] += drift
    if sizes[heaviest] < 1:
        return {}
    return sizes


def plan_auto_sizes(graph, plan, machine, options
                    ) -> Tuple[Optional[Dict[str, int]], List[str], dict]:
    """Propose new group sizes, or None with the reason it was skipped.

    Returns ``(sizes, notes, model)`` where ``model`` records the
    solver's inputs/outputs for the explain report.
    """
    notes: List[str] = []
    model: dict = {}
    stages = graph.stages
    nprocs = plan.total_procs

    pinned = [s.name for s in stages if s.size is not None]
    if pinned:
        notes.append(f"skipped: stage(s) {pinned} pin explicit sizes")
        return None, notes, model
    missing = [s.name for s in stages if s.work is None]
    if missing:
        notes.append(
            f"skipped: stage(s) {missing} declare no work= hint")
        return None, notes, model

    helpers = [s for s in stages
               if not graph.flows_out(s.name) and graph.flows_in(s.name)]
    producers = [s for s in stages if s not in helpers]
    if not helpers or not producers:
        notes.append("skipped: need at least one pure-consumer stage and "
                     "one producing stage to decouple")
        return None, notes, model

    t_w0 = sum(s.work for s in producers)
    t_w1 = sum(s.work for s in helpers)
    if machine is not None:
        noise = machine.noise
        t_sigma = predicted_sigma(t_w0, nprocs, noise.persistent_skew,
                                  noise.quantum_fraction)
    else:
        t_sigma = 0.0

    beta_factor = 1.0
    gran = granularity_hint(options)
    if gran is not None:
        beta = options.beta if options.beta is not None else BetaModel()
        beta_factor = beta(gran)
    t_w1_eff = t_w1 * beta_factor

    lo = len(helpers) / nprocs
    hi = 1.0 - len(producers) / nprocs
    if lo >= hi:
        notes.append(f"skipped: {nprocs} processes cannot host "
                     f"{len(stages)} stages with a free alpha")
        return None, notes, model
    alpha = optimal_alpha(t_w0, t_sigma, lambda a: t_w1_eff,
                          lo=max(lo, 1e-3), hi=min(hi, 1.0 - 1e-3))
    alpha = min(max(alpha, lo), hi)

    n_helper = min(max(len(helpers), int(round(alpha * nprocs))),
                   nprocs - len(producers))
    weights = {s.name: s.effective_fraction(nprocs) for s in stages}
    sizes = _distribute(n_helper, helpers, weights)
    sizes.update(_distribute(nprocs - n_helper, producers, weights))
    if len(sizes) != len(stages) or sum(sizes.values()) != nprocs \
            or min(sizes.values()) < 1:
        notes.append("skipped: proportional rounding could not place "
                     "every stage")
        return None, notes, model

    model.update(t_w0=t_w0, t_w1=t_w1, t_sigma=t_sigma,
                 beta_factor=beta_factor, alpha=alpha,
                 helper_ranks=n_helper)
    notes.append(
        f"alpha* = {alpha:.4f} (T_W0={t_w0:.3g}s, T'_W1={t_w1_eff:.3g}s"
        + (f" = {t_w1:.3g}s x beta {beta_factor:.3f}"
           if beta_factor != 1.0 else "")
        + f", T_sigma={t_sigma:.3g}s) -> {n_helper}/{nprocs} helper ranks")
    return sizes, notes, model


def granularity_hint(options) -> Optional[float]:
    """The element-size hint, deriving S from volume when only a total
    is known (one element per 2^10 of volume as a neutral default)."""
    if options.granularity is not None:
        return options.granularity
    if options.volume is not None:
        return max(64.0, options.volume / 1024.0)
    return None


def alpha_of_sizes(sizes: Dict[str, int], helpers: List[str]) -> float:
    total = sum(sizes.values())
    return sum(sizes[h] for h in helpers) / total if total else math.nan
