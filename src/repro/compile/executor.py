"""The execution side of the pass pipeline: the fused flat driver.

``compile_graph`` runs the pipeline over a ``CompiledGraph`` and wraps
the result in an :class:`ExecutableGraph` whose ``driver(world)`` is
the rank main: the interpreted path's ``execute -> run_decoupled ->
stage-body wrapper -> attach`` delegation collapsed into one generator
frame per rank.  Producer handles on schedule-eligible streams are
:class:`CompiledProducerHandle` — ``send`` stages the element on the
stream's schedule cursor and yields a reusable
:class:`~repro.simmpi.engine.Segment` instead of building an isend
generator per element.

Fusion is pure specialization: channel creation, stream attachment,
body invocation and the terminate/free epilogue happen in exactly the
declaration order the interpreted runtime uses, so the event sequence
(and therefore every digest) is unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Union

from ..api.errors import GraphError
from ..api.graph import CompiledGraph, StreamGraph
from ..api.handles import (
    ConsumerHandle,
    ProducerHandle,
    StageContext,
    StageRecord,
)
from ..core.groups import PlanError
from ..core.runtime import GroupContext
from ..mpistream.channel import create_channel
from ..mpistream.stream import Stream
from .options import CompileOptions, resolve_options
from .passes import GraphIR, PipelineReport, run_pipeline


class CompiledProducerHandle(ProducerHandle):
    """Producer handle bound to a stream's send-schedule cursor.

    ``send`` returns a reusable 1-tuple holding the stream's Segment
    syscall — ``yield from handle.send(data)`` in stage bodies works
    unchanged, without the per-element isend generator."""

    def __init__(self, flow_name: str, stream: Stream):
        super().__init__(flow_name, stream)
        self._load_token = stream._cursor.load_token

    def send(self, data: Any) -> tuple:
        if self.closed or self.terminated:
            raise GraphError(
                f"send on closed producer for flow {self.flow_name!r}")
        return self._load_token(data)


class ExecutableGraph:
    """A compiled graph specialized by the pass pipeline."""

    def __init__(self, compiled: CompiledGraph, ir: GraphIR):
        self.compiled = compiled
        self.graph = compiled.graph
        self.plan = ir.plan          # auto-sizing may have rewritten it
        self.ir = ir
        self.report = PipelineReport(ir, compiled.graph.name)
        self._stage_of = {s.name: s for s in compiled.graph.stages}

    @property
    def total_procs(self) -> int:
        return self.plan.total_procs

    def explain(self) -> str:
        """What each pass rewrote (one line per decision)."""
        return self.report.render()

    # ------------------------------------------------------------------
    def driver(self, world) -> Generator[Any, Any, StageRecord]:
        """The fused SPMD rank main (stage fusion applied)."""
        plan = self.plan
        graph = self.graph
        if world.size != plan.total_procs:
            raise PlanError(
                f"plan sized for {plan.total_procs} processes, "
                f"communicator has {world.size}")
        my_group = plan.group_of(world.rank)
        group_comm = world.group_from_ranks(
            list(plan.groups[my_group].ranks),
            name=f"{world.name}/{my_group}")

        channels: Dict[str, Any] = {}
        all_channels: Dict[str, Any] = {}
        for flow in plan.flows:
            ch = yield from create_channel(
                world,
                is_producer=(my_group == flow.src),
                is_consumer=(my_group == flow.dst))
            all_channels[flow.name] = ch
            if my_group in (flow.src, flow.dst):
                channels[flow.name] = ch

        gctx = GroupContext(plan=plan, group=my_group, world=world,
                            comm=group_comm, channels=channels,
                            all_channels=all_channels)
        stage = self._stage_of[my_group]

        # attach prologue, inlined (attach() is local: validations were
        # done at flow declaration, only the tag allocation remains)
        handles: Dict[str, Any] = {}
        for flow in graph.flows:
            if stage.name == flow.src:
                channel = channels[flow.name]
                channel.check_alive()
                stream = Stream(channel, None, channel.alloc_stream_tag(),
                                flow.element_overhead, flow.window,
                                flow.router, eager=flow.eager,
                                checkpoint=flow.checkpoint)
                if stream._cursor is not None:
                    handles[flow.name] = CompiledProducerHandle(
                        flow.name, stream)
                else:
                    handles[flow.name] = ProducerHandle(flow.name, stream)
            elif stage.name == flow.dst:
                channel = channels[flow.name]
                channel.check_alive()
                stream = Stream(channel, flow.make_operator(),
                                channel.alloc_stream_tag(),
                                flow.element_overhead, flow.window,
                                flow.router, eager=flow.eager,
                                checkpoint=flow.checkpoint)
                handles[flow.name] = ConsumerHandle(
                    flow.name, stream, stream.operator)

        ctx = StageContext(stage.name, gctx, handles)
        if stage.body is not None:
            result = yield from stage.body(ctx)
        else:
            # default consumer body, inlined one level deeper: operate
            # the stream directly instead of through handle.operate()
            results: Dict[str, Any] = {}
            for flow in graph.flows_in(stage.name):
                h = ctx.consumer(flow.name)
                yield from h._stream.operate()
                h.operated = True
                results[flow.name] = h.result()
            result = (next(iter(results.values()))
                      if len(results) == 1 else results)

        # epilogue: the terminate/free protocol, in declaration order
        for flow in graph.flows:
            h = handles.get(flow.name)
            if isinstance(h, ProducerHandle) and not h.terminated:
                yield from h.terminate()
        for flow in graph.flows:
            ch = all_channels[flow.name]
            if not ch.freed:
                yield from ch.free()

        return StageRecord(
            stage=stage.name, result=result,
            profiles={name: h.profile for name, h in handles.items()})


def compile_graph(target: Union[StreamGraph, CompiledGraph],
                  nprocs: Optional[int] = None,
                  machine=None,
                  options: Union[None, bool, dict, CompileOptions] = None
                  ) -> ExecutableGraph:
    """Run the pass pipeline and return the specialized executable.

    ``machine`` (a MachineConfig) feeds the sizing model and resolves
    the explain report's delay constants; the driver itself reads its
    runtime constants from the world it runs on, so an unbound
    executable is still correct on any machine.
    """
    if isinstance(target, StreamGraph):
        if nprocs is None:
            raise GraphError("compiling a StreamGraph needs nprocs")
        compiled = target.compile(nprocs)
    elif isinstance(target, CompiledGraph):
        compiled = target
        if nprocs is not None and nprocs != compiled.total_procs:
            raise GraphError(
                f"graph compiled for {compiled.total_procs} processes, "
                f"asked to specialize for {nprocs}")
    else:
        raise GraphError(
            f"cannot compile {type(target).__name__}; pass a StreamGraph "
            "or CompiledGraph")
    opts = resolve_options(True if options is None else options)
    ir = run_pipeline(compiled.graph, compiled.plan, opts, machine=machine)
    return ExecutableGraph(compiled, ir)


#: per-CompiledGraph executable memo: the SPMD launcher calls execute()
#: once per rank, and the specialization is a pure function of
#: (graph identity, options).  Entries carry the graph itself so a
#: recycled id() can never alias (same scheme as _channel_groups).
_exe_memo: Dict[tuple, tuple] = {}


def executable_for(compiled: CompiledGraph,
                   options: CompileOptions) -> ExecutableGraph:
    key = (id(compiled), options)
    hit = _exe_memo.get(key)
    if hit is not None and hit[0] is compiled:
        return hit[1]
    if len(_exe_memo) >= 64:
        _exe_memo.clear()
    exe = compile_graph(compiled, options=options)
    _exe_memo[key] = (compiled, exe)
    return exe
