"""3-D block domain decomposition helpers.

Shared by the CG solver and iPIC3D: a global Cartesian grid is split
into per-process blocks; each block exchanges one-cell-deep halos with
its six face neighbours.  The paper's CG weak scaling keeps 120^3 grid
points per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

#: paper's CG weak-scaling block: 120^3 points per process
CG_POINTS_PER_PROCESS = 120


@dataclass(frozen=True)
class BlockSpec:
    """One process's sub-block of the global grid."""

    nx: int
    ny: int
    nz: int
    value_bytes: int = 8  # double precision

    def __post_init__(self):
        if min(self.nx, self.ny, self.nz) < 1:
            raise ValueError("block dimensions must be >= 1")
        if self.value_bytes <= 0:
            raise ValueError("value_bytes must be positive")

    @property
    def points(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def interior_points(self) -> int:
        """Points computable before any halo arrives (>= 1 cell from every
        face); zero if the block is too thin to have an interior."""
        ix = max(0, self.nx - 2)
        iy = max(0, self.ny - 2)
        iz = max(0, self.nz - 2)
        return ix * iy * iz

    @property
    def boundary_points(self) -> int:
        return self.points - self.interior_points

    def face_points(self, axis: int) -> int:
        """Points on one face perpendicular to ``axis`` (0=x, 1=y, 2=z)."""
        if axis == 0:
            return self.ny * self.nz
        if axis == 1:
            return self.nx * self.nz
        if axis == 2:
            return self.nx * self.ny
        raise ValueError(f"axis must be 0..2, got {axis}")

    def face_bytes(self, axis: int) -> int:
        return self.face_points(axis) * self.value_bytes

    @property
    def halo_bytes_total(self) -> int:
        """Bytes sent per halo exchange (both faces of all three axes)."""
        return 2 * sum(self.face_bytes(ax) for ax in range(3)) \
            if min(self.nx, self.ny, self.nz) > 0 else 0

    @property
    def nbytes(self) -> int:
        return self.points * self.value_bytes


def cubic_block(points_per_axis: int = CG_POINTS_PER_PROCESS,
                value_bytes: int = 8) -> BlockSpec:
    """The paper's per-process CG block (120^3 doubles)."""
    return BlockSpec(points_per_axis, points_per_axis, points_per_axis,
                     value_bytes)


def global_grid(dims: Sequence[int], block: BlockSpec) -> Tuple[int, int, int]:
    """Global grid extent for ``dims`` processes holding ``block`` each."""
    if len(dims) != 3:
        raise ValueError("dims must have three entries")
    return (dims[0] * block.nx, dims[1] * block.ny, dims[2] * block.nz)


def laplacian_flops(block: BlockSpec) -> int:
    """Floating-point operations of one 7-point stencil sweep (8 per
    point: 6 adds + 1 multiply + 1 subtract)."""
    return 8 * block.points


def dot_flops(block: BlockSpec) -> int:
    """FLOPs of one local dot product (multiply+add per point)."""
    return 2 * block.points
