"""Synthetic workload generators: Zipf corpora, GEM-like particle
ensembles, and grid decompositions (DESIGN.md substitutions)."""

from .corpus import (
    CorpusSpec,
    FileSpec,
    assign_files_round_robin,
    corpus_files,
    file_histogram,
    histogram_nbytes,
    merge_histograms,
    sample_words,
)
from .grids import (
    CG_POINTS_PER_PROCESS,
    BlockSpec,
    cubic_block,
    dot_flops,
    global_grid,
    laplacian_flops,
)
from .particles import (
    GEM_TOTAL_PARTICLES,
    PARTICLE_BYTES,
    GEMSetup,
    ParticleBlock,
    exiting_fraction,
    gem_counts,
    gem_density_profile,
    imbalance_ratio,
)

__all__ = [
    "BlockSpec", "CG_POINTS_PER_PROCESS", "CorpusSpec", "FileSpec",
    "GEMSetup", "GEM_TOTAL_PARTICLES", "PARTICLE_BYTES", "ParticleBlock",
    "assign_files_round_robin", "corpus_files", "cubic_block", "dot_flops",
    "exiting_fraction", "file_histogram", "gem_counts",
    "gem_density_profile", "global_grid", "histogram_nbytes",
    "imbalance_ratio", "laplacian_flops", "merge_histograms",
    "sample_words",
]
