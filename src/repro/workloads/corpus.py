"""Synthetic text corpus with natural-language statistics.

Substitute for the paper's Wikipedia web-log dataset (PUMA): what the
MapReduce case study depends on is (a) Zipf-distributed word
frequencies — "natural language has irregular distribution of words so
that the application will produce variable amount of results on
processes" — and (b) irregular file sizes (256 MB - 1 GB per log file).
Both are generated here, deterministically from a seed.

Two fidelity modes share one spec:

* :func:`sample_words` — an actual word sequence (numeric mode; small);
* :func:`file_histogram` — the word histogram a map task would emit for
  the whole file (scale mode; multinomial draw, no text materialized).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

#: paper's corpus parameters
MIN_FILE_BYTES = 256 * 1024 * 1024
MAX_FILE_BYTES = 1024 * 1024 * 1024
MEAN_WORD_BYTES = 6.0   # avg English word + separator


@dataclass(frozen=True)
class CorpusSpec:
    """Statistical description of a synthetic corpus."""

    vocabulary: int = 50_000
    zipf_s: float = 1.07          # classic natural-language exponent
    seed: int = 2017
    min_file_bytes: int = MIN_FILE_BYTES
    max_file_bytes: int = MAX_FILE_BYTES
    mean_word_bytes: float = MEAN_WORD_BYTES

    def __post_init__(self):
        if self.vocabulary < 1:
            raise ValueError("vocabulary must be >= 1")
        if self.zipf_s <= 0:
            raise ValueError("zipf_s must be positive")
        if not (0 < self.min_file_bytes <= self.max_file_bytes):
            raise ValueError("file size range invalid")
        if self.mean_word_bytes <= 0:
            raise ValueError("mean_word_bytes must be positive")

    # ------------------------------------------------------------------
    def frequencies(self) -> np.ndarray:
        """Normalized Zipf pmf over the vocabulary (rank 1 most common)."""
        ranks = np.arange(1, self.vocabulary + 1, dtype=np.float64)
        w = ranks ** (-self.zipf_s)
        return w / w.sum()

    def word(self, word_id: int) -> str:
        """Stable string form of a vocabulary id."""
        if not (0 <= word_id < self.vocabulary):
            raise ValueError(f"word id {word_id} out of vocabulary")
        return f"w{word_id:06d}"


@dataclass(frozen=True)
class FileSpec:
    """One log file: identity + size (content derives from the seed)."""

    index: int
    nbytes: int

    @property
    def nwords(self) -> int:
        return max(1, int(self.nbytes / MEAN_WORD_BYTES))


def corpus_files(spec: CorpusSpec, nfiles: int) -> List[FileSpec]:
    """Deterministic list of files with irregular sizes (uniform over
    [min_file_bytes, max_file_bytes], as the paper reports)."""
    if nfiles < 0:
        raise ValueError("nfiles must be non-negative")
    rng = np.random.default_rng(np.random.SeedSequence(spec.seed))
    sizes = rng.integers(spec.min_file_bytes, spec.max_file_bytes + 1,
                         size=nfiles)
    return [FileSpec(i, int(s)) for i, s in enumerate(sizes)]


def _file_rng(spec: CorpusSpec, file_index: int) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence(entropy=spec.seed, spawn_key=(1, file_index))
    )


def sample_words(spec: CorpusSpec, file: FileSpec, nwords: int
                 ) -> List[str]:
    """An actual word sequence from the file (numeric mode).

    ``nwords`` caps materialization; the sample is the *prefix* of the
    file's deterministic stream, so repeated calls agree.
    """
    if nwords < 0:
        raise ValueError("nwords must be non-negative")
    rng = _file_rng(spec, file.index)
    ids = rng.choice(spec.vocabulary, size=min(nwords, file.nwords),
                     p=spec.frequencies())
    return [spec.word(int(i)) for i in ids]


def file_histogram(spec: CorpusSpec, file: FileSpec,
                   scale_words: int = 0) -> Dict[str, int]:
    """The full word histogram of the file (scale mode).

    A multinomial draw of the file's word count over the Zipf pmf —
    statistically identical to counting the words without generating
    them.  ``scale_words`` overrides the word count (for scaled-down
    benchmarks)."""
    n = scale_words if scale_words > 0 else file.nwords
    rng = _file_rng(spec, file.index)
    counts = rng.multinomial(n, spec.frequencies())
    nz = np.nonzero(counts)[0]
    return {spec.word(int(i)): int(counts[i]) for i in nz}


def merge_histograms(parts: Sequence[Dict[str, int]]) -> Dict[str, int]:
    """Sum word histograms (the reduce semantics, usable as an MPI op)."""
    out: Dict[str, int] = {}
    for part in parts:
        for k, v in part.items():
            out[k] = out.get(k, 0) + v
    return out


def histogram_nbytes(hist: Dict[str, int]) -> int:
    """Wire size of a histogram: key strings + 8-byte counts."""
    return sum(len(k) + 8 for k in hist)


def assign_files_round_robin(files: Sequence[FileSpec], nranks: int
                             ) -> List[List[FileSpec]]:
    """Deal files to ranks; sizes differ so workloads are imbalanced —
    the irregularity the decoupled MapReduce exploits."""
    if nranks <= 0:
        raise ValueError("nranks must be positive")
    out: List[List[FileSpec]] = [[] for _ in range(nranks)]
    for i, f in enumerate(files):
        out[i % nranks].append(f)
    return out
