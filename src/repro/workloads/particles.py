"""Particle ensembles with GEM-challenge-like statistics.

iPIC3D's decoupled operations are driven by two statistical facts the
paper leans on (Section IV-D): particle counts per process are *skewed*
(magnetic-reconnection setups concentrate plasma near the current
sheet) and *dynamic* (particles migrate between subdomains every step,
unpredictably).  This module produces both, deterministically:

* :func:`gem_counts` — per-rank particle counts from the GEM
  current-sheet density profile ``n(y) ~ sech^2(y/lambda) + n_bg``;
* :func:`exiting_fraction` — per-step fraction of a rank's particles
  that leave its subdomain;
* :class:`ParticleBlock` — a real NumPy particle container used by the
  numeric-mode Boris mover in :mod:`repro.apps.ipic3d.particles`.

Each simulated particle record is 10 doubles on the wire (position,
velocity, charge/weight, id) = 80 bytes, matching iPIC3D's particle
payload to first order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

#: bytes per particle on the wire (x,y,z,u,v,w,q,w8,id,pad as doubles)
PARTICLE_BYTES = 80

#: paper's Fig. 7 experiment: ~2e9 particles on 8192 processes
GEM_TOTAL_PARTICLES = 2_000_000_000


@dataclass(frozen=True)
class GEMSetup:
    """Parameters of the GEM-like particle distribution."""

    total_particles: int = GEM_TOTAL_PARTICLES
    sheet_thickness: float = 0.1   # lambda / L_y: thinner = more skew
    background: float = 0.2        # uniform background density floor
    seed: int = 1931               # GEM = Geospace Environmental Modeling

    def __post_init__(self):
        if self.total_particles < 1:
            raise ValueError("total_particles must be >= 1")
        if self.sheet_thickness <= 0:
            raise ValueError("sheet_thickness must be positive")
        if self.background < 0:
            raise ValueError("background must be non-negative")


def gem_density_profile(ncells: int, setup: GEMSetup) -> np.ndarray:
    """Normalized density over ``ncells`` slabs across the sheet normal:
    ``sech^2((y - 0.5) / lambda) + background``."""
    if ncells < 1:
        raise ValueError("ncells must be >= 1")
    y = (np.arange(ncells) + 0.5) / ncells
    prof = 1.0 / np.cosh((y - 0.5) / setup.sheet_thickness) ** 2
    prof = prof + setup.background
    return prof / prof.sum()


def gem_counts(nranks: int, setup: GEMSetup) -> np.ndarray:
    """Per-rank particle counts: ranks are slabs across the sheet normal,
    counts follow the sech^2 profile with multinomial sampling noise.

    The result is *skewed*: mid-domain ranks hold several times the
    particles of edge ranks — the imbalance Fig. 7 is about.
    """
    prof = gem_density_profile(nranks, setup)
    rng = np.random.default_rng(np.random.SeedSequence(setup.seed))
    counts = rng.multinomial(setup.total_particles, prof)
    return counts


def imbalance_ratio(counts: np.ndarray) -> float:
    """max/mean of per-rank counts (1.0 = perfectly balanced)."""
    counts = np.asarray(counts, dtype=np.float64)
    mean = counts.mean()
    return float(counts.max() / mean) if mean > 0 else 1.0


def exiting_fraction(rank: int, step: int, setup: GEMSetup,
                     mean_fraction: float = 0.02) -> float:
    """Fraction of a rank's particles leaving its subdomain this step.

    Deterministic in (rank, step, seed); lognormal around
    ``mean_fraction`` so that exit traffic is irregular across ranks and
    time — the "impossible to know a-priori" dynamics of Section IV-D.
    """
    if not (0.0 <= mean_fraction <= 1.0):
        raise ValueError("mean_fraction must be in [0, 1]")
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=setup.seed, spawn_key=(rank, step))
    )
    frac = mean_fraction * float(rng.lognormal(0.0, 0.75))
    return min(1.0, frac)


class ParticleBlock:
    """A real particle container (numeric mode): structure-of-arrays."""

    __slots__ = ("x", "v", "q", "ids")

    def __init__(self, x: np.ndarray, v: np.ndarray, q: np.ndarray,
                 ids: np.ndarray):
        n = len(ids)
        if x.shape != (n, 3) or v.shape != (n, 3) or q.shape != (n,):
            raise ValueError("inconsistent particle array shapes")
        self.x = x
        self.v = v
        self.q = q
        self.ids = ids

    # ------------------------------------------------------------------
    @classmethod
    def sample(cls, n: int, rng: np.random.Generator,
               box: float = 1.0, thermal: float = 0.05) -> "ParticleBlock":
        """Maxwellian particles uniform in a periodic box."""
        x = rng.uniform(0.0, box, size=(n, 3))
        v = rng.normal(0.0, thermal, size=(n, 3))
        q = np.where(rng.random(n) < 0.5, -1.0, 1.0)
        ids = np.arange(n, dtype=np.int64)
        return cls(x, v, q, ids)

    def __len__(self) -> int:
        return len(self.ids)

    @property
    def nbytes_wire(self) -> int:
        return len(self) * PARTICLE_BYTES

    def select(self, mask: np.ndarray) -> "ParticleBlock":
        """Subset by boolean mask (used to split exiting particles)."""
        return ParticleBlock(self.x[mask], self.v[mask], self.q[mask],
                             self.ids[mask])

    @staticmethod
    def concat(blocks: List["ParticleBlock"]) -> "ParticleBlock":
        blocks = [b for b in blocks if len(b) > 0]
        if not blocks:
            return ParticleBlock(np.zeros((0, 3)), np.zeros((0, 3)),
                                 np.zeros(0), np.zeros(0, dtype=np.int64))
        return ParticleBlock(
            np.concatenate([b.x for b in blocks]),
            np.concatenate([b.v for b in blocks]),
            np.concatenate([b.q for b in blocks]),
            np.concatenate([b.ids for b in blocks]),
        )
