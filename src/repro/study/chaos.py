"""``study.chaos`` — a registry app that misbehaves on demand.

The resilient runner needs something to be resilient *to*: this app is
a tiny deterministic workload whose config can flip it into every
failure mode the runner handles — a clean deterministic exception
(``fail``), a hard worker death (``exit_code``, the OOM-kill /
``os._exit`` shape that breaks a process pool), a wall-clock hang
(``hang_s``, for timeout policies) and a fail-once-then-succeed flake
(``flake_path``, for retry policies).  Healthy cells compute a fixed
virtual-time profile, so fault-free values are bit-identical across
serial, parallel and resumed runs — exactly the property the
resilience tests and the ``study-resilience`` CI job assert.

It is a *built-in* registry app (``"study.chaos"``) so the CLI and CI
can run poisoned catalog studies without any runtime registration.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass

__all__ = ["ChaosConfig", "ChaosError", "chaos_worker"]


class ChaosError(RuntimeError):
    """The deliberate failure raised by a flagged chaos cell."""


@dataclass
class ChaosConfig:
    """Knobs for one chaos cell (all misbehavior is off by default)."""

    nprocs: int
    #: raise :class:`ChaosError` deterministically on rank 0
    fail: bool = False
    #: if >= 0, rank 0 calls ``os._exit(exit_code)`` — kills the worker
    #: process without cleanup, the shape of an OOM kill
    exit_code: int = -1
    #: wall-clock seconds rank 0 sleeps before computing (timeout bait;
    #: virtual time is unaffected, so a generous-timeout run stays
    #: bit-identical to a no-hang run)
    hang_s: float = 0.0
    #: if set, fail with :class:`ChaosError` once per path: the first
    #: attempt creates the file and raises, later attempts succeed
    flake_path: str = ""
    #: virtual compute seconds that shape the healthy result
    work_s: float = 0.001


def chaos_worker(comm, cfg: ChaosConfig):
    """Rank program: misbehave per config, else a fixed tiny workload."""
    if comm.rank == 0:
        if cfg.hang_s > 0.0:
            time.sleep(cfg.hang_s)
        if cfg.exit_code >= 0:
            if multiprocessing.parent_process() is not None:
                os._exit(cfg.exit_code)
            # in-process run: dying here would kill the caller's
            # interpreter (the CLI, the test runner) — degrade to a
            # catchable failure instead
            raise ChaosError(
                "chaos: exit_code is set but this is not a pool worker; "
                "refusing to kill the host process")
        if cfg.flake_path:
            if not os.path.exists(cfg.flake_path):
                with open(cfg.flake_path, "w") as fh:
                    fh.write("flaked\n")
                raise ChaosError(
                    f"chaos: first attempt flake at {cfg.flake_path}")
        if cfg.fail:
            raise ChaosError(
                f"chaos: flagged cell failed at nprocs={cfg.nprocs}")
    # a deterministic, slightly skewed compute profile: rank r works
    # proportionally to (r+1)/P, so max_elapsed is stable and nonzero
    yield from comm.compute(cfg.work_s * (comm.rank + 1) / max(1, cfg.nprocs))
    return {"elapsed": comm.time}
