"""The paper's sweep figures, declared as studies.

Each ``*_study`` builder returns the :class:`~repro.study.study.Study`
whose cells are the figure's lines; :func:`repro.bench.figures` and the
``python -m repro.bench study`` CLI both run these same declarations,
so a figure is one JSON-serializable scenario — cacheable, parallel,
and regenerable point-by-point.

Points default to :func:`repro.bench.harness.scale_points` (the
``REPRO_POINTS``-aware paper axis).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..simmpi.config import TopologyConfig
from .policy import RunPolicy
from .study import Study, StudyError

__all__ = [
    "CATALOG",
    "CG_PAPER_ITERATIONS",
    "IPIC_PAPER_STEPS",
    "cosim_study",
    "fig5_study",
    "fig6_study",
    "fig7_study",
    "fig8_study",
    "get_study",
    "placement_study",
    "recovery_study",
    "resilience_study",
]

#: paper parameters
CG_PAPER_ITERATIONS = 300
IPIC_PAPER_STEPS = 40

#: the paper's platform, as a machine spec
_BESKOW = {"preset": "beskow"}


def _points(points: Optional[Sequence[int]]) -> List[int]:
    if points is not None:
        return list(points)
    from ..bench.harness import scale_points
    return scale_points()


# ----------------------------------------------------------------------
# Fig. 5 — MapReduce weak scaling with alpha sweep
# ----------------------------------------------------------------------

def fig5_study(points: Optional[Sequence[int]] = None,
               alphas: Tuple[float, ...] = (0.125, 0.0625, 0.03125)
               ) -> Study:
    """Reference vs decoupled (three alphas), 2.9 TB-equivalent corpus."""
    return (
        Study("fig5", title="Fig. 5 - MapReduce weak scaling (s)")
        .axis("nprocs", _points(points))
        .axis("alpha", alphas)
        .cell("Reference", app="mapreduce.reference", machine=_BESKOW)
        .cell("Decoupling (a={alpha:.4g})", app="mapreduce.decoupled",
              bind={"alpha": "alpha"}, machine=_BESKOW)
    )


# ----------------------------------------------------------------------
# Fig. 6 — CG solver weak scaling
# ----------------------------------------------------------------------

def fig6_study(points: Optional[Sequence[int]] = None,
               sim_iterations: int = 20) -> Study:
    """Blocking / non-blocking / decoupled CG, 120^3 points per rank,
    reported at the paper's 300 iterations by linear extrapolation."""
    extract = {"name": "max_elapsed",
               "scale": CG_PAPER_ITERATIONS / sim_iterations}
    params = {"iterations": sim_iterations}
    study = Study("fig6", title="Fig. 6 - CG solver weak scaling (s)")
    study.axis("nprocs", _points(points))
    for label, app in (("Reference (Blocking)", "cg.blocking"),
                       ("Reference (Non-blocking)", "cg.nonblocking"),
                       ("Decoupling", "cg.decoupled")):
        study.cell(label, app=app, params=params, extract=extract,
                   machine=_BESKOW)
    return study


# ----------------------------------------------------------------------
# Fig. 7 — iPIC3D particle communication weak scaling
# ----------------------------------------------------------------------

def fig7_study(points: Optional[Sequence[int]] = None,
               sim_steps: int = 8) -> Study:
    """Reference forwarding vs decoupled exchange, GEM setup, reported
    at the paper's step count."""
    factor = IPIC_PAPER_STEPS / sim_steps
    params = {"steps": sim_steps}
    return (
        Study("fig7", title="Fig. 7 - particle communication (s)")
        .axis("nprocs", _points(points))
        .cell("Reference", app="ipic3d.pcomm_reference", params=params,
              extract={"name": "max_elapsed", "scale": factor},
              machine=_BESKOW)
        .cell("Decoupling", app="ipic3d.pcomm_decoupled", params=params,
              extract={"name": "max_field", "field": "elapsed",
                       "role": "mover", "scale": factor},
              machine=_BESKOW)
    )


# ----------------------------------------------------------------------
# Fig. 8 — iPIC3D particle I/O weak scaling
# ----------------------------------------------------------------------

def fig8_study(points: Optional[Sequence[int]] = None,
               sim_steps: int = 8) -> Study:
    """Collective / shared-pointer references vs decoupled buffered I/O.

    The references report the blocking dump time; the decoupled run the
    *visible* cost (the :data:`pio_visible` extractor — streaming
    overhead plus the final drain tail)."""
    params = {"steps": sim_steps}
    io_time = {"name": "max_field", "field": "io_time"}
    return (
        Study("fig8", title="Fig. 8 - particle I/O (s)")
        .axis("nprocs", _points(points))
        .cell("RefColl", app="ipic3d.pio_reference", params=params,
              args=(True,), extract=io_time, machine=_BESKOW)
        .cell("RefShared", app="ipic3d.pio_reference", params=params,
              args=(False,), extract=io_time, machine=_BESKOW)
        .cell("Decoupling", app="ipic3d.pio_decoupled", params=params,
              extract="pio_visible", machine=_BESKOW)
    )


# ----------------------------------------------------------------------
# Placement scenario family — colocated vs partitioned under a fat-tree
# ----------------------------------------------------------------------

def placement_study(points: Optional[Sequence[int]] = None,
                    alpha: float = 0.0625,
                    topology: Optional[TopologyConfig] = None) -> Study:
    """The Fig. 5 reduce funnel, decoupled identically, run once with
    the reduce group colocated on its producers' nodes and once exiled
    to a disjoint node set, on a contended radix-2 fat-tree — the
    decoupling strategy as a *placement* study."""
    topo = topology or TopologyConfig(kind="fat_tree", radix=2)
    return (
        Study("placement",
              title="Placement - colocated vs partitioned on a fat-tree (s)")
        .axis("nprocs", _points(points))
        .axis("mode", ("colocated", "partitioned"))
        .cell("Decoupling ({mode})", app="mapreduce.decoupled",
              params={"alpha": alpha},
              bind={"mode": "machine.placement.policy"},
              machine={"preset": "beskow",
                       "topology": topo.to_json(),
                       "placement": {"from_plan": True}},
              meta={"topology": topo.kind, "alpha": alpha})
    )


# ----------------------------------------------------------------------
# Recovery scenario family — crash a helper rank, measure the cost
# ----------------------------------------------------------------------

def recovery_study(points: Optional[Sequence[int]] = None,
                   crash_time: float = 0.02,
                   checkpoint_interval: int = 32) -> Study:
    """The CG halo funnel with stream-level recovery: one line runs
    fault-free, the other crashes the helper group's tail rank
    (``rank=-1`` resolves per process count) mid-stream and recovers via
    checkpoint restore + un-acked replay on the deterministic successor.

    The two cells differ only in the machine spec's ``faults`` sub-key,
    so their cache entries can never collide — the fault scenario is
    part of every job's content address."""
    faults = {"events": [
        {"kind": "crash", "time": crash_time, "rank": -1}]}
    params = {"checkpoint_interval": checkpoint_interval}
    return (
        Study("recovery",
              title="Recovery - helper crash + replay vs fault-free (s)")
        .axis("nprocs", _points(points))
        .cell("Fault-free", app="cg.halo_recovery", params=params,
              machine=_BESKOW)
        .cell("Crash + recover", app="cg.halo_recovery", params=params,
              machine={"preset": "beskow", "faults": faults},
              meta={"crash_time": crash_time})
    )


# ----------------------------------------------------------------------
# Co-simulation scenario family — hub sensitivity sweep
# ----------------------------------------------------------------------

def cosim_study(points: Optional[Sequence[int]] = None,
                elements_per_producer: int = 24,
                produce_seconds: float = 2e-6) -> Study:
    """The coupled micro/macro pair under a hub-knob sweep: hub size x
    buffer depth x transform cost x scale ratio, each landing in the
    machine spec's ``cosim`` sub-key — so every combination has its own
    cache address, like fault scenarios do.

    The default points are deliberately small (the sweep is 16 cells
    per point); pass ``points`` explicitly for scaling curves."""
    params = {"elements_per_producer": elements_per_producer,
              "produce_seconds": produce_seconds}
    return (
        Study("cosim", title="Co-simulation - hub sensitivity (us)")
        .axis("nprocs", list(points) if points is not None else [12, 20])
        .axis("hub", (1, 2))
        .axis("depth", (2, 8))
        .axis("transform", (0.0, 4e-6))
        .axis("ratio", (1, 4))
        .cell("Hub (H={hub}, depth={depth}, t={transform:g}, 1:{ratio})",
              app="cosim.hub", params=params,
              extract={"name": "max_elapsed", "scale": 1e6},
              bind={"hub": "machine.cosim.size",
                    "depth": "machine.cosim.buffer_depth",
                    "transform": "machine.cosim.transform_seconds",
                    "ratio": "machine.cosim.scale_ratio"},
              machine={"preset": "beskow"})
    )


# ----------------------------------------------------------------------
# Resilience smoke scenario — a healthy sweep plus one poisoned cell
# ----------------------------------------------------------------------

def resilience_study(points: Optional[Sequence[int]] = None,
                     poison_nprocs: int = 4) -> Study:
    """A healthy ``study.chaos`` sweep plus one always-failing cell.

    This is the runner-resilience smoke scenario (the
    ``study-resilience`` CI job runs it): under the study's default
    ``keep_going`` policy the run completes with *exactly one* failed
    cell — the poisoned one, swept over its own single-point axis — and
    a ``--resume`` rerun serves every healthy cell from the journal/
    cache while re-executing only the poison.  Healthy values are
    deterministic, so serial, parallel and resumed runs agree
    bit-for-bit.
    """
    return (
        Study("resilience",
              title="Resilience - healthy sweep + one poisoned cell (s)")
        .axis("nprocs", _points(points))
        .axis("poison_nprocs", [poison_nprocs])
        .cell("Healthy", app="study.chaos")
        .cell("Poison", app="study.chaos", params={"fail": True},
              x_axis="poison_nprocs",
              meta={"note": "always fails; the runner must survive it"})
        .with_policy(RunPolicy(on_error="keep_going"))
    )


#: name -> study builder(points=None, **kwargs)
CATALOG: Dict[str, Callable[..., Study]] = {
    "fig5": fig5_study,
    "fig6": fig6_study,
    "fig7": fig7_study,
    "fig8": fig8_study,
    "placement": placement_study,
    "recovery": recovery_study,
    "resilience": resilience_study,
    "cosim": cosim_study,
}


def get_study(name: str, points: Optional[Sequence[int]] = None,
              **kwargs) -> Study:
    """Build a catalog study by name (the CLI's lookup)."""
    builder = CATALOG.get(name)
    if builder is None:
        raise StudyError(
            f"unknown study {name!r}; catalog: {sorted(CATALOG)}")
    return builder(points=points, **kwargs)
