"""``repro.study`` — declarative, parallel, cache-aware experiments.

The paper's claims are all *sweeps*; this subsystem makes a sweep a
piece of data instead of a Python call tree:

* :class:`Study` — a named grid of axes plus per-cell app / machine /
  extractor declarations; compiles to a deterministic list of
  JSON-serializable **job specs** and round-trips through
  ``to_json()`` / ``from_json()``, so scenarios become files.
* :func:`run_study` — executes the jobs across a process pool with a
  content-addressed on-disk result cache (job spec + code version;
  virtual-time determinism makes caching exact), under a
  :class:`RunPolicy` (per-job wall-clock timeouts, deterministic retry
  backoff, ``keep_going`` partial results, quarantine of cells that
  kill their worker) with a :class:`RunJournal` under the cache dir
  making crashed or partially-failed sweeps resumable
  (``resume=True``).
* :class:`ResultSet` — query (``series``, ``ratio``), render
  (``table``) and export (``to_json``, ``to_csv``) the results.
* :mod:`~repro.study.catalog` — the paper's figures (fig5-fig8, the
  placement family) as Study declarations; :mod:`repro.bench` runs
  these same declarations.
* :mod:`~repro.study.registry` — the name → worker/config/extractor
  tables that make job specs executable anywhere, extensible via
  :func:`register_app` / :func:`register_extractor`.
"""

from .cache import code_version, job_key
from .catalog import (
    CATALOG,
    fig5_study,
    fig6_study,
    fig7_study,
    fig8_study,
    get_study,
    placement_study,
    resilience_study,
)
from .journal import RunJournal
from .policy import RunPolicy
from .registry import (
    APPS,
    AppSpec,
    EXTRACTORS,
    apply_extract,
    build_machine,
    register_app,
    register_extractor,
)
from .results import JobResult, ResultSet
from .runner import execute_job, run_study, simulations_executed, sweep_callable
from .study import Study, StudyError

__all__ = [
    "APPS",
    "AppSpec",
    "CATALOG",
    "EXTRACTORS",
    "JobResult",
    "ResultSet",
    "RunJournal",
    "RunPolicy",
    "Study",
    "StudyError",
    "apply_extract",
    "build_machine",
    "code_version",
    "execute_job",
    "fig5_study",
    "fig6_study",
    "fig7_study",
    "fig8_study",
    "get_study",
    "job_key",
    "placement_study",
    "register_app",
    "register_extractor",
    "resilience_study",
    "run_study",
    "simulations_executed",
    "sweep_callable",
]
