"""Journaled study runs: an append-only JSONL record of every cell.

A :class:`RunJournal` lives under the cache directory (``<cache>/
journal/<run_key>.jsonl``) and records what happened to each cell of
one study run: ``submitted``, ``running`` (written by the *worker*
process, so a pool break can be attributed to the cells that were
actually executing), ``completed`` (with the outcome inline),
``failed`` / ``timeout`` and ``quarantined``.  The file is created
atomically (temp + ``os.replace``, like :func:`repro.study.cache.store`)
and then strictly appended; records are one JSON object per line and a
truncated tail line — a crashed host mid-append — is skipped on load,
never an error.

The **run key** identifies *what the journal is a journal of*:
``sha256(study name || sorted job keys)``.  Job keys already hash the
execution spec and the code version, so editing the study, its machine
specs or any ``repro`` source starts a fresh journal instead of
resuming a stale one.

``run_study(..., resume=True)`` replays the journal: cells with a
``completed`` record are served without re-execution (even if the
result cache was wiped), cells that failed, timed out or were
quarantined are re-executed fresh.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Optional, Set

__all__ = ["JournalState", "RunJournal", "journal_path", "mark_running",
           "run_key"]

#: journal format version (bump to orphan old journals)
_SCHEMA = 1


def run_key(study_name: str, job_keys: Iterable[str]) -> str:
    """Content address of one study run's *identity* (see module doc)."""
    h = hashlib.sha256()
    h.update(study_name.encode())
    h.update(b"\x00")
    for key in sorted(job_keys):
        h.update(key.encode())
        h.update(b"\n")
    return h.hexdigest()


def journal_path(journal_dir: str, key: str) -> str:
    return os.path.join(journal_dir, key + ".jsonl")


def mark_running(path: str, key: str, attempt: int) -> None:
    """Append a ``running`` record — called by the *executing* process
    right before it starts the simulation, so the parent can tell which
    cells were in flight when a worker died.  O_APPEND keeps concurrent
    one-line writes from interleaving; best-effort (a journal must not
    be able to fail a job).
    """
    try:
        with open(path, "a") as fh:
            fh.write(json.dumps({"event": "running", "key": key,
                                 "attempt": attempt}) + "\n")
            fh.flush()
    except OSError:  # pragma: no cover - journal loss is non-fatal
        pass


@dataclass
class JournalState:
    """What a journal says about each cell, by job key."""

    #: key -> {"value", "sim", "attempts"} for cells that finished
    completed: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: key -> {"status", "error", "attempts"} for cells that did not
    failed: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: keys quarantined after repeated pool breaks
    quarantined: Set[str] = field(default_factory=set)
    #: key -> highest attempt number with a ``running`` marker
    running: Dict[str, int] = field(default_factory=dict)
    #: unparsable lines skipped on load (truncated tail, torn writes)
    skipped_lines: int = 0


class RunJournal:
    """One study run's append-only JSONL record (see module doc)."""

    def __init__(self, path: str, key: str):
        self.path = path
        self.key = key
        self._fh: Optional[IO[str]] = None
        self._prior = JournalState()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, journal_dir: str, study_name: str,
             job_keys: List[str], resume: bool = False
             ) -> "RunJournal":
        """Create (or, with ``resume``, reopen) the journal for a run.

        Without ``resume`` any previous journal for the same identity is
        atomically replaced by a fresh one; with ``resume`` the existing
        file is appended to, and :meth:`prior_state` exposes what it
        already recorded.
        """
        key = run_key(study_name, job_keys)
        path = journal_path(journal_dir, key)
        os.makedirs(journal_dir, exist_ok=True)
        journal = cls(path, key)
        header = {"event": "run", "schema": _SCHEMA, "study": study_name,
                  "jobs": len(job_keys), "resumed": bool(resume)}
        if resume and os.path.exists(path):
            journal._prior = cls.read_state(path)
            journal._fh = open(path, "a")
            journal._append(header)
        else:
            # fresh (or resume-with-no-journal): atomic create, so a
            # crash mid-header can never leave a half-written file that
            # a later resume would trust
            tmp = path + ".tmp"
            with open(tmp, "w") as fh:
                fh.write(json.dumps(header) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            journal._fh = open(path, "a")
        return journal

    def prior_state(self) -> JournalState:
        """What the journal recorded *before* this run (resume input)."""
        return self._prior

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        if self._fh is None:  # pragma: no cover - defensive
            return
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record(self, event: str, **fields: Any) -> None:
        """Durably append one record (``event`` plus its fields)."""
        self._append({"event": event, **fields})

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    @staticmethod
    def read_state(path: str) -> JournalState:
        """Fold a journal file into per-cell state, newest record wins.

        Unparsable lines (torn tail writes) are counted and skipped —
        a journal must degrade, never raise.
        """
        state = JournalState()
        try:
            with open(path) as fh:
                lines = fh.readlines()
        except OSError:
            return state
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                state.skipped_lines += 1
                continue
            if not isinstance(rec, dict):
                state.skipped_lines += 1
                continue
            event, key = rec.get("event"), rec.get("key")
            if event == "running" and key:
                state.running[key] = max(state.running.get(key, 0),
                                         int(rec.get("attempt", 1)))
            elif event == "completed" and key:
                state.completed[key] = {
                    "value": rec.get("value"),
                    "sim": rec.get("sim", {}),
                    "attempts": int(rec.get("attempts", 1))}
                state.failed.pop(key, None)
                state.quarantined.discard(key)
            elif event in ("failed", "timeout") and key:
                state.failed[key] = {
                    "status": rec.get("status", event),
                    "error": rec.get("error", ""),
                    "attempts": int(rec.get("attempts", 1))}
                state.completed.pop(key, None)
            elif event == "quarantined" and key:
                state.quarantined.add(key)
                state.completed.pop(key, None)
        return state
