"""Content-addressed, on-disk result cache for study jobs.

The cache key of a job is ``sha256(code_version || canonical-JSON(job
spec))``:

* **canonical JSON** — ``json.dumps(job, sort_keys=True)`` with compact
  separators, so semantically identical specs hash identically no
  matter how they were declared;
* **code version** — a sha256 over the contents of every ``*.py`` file
  in the installed ``repro`` package, so *any* source change invalidates
  the whole cache.  Simulated time is virtual and every scenario is
  deterministic by construction, which is what makes caching *exact*:
  same spec + same code ⇒ bit-identical result, so a hit can skip the
  simulation entirely.

Entries live at ``<cache_dir>/<key[:2]>/<key>.json`` and store the full
job spec next to the outcome; a hit re-checks the stored spec against
the requested one, so even a hash collision cannot return a wrong
result.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional

__all__ = ["EXECUTION_FIELDS", "cache_path", "code_version",
           "execution_spec", "job_key", "load", "skipped_entries",
           "skipped_total", "store"]

#: cache entry schema version (bump to orphan old entries on format change)
_SCHEMA = 1

_code_version_memo: Optional[str] = None

#: entries :func:`load` refused to serve, by reason — "corrupt"
#: (unreadable/not JSON/malformed outcome), "schema" (format version
#: mismatch), "spec" (stored spec does not match the requested one, the
#: hash-collision guard).  A plain absent entry counts as nothing: only
#: entries that *exist but were rejected* are tallied, so a run can
#: report silent cache damage instead of masking it as cold misses.
_SKIPPED: Dict[str, int] = {"corrupt": 0, "schema": 0, "spec": 0}


def skipped_entries() -> Dict[str, int]:
    """Per-reason counts of existing-but-rejected entries (monotonic,
    process lifetime)."""
    return dict(_SKIPPED)


def skipped_total() -> int:
    """Total existing-but-rejected entries this process has skipped."""
    return sum(_SKIPPED.values())


def code_version() -> str:
    """sha256 over every ``repro/**/*.py`` source file (memoized)."""
    global _code_version_memo
    if _code_version_memo is not None:
        return _code_version_memo
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    h = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for fname in sorted(filenames):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(dirpath, fname)
            h.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as fh:
                h.update(fh.read())
    _code_version_memo = h.hexdigest()
    return _code_version_memo


def canonical_json(job: Dict[str, Any]) -> str:
    """The spec's canonical wire form (also what gets hashed)."""
    return json.dumps(job, sort_keys=True, separators=(",", ":"))


#: the fields that determine what a job *computes*; presentation fields
#: (study name, series label, x, meta) stay out of the key, so renaming
#: a line never discards its cached simulations
EXECUTION_FIELDS = ("app", "nprocs", "params", "args", "machine", "extract")


def execution_spec(job: Dict[str, Any]) -> Dict[str, Any]:
    """The execution-relevant projection of a job spec."""
    return {k: job[k] for k in EXECUTION_FIELDS if k in job}


def job_key(job: Dict[str, Any]) -> str:
    """Content address of one job's *execution spec* under the current
    code version (see :data:`EXECUTION_FIELDS`)."""
    h = hashlib.sha256()
    h.update(code_version().encode())
    h.update(b"\x00")
    h.update(canonical_json(execution_spec(job)).encode())
    return h.hexdigest()


def cache_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, key[:2], key + ".json")


def load(cache_dir: str, job: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """The cached outcome (``{"value", "sim"}``) for ``job``, or None.

    Unreadable or mismatched entries are treated as misses, never
    errors — a cache must not be able to break a run.  But they are
    *counted* (see :func:`skipped_entries`), so the runner can surface
    "your cache is damaged" instead of silently re-simulating.
    """
    path = cache_path(cache_dir, job_key(job))
    try:
        with open(path) as fh:
            entry = json.load(fh)
    except FileNotFoundError:
        return None                     # a plain cold miss
    except (OSError, ValueError):
        _SKIPPED["corrupt"] += 1
        return None
    if not isinstance(entry, dict):
        _SKIPPED["corrupt"] += 1
        return None
    if entry.get("schema") != _SCHEMA:
        _SKIPPED["schema"] += 1
        return None
    # collision paranoia: verify the stored spec, don't trust the hash.
    # Execution-spec comparison in canonical form, so neither a series
    # rename nor tuple-vs-list can cause a miss — but a collision can
    # never return a wrong result.
    if canonical_json(execution_spec(entry.get("job", {}))) \
            != canonical_json(execution_spec(job)):
        _SKIPPED["spec"] += 1
        return None
    outcome = entry.get("outcome")
    if not isinstance(outcome, dict) or "value" not in outcome:
        _SKIPPED["corrupt"] += 1
        return None
    return outcome


def store(cache_dir: str, job: Dict[str, Any],
          outcome: Dict[str, Any]) -> str:
    """Persist one outcome; atomic (write + rename), returns the path."""
    key = job_key(job)
    path = cache_path(cache_dir, key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump({"schema": _SCHEMA, "key": key,
                   "code_version": code_version(),
                   "job": job, "outcome": outcome}, fh, indent=1)
        # flush + fsync BEFORE the rename: os.replace is atomic in the
        # namespace but says nothing about the data — without the fsync
        # a host crash can leave a fully-renamed yet truncated entry
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path
