"""How a study run treats time, failure and retries: :class:`RunPolicy`.

A policy is *runner* input, not *job* input: it changes how cells are
scheduled, retried and reported, never what a cell computes — which is
why it is deliberately **not** part of the cache key
(:data:`~repro.study.cache.EXECUTION_FIELDS` does not include it).  A
study may carry a default policy (``Study.with_policy``) that rides in
``to_json()`` next to — not inside — the cells, and ``run_study``'s
``policy=`` argument overrides it.

Backoff is exponential with *deterministic* jitter: the jitter fraction
for attempt ``k`` of a job is derived from ``sha256(job_key:k)``, so a
rerun of the same study spreads its retries identically — no wall-clock
or RNG state leaks into scheduling decisions.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

from .study import StudyError

__all__ = ["ON_ERROR_MODES", "RunPolicy", "backoff_delay"]

#: what to do when a cell exhausts its retries
ON_ERROR_MODES = ("raise", "keep_going")


@dataclass(frozen=True)
class RunPolicy:
    """Per-run resilience knobs for :func:`~repro.study.runner.run_study`.

    ``timeout`` — per-job wall-clock limit in seconds (None = no limit;
    enforced via ``SIGALRM`` inside the executing process, so it works
    identically in-process and in pool workers).
    ``retries`` — extra attempts after a failed or timed-out attempt.
    ``backoff`` / ``backoff_cap`` / ``jitter`` — retry ``k`` waits
    ``min(cap, backoff * 2**(k-1)) * (1 + j)`` seconds where ``j`` in
    ``[0, jitter]`` is deterministic per (job key, attempt).
    ``on_error`` — ``"raise"`` aborts the study on the first cell that
    exhausts its retries (the historical behavior); ``"keep_going"``
    records the failure in the :class:`~repro.study.results.JobResult`
    and keeps executing the other cells.
    ``respawn_budget`` — how many times a broken process pool (worker
    OOM-killed, ``os._exit``, SIGKILL) may be respawned per run.
    ``quarantine_strikes`` — a cell that was in flight when the pool
    broke this many times in a row is quarantined (never resubmitted)
    instead of being allowed to sink the study; a clean completion
    resets a cell's strikes.
    """

    timeout: Optional[float] = None
    retries: int = 0
    backoff: float = 0.25
    backoff_cap: float = 30.0
    jitter: float = 0.5
    on_error: str = "raise"
    respawn_budget: int = 3
    quarantine_strikes: int = 2

    def __post_init__(self) -> None:
        if self.timeout is not None and not self.timeout > 0:
            raise StudyError(
                f"policy timeout must be positive seconds or None, "
                f"got {self.timeout!r}")
        if self.retries < 0:
            raise StudyError(f"policy retries must be >= 0, got {self.retries}")
        if self.backoff < 0 or self.backoff_cap < 0 or self.jitter < 0:
            raise StudyError(
                "policy backoff/backoff_cap/jitter must be >= 0, got "
                f"{self.backoff!r}/{self.backoff_cap!r}/{self.jitter!r}")
        if self.on_error not in ON_ERROR_MODES:
            raise StudyError(
                f"policy on_error must be one of {list(ON_ERROR_MODES)}, "
                f"got {self.on_error!r}")
        if self.respawn_budget < 0:
            raise StudyError(
                f"policy respawn_budget must be >= 0, got {self.respawn_budget}")
        if self.quarantine_strikes < 1:
            raise StudyError(
                "policy quarantine_strikes must be >= 1, got "
                f"{self.quarantine_strikes}")

    @property
    def keep_going(self) -> bool:
        return self.on_error == "keep_going"

    # ------------------------------------------------------------------
    # JSON round-trip (policies ride in Study.to_json())
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "RunPolicy":
        if not isinstance(data, dict):
            raise StudyError(
                f"run policy must be a dict, got {type(data).__name__}")
        unknown = set(data) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise StudyError(
                f"run policy has unknown keys {sorted(unknown)}; "
                f"allowed: {sorted(cls.__dataclass_fields__)}")
        return cls(**data)


def backoff_delay(policy: RunPolicy, job_key: str, failure: int) -> float:
    """Seconds to wait before retry number ``failure`` (1-based).

    Exponential in the failure count, capped, with a jitter fraction
    derived from ``sha256(job_key:failure)`` — deterministic for a given
    job and attempt, decorrelated across jobs (a whole study retrying at
    once does not thundering-herd the machine).
    """
    if failure < 1:
        return 0.0
    base = min(policy.backoff_cap, policy.backoff * (2.0 ** (failure - 1)))
    digest = hashlib.sha256(f"{job_key}:{failure}".encode()).digest()
    frac = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return base * (1.0 + policy.jitter * frac)
