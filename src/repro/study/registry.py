"""Registries that make job specs executable: apps, extractors, machines.

A job spec is plain data, so everything it names must be resolvable by
name in *any* process — the study runner's pool workers included.
Three registries do that:

* **apps** — ``"mapreduce.decoupled"`` → an :class:`AppSpec`: the rank
  program (worker generator), its config dataclass, and (when the app
  compiles a :class:`~repro.api.StreamGraph`) a plan builder for the
  group-aware placements.
* **extractors** — ``"max_elapsed"`` / ``{"name": "max_field", "field":
  "io_time", "role": "mover", "scale": 15.0}`` → the scalar a cell
  reports.  Every extractor accepts an optional ``scale`` factor (the
  figures report paper-length runs by linear extrapolation).
* **machine specs** — ``{"preset": "beskow", "topology": {...},
  "placement": {"policy": "colocated", "from_plan": true}, "noise":
  {...}}`` → a :class:`~repro.simmpi.config.MachineConfig`, built via
  the config layer's JSON round-trip.  ``from_plan`` placements derive
  their group blocks from the app's compiled plan — exactly what
  :class:`repro.api.Simulation` does for graph runs.

``register_app`` / ``register_extractor`` extend the registries; the
built-ins cover the paper's three case studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..simmpi.config import (
    MachineConfig,
    NoiseConfig,
    TopologyConfig,
    beskow,
    ideal_network_testbed,
    quiet_testbed,
    resolve_topology,
)
from ..simmpi.errors import PlacementError
from ..simmpi.placement import placement_from_json
from .study import StudyError

__all__ = [
    "APPS",
    "AppSpec",
    "EXTRACTORS",
    "apply_extract",
    "build_config",
    "build_machine",
    "get_app",
    "register_app",
    "register_extractor",
    "validate_app",
    "validate_extract",
    "validate_machine_spec",
]

#: machine preset factories a spec may name
MACHINE_FACTORIES: Dict[str, Callable[[], MachineConfig]] = {
    "beskow": beskow,
    "quiet": quiet_testbed,
    "quiet_testbed": quiet_testbed,
    "ideal": ideal_network_testbed,
    "ideal_network": ideal_network_testbed,
}

#: placement policies whose group blocks come from a compiled plan
_PLAN_POLICIES = ("colocated", "partitioned")

#: keys a machine spec may carry.  "faults", "cosim", "compile" and
#: "parallel" are not part of the MachineConfig — faults resolve to a
#: FaultPlan handed to the launcher, cosim to a HubSpec handed to the
#: app's worker, and compile/parallel to CompileOptions /
#: ParallelOptions handed to the launcher — but riding in the machine
#: spec means every cache key incorporates the fault scenario, coupling
#: spec, compiler options and execution sharding automatically (the
#: spec is hashed verbatim).
_MACHINE_KEYS = ("preset", "config", "noise", "topology", "placement",
                 "ranks_per_node", "compute_speed", "faults", "cosim",
                 "compile", "parallel")


# ----------------------------------------------------------------------
# apps
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AppSpec:
    """One runnable application: worker + config class (+ plan)."""

    name: str
    worker: Callable
    config_cls: type
    describe: str = ""
    #: cfg -> DecouplingPlan, for ``from_plan`` placements; None for
    #: apps that do not compile a stream graph
    plan_builder: Optional[Callable[[Any], Any]] = None


APPS: Dict[str, AppSpec] = {}


def register_app(spec: AppSpec) -> AppSpec:
    """Add (or replace) an app registry entry; returns it.

    Pool workers resolve apps by re-importing this module, so a
    *runtime* registration travels to ``run_study(jobs>1)`` workers
    only under the ``fork`` start method (Linux default).  For
    spawn-based platforms, register at import time — e.g. in the
    module that defines the worker — or run with ``jobs=1``.
    """
    if not spec.name:
        raise StudyError("app spec needs a name")
    APPS[spec.name] = spec
    return spec


def get_app(name: str) -> AppSpec:
    spec = APPS.get(name)
    if spec is None:
        raise StudyError(
            f"unknown app {name!r}; registered: {sorted(APPS)}")
    return spec


validate_app = get_app


def _mapreduce_plan(cfg) -> Any:
    from ..apps.mapreduce.decoupled import build_graph
    return build_graph(cfg).compile(cfg.nprocs).plan


def _register_builtin_apps() -> None:
    from ..apps.cg import CGConfig, cg_blocking, cg_decoupled, cg_nonblocking
    from ..apps.ipic3d import (
        IPICConfig,
        pcomm_decoupled,
        pcomm_reference,
        pio_decoupled,
        pio_reference,
    )
    from ..apps.mapreduce import (
        MapReduceConfig,
        decoupled_worker,
        reference_worker,
    )
    from ..cosim.apps import CosimConfig, cosim_worker
    from .chaos import ChaosConfig, chaos_worker
    from ..faults.apps import (
        CGHaloRecoveryConfig,
        PcommRecoveryConfig,
        cg_halo_recovery,
        pcomm_recovery,
    )

    for spec in (
        AppSpec("mapreduce.reference", reference_worker, MapReduceConfig,
                "MapReduce word histogram, conventional reduce"),
        AppSpec("mapreduce.decoupled", decoupled_worker, MapReduceConfig,
                "MapReduce word histogram, decoupled reduce group",
                plan_builder=_mapreduce_plan),
        AppSpec("cg.blocking", cg_blocking, CGConfig,
                "CG solver, blocking halo exchange"),
        AppSpec("cg.nonblocking", cg_nonblocking, CGConfig,
                "CG solver, non-blocking halo exchange"),
        AppSpec("cg.decoupled", cg_decoupled, CGConfig,
                "CG solver, decoupled halo group"),
        AppSpec("ipic3d.pcomm_reference", pcomm_reference, IPICConfig,
                "iPIC3D particle communication, neighbour forwarding"),
        AppSpec("ipic3d.pcomm_decoupled", pcomm_decoupled, IPICConfig,
                "iPIC3D particle communication, decoupled exchange"),
        AppSpec("ipic3d.pio_reference", pio_reference, IPICConfig,
                "iPIC3D particle I/O, blocking dump "
                "(args: [collective: bool])"),
        AppSpec("ipic3d.pio_decoupled", pio_decoupled, IPICConfig,
                "iPIC3D particle I/O, decoupled buffered writers"),
        AppSpec("cg.halo_recovery", cg_halo_recovery, CGHaloRecoveryConfig,
                "CG halo funnel with checkpointed stream recovery"),
        AppSpec("ipic3d.pcomm_recovery", pcomm_recovery,
                PcommRecoveryConfig,
                "iPIC3D exit funnel with checkpointed stream recovery"),
        AppSpec("cosim.hub", cosim_worker, CosimConfig,
                "coupled micro/macro simulators through a translator "
                "hub (machine.cosim.* sets the hub knobs)"),
        AppSpec("study.chaos", chaos_worker, ChaosConfig,
                "deterministic misbehaving workload for runner-"
                "resilience studies (fail/exit_code/hang_s/flake_path)"),
    ):
        register_app(spec)


_register_builtin_apps()


def build_config(spec: AppSpec, nprocs: int, params: Dict[str, Any]) -> Any:
    """Instantiate the app's config for one job."""
    try:
        return spec.config_cls(nprocs=nprocs, **params)
    except (TypeError, ValueError) as exc:
        raise StudyError(
            f"app {spec.name!r}: bad config params {params!r} at "
            f"nprocs={nprocs}: {exc}") from exc


# ----------------------------------------------------------------------
# extractors
# ----------------------------------------------------------------------

def _max_elapsed(result) -> float:
    # crashed ranks (fault-injection runs) report None; the survivors
    # define the figure metric
    vals = [v["elapsed"] for v in result.values if v is not None]
    if not vals:
        raise StudyError("extractor max_elapsed: every rank crashed")
    return max(vals)


def _max_field(result, field: str, role: Optional[str] = None) -> float:
    vals = [v[field] for v in result.values
            if v is not None and (role is None or v.get("role") == role)]
    if not vals:
        raise StudyError(
            f"extractor max_field: no surviving rank has role {role!r}")
    return max(vals)


def _pio_visible(result) -> float:
    """Fig. 8 decoupled metric: end-to-end time minus the movers'
    compute baseline — the particle-I/O cost a user actually observes."""
    movers = [v for v in result.values
              if v is not None and v.get("role") == "mover"]
    if not movers:
        raise StudyError("extractor pio_visible: no mover ranks")
    baseline = max(v["elapsed"] - v["io_time"] for v in movers)
    return max(v["elapsed"] for v in result.values
               if v is not None) - baseline


EXTRACTORS: Dict[str, Callable] = {
    "max_elapsed": _max_elapsed,
    "max_field": _max_field,
    "pio_visible": _pio_visible,
}


def register_extractor(name: str, fn: Callable) -> Callable:
    """Add (or replace) an extractor ``fn(result, **params) -> float``."""
    EXTRACTORS[name] = fn
    return fn


def validate_extract(spec: Any) -> None:
    """Check an extract spec without running anything."""
    if isinstance(spec, str):
        name, params = spec, {}
    elif isinstance(spec, dict):
        spec = dict(spec)
        name = spec.pop("name", None)
        spec.pop("scale", None)
        params = spec
    else:
        raise StudyError(
            f"extract spec must be a name or a dict, got {type(spec).__name__}")
    if name not in EXTRACTORS:
        raise StudyError(
            f"unknown extractor {name!r}; registered: {sorted(EXTRACTORS)}")
    for key in params:
        if not isinstance(key, str):
            raise StudyError(f"extractor param keys must be strings: {key!r}")


def apply_extract(spec: Any, result) -> float:
    """Run an extract spec against a :class:`SimResult`."""
    validate_extract(spec)
    if isinstance(spec, str):
        name, params, scale = spec, {}, 1.0
    else:
        params = dict(spec)
        name = params.pop("name")
        scale = float(params.pop("scale", 1.0))
    try:
        value = EXTRACTORS[name](result, **params)
    except (KeyError, TypeError) as exc:
        raise StudyError(
            f"extractor {name!r} failed with params {params!r}: {exc}"
        ) from exc
    return float(value) * scale


# ----------------------------------------------------------------------
# machine specs
# ----------------------------------------------------------------------

def validate_machine_spec(spec: Optional[Dict[str, Any]],
                          app: AppSpec) -> None:
    """Check a machine spec's shape at declaration time."""
    if spec is None:
        return
    if not isinstance(spec, dict):
        raise StudyError(
            f"machine spec must be a dict, got {type(spec).__name__}")
    unknown = set(spec) - set(_MACHINE_KEYS)
    if unknown:
        raise StudyError(
            f"machine spec has unknown keys {sorted(unknown)}; "
            f"allowed: {list(_MACHINE_KEYS)}")
    if "preset" in spec and "config" in spec:
        raise StudyError("machine spec: give 'preset' or 'config', not both")
    preset = spec.get("preset")
    if preset is not None and preset not in MACHINE_FACTORIES:
        raise StudyError(
            f"unknown machine preset {preset!r}; "
            f"choose from {sorted(MACHINE_FACTORIES)}")
    faults = spec.get("faults")
    if faults is not None:
        from ..faults.plan import FaultError, resolve_faults
        try:
            resolve_faults(faults)
        except FaultError as exc:
            raise StudyError(f"machine spec faults: {exc}") from exc
    cosim = spec.get("cosim")
    if cosim is not None:
        from ..cosim.spec import CosimError, resolve_hub
        try:
            resolve_hub(cosim)
        except CosimError as exc:
            raise StudyError(f"machine spec cosim: {exc}") from exc
    compile_ = spec.get("compile")
    if compile_ is not None:
        from ..compile.options import resolve_options
        try:
            resolve_options(compile_)
        except ValueError as exc:
            raise StudyError(f"machine spec compile: {exc}") from exc
    parallel = spec.get("parallel")
    if parallel is not None:
        from ..parallel import ParallelError, resolve_parallel
        try:
            resolve_parallel(parallel)
        except ParallelError as exc:
            raise StudyError(f"machine spec parallel: {exc}") from exc
    placement = spec.get("placement")
    if placement is not None:
        if not isinstance(placement, dict):
            raise StudyError("machine spec placement must be a dict")
        if placement.get("from_plan"):
            policy = placement.get("policy")
            # an unresolved bind target may legitimately still be None
            # here; the policy name is re-checked at build time
            if policy is not None and policy not in _PLAN_POLICIES:
                raise StudyError(
                    f"from_plan placement must be one of "
                    f"{list(_PLAN_POLICIES)}, got {policy!r}")
            if app.plan_builder is None:
                raise StudyError(
                    f"app {app.name!r} compiles no stream graph; "
                    "from_plan placement needs explicit 'groups'")


def build_machine(spec: Optional[Dict[str, Any]], app: AppSpec,
                  cfg: Any) -> MachineConfig:
    """Resolve a job's machine spec into a :class:`MachineConfig`."""
    spec = dict(spec or {})
    validate_machine_spec(spec, app)
    spec.pop("faults", None)   # launcher concern, not a MachineConfig field
    spec.pop("cosim", None)    # worker concern, not a MachineConfig field
    spec.pop("compile", None)  # launcher concern (CompileOptions)
    spec.pop("parallel", None)  # launcher concern (ParallelOptions)
    if "config" in spec:
        base = MachineConfig.from_json(spec["config"])
    else:
        base = MACHINE_FACTORIES[spec.get("preset", "quiet")]()
    overrides: Dict[str, Any] = {}
    if "ranks_per_node" in spec:
        overrides["ranks_per_node"] = int(spec["ranks_per_node"])
    if "compute_speed" in spec:
        overrides["compute_speed"] = float(spec["compute_speed"])
    if "noise" in spec:
        # partial sub-specs merge OVER the base machine's config — a
        # study that binds only machine.noise.seed must keep the
        # preset's other noise knobs (a quiet preset stays quiet)
        overrides["noise"] = NoiseConfig.from_json(
            {**base.noise.to_json(), **spec["noise"]})
    if "topology" in spec:
        topo = spec["topology"]
        overrides["topology"] = (
            resolve_topology(topo) if isinstance(topo, str)
            else TopologyConfig.from_json(
                {**base.topology.to_json(), **topo}))
    if "placement" in spec:
        overrides["placement"] = _build_placement(spec["placement"], app, cfg)
    if overrides:
        base = base.with_(**overrides)
    base.validate()
    return base


def _build_placement(data: Dict[str, Any], app: AppSpec, cfg: Any):
    if data.get("from_plan"):
        from ..api import plan_placement

        policy = data.get("policy")
        if policy not in _PLAN_POLICIES:
            raise StudyError(
                f"from_plan placement must be one of {list(_PLAN_POLICIES)}, "
                f"got {policy!r}")
        if app.plan_builder is None:
            raise StudyError(
                f"app {app.name!r} compiles no stream graph; from_plan "
                "placement needs explicit 'groups'")
        return plan_placement(policy, app.plan_builder(cfg))
    try:
        return placement_from_json(data)
    except PlacementError as exc:
        raise StudyError(str(exc)) from exc
