"""Query, export and render the outcome of a study run.

A :class:`ResultSet` holds one :class:`JobResult` per job, in the
study's deterministic job order, and answers the questions figures and
tests actually ask: ``rs.series(label)`` (one figure line as a
:class:`~repro.bench.harness.Series`), ``rs.ratio(a, b)`` (point-wise
ratio of two lines), ``rs.table()`` (the paper-style text table),
``rs.to_json()`` / ``rs.to_csv()`` (artifacts), plus the
``executed`` / ``cached`` accounting the cache-gating CI job asserts
on.

Since the resilient-runner redesign, *failure is data*: a
:class:`JobResult` carries ``status`` (``"ok"``, ``"failed"``,
``"timeout"``, ``"quarantined"``, ``"missing"``), the ``error`` text
and the ``attempts`` count, and a partially-failed study renders
honestly — failed cells are blank in ``table()``, carry an empty value
and their status in ``to_csv()``, surface in ``to_json()``, and
``Series.value`` names the failure instead of pretending the point was
never swept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from .study import Study, StudyError

# NOTE: Series/render_table are imported lazily inside methods —
# repro.bench.figures runs studies, so a module-level import back into
# repro.bench would be circular.

__all__ = ["FAILURE_STATUSES", "JobResult", "ResultSet", "STATUSES"]

#: every status a JobResult may carry ("ok" first)
STATUSES = ("ok", "failed", "timeout", "quarantined", "missing")

#: the statuses that mean "this cell has no value"
FAILURE_STATUSES = ("failed", "timeout", "quarantined", "missing")


@dataclass
class JobResult:
    """Outcome of one job: the extracted y-value plus sim accounting —
    or, for a cell that did not produce one, its failure record."""

    job: Dict[str, Any]
    value: Optional[float]
    sim: Dict[str, Any] = field(default_factory=dict)
    cached: bool = False
    #: "ok" | "failed" | "timeout" | "quarantined" | "missing"
    status: str = "ok"
    #: the final attempt's error text (None when ok)
    error: Optional[str] = None
    #: how many times the cell was started (retries + pool resubmits)
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise StudyError(
                f"job result status must be one of {list(STATUSES)}, "
                f"got {self.status!r}")
        if self.status == "ok" and self.value is None:
            raise StudyError(
                f"ok job result for {self.job.get('series')!r} at "
                f"P={self.job.get('x')} has no value")

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def series(self) -> str:
        return self.job["series"]

    @property
    def x(self) -> int:
        return self.job["x"]

    def describe_failure(self) -> str:
        """One line naming why this cell has no value."""
        return f"{self.status}: {self.error or 'no error recorded'}"


class ResultSet:
    """All results of one study run, queryable by series label.

    ``results`` may contain ``None`` placeholders (a slot the runner
    never settled); they are *counted* — in :attr:`missing` — never
    silently dropped, so partial result sets stay honest.
    """

    def __init__(self, study: Study,
                 results: Iterable[Optional[JobResult]]):
        self.study = study
        self.results: List[JobResult] = []
        self._none_slots = 0
        for r in results:
            if r is None:
                self._none_slots += 1
                continue
            self.results.append(r)
        self._by_label: Dict[str, Dict[int, JobResult]] = {}
        for r in self.results:
            self._by_label.setdefault(r.series, {})[r.x] = r

    # ------------------------------------------------------------------
    # accounting (the cache-gating CI job asserts on these)
    # ------------------------------------------------------------------
    @property
    def executed(self) -> int:
        """Jobs that actually ran simulation attempts this time
        (successful or not); zero on a fully cached warm rerun."""
        return sum(1 for r in self.results
                   if not r.cached and r.status != "missing")

    @property
    def cached(self) -> int:
        """Jobs served without simulation work (result cache or
        resumed journal)."""
        return sum(1 for r in self.results if r.cached)

    @property
    def ok(self) -> int:
        """Jobs that produced a value."""
        return sum(1 for r in self.results if r.ok)

    @property
    def failed(self) -> int:
        """Jobs that exhausted their retries (failures + timeouts)."""
        return sum(1 for r in self.results
                   if r.status in ("failed", "timeout"))

    @property
    def quarantined(self) -> int:
        """Jobs benched after repeatedly breaking the worker pool."""
        return sum(1 for r in self.results if r.status == "quarantined")

    @property
    def missing(self) -> int:
        """Cells with no result at all — never-settled slots plus
        ``None`` placeholders handed to the constructor."""
        return self._none_slots + sum(
            1 for r in self.results if r.status == "missing")

    @property
    def complete(self) -> bool:
        """True when every cell produced a value."""
        return self.ok == len(self.results) + self._none_slots

    def failures(self) -> List[JobResult]:
        """The non-ok results, in job order."""
        return [r for r in self.results if not r.ok]

    def __len__(self) -> int:
        return len(self.results) + self._none_slots

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def labels(self) -> List[str]:
        """Series labels in job order."""
        return list(self._by_label)

    def series(self, label: str):
        """One figure line as a harness
        :class:`~repro.bench.harness.Series`.

        Failed points become *holes*: absent from ``points``, recorded
        in the series' ``missing`` map so ``Series.value`` can name the
        failure instead of claiming the point was never swept.
        """
        from ..bench.harness import Series

        points = self._by_label.get(label)
        if points is None:
            raise StudyError(
                f"study {self.study.name!r} has no series {label!r}; "
                f"available: {self.labels()}")
        meta = dict(next(iter(points.values())).job.get("meta", {}))
        return Series(label,
                      points={x: r.value for x, r in points.items()
                              if r.ok},
                      meta=meta,
                      missing={x: r.describe_failure()
                               for x, r in points.items() if not r.ok})

    def to_series(self) -> List[Any]:
        """Every line, in declaration/expansion order — what the
        figure and table code consumes directly."""
        return [self.series(label) for label in self.labels()]

    def value(self, label: str, x: int) -> float:
        return self.series(label).value(x)

    def ratio(self, num_label: str, den_label: str):
        """Point-wise ``num / den`` over their common x values."""
        from ..bench.harness import Series

        num, den = self.series(num_label), self.series(den_label)
        common = [x for x in num.xs if x in den.points]
        if not common:
            raise StudyError(
                f"series {num_label!r} and {den_label!r} share no points")
        return Series(f"{num_label} / {den_label}",
                      points={x: num.points[x] / den.points[x]
                              for x in common})

    # ------------------------------------------------------------------
    # rendering / export
    # ------------------------------------------------------------------
    def table(self, title: Optional[str] = None) -> str:
        """The paper-style text table; failed cells render blank and
        are itemized in a footer, so a partial study never reads as a
        complete one."""
        from ..bench.harness import render_table

        out = render_table(title or self.study.title, self.to_series(),
                           unit=self.study.unit)
        holes = self.failures()
        if holes or self._none_slots:
            lines = [out, f"{len(holes) + self._none_slots} cell(s) "
                          "without a value:"]
            for r in holes:
                lines.append(f"  {r.series} @ P={r.x}: "
                             f"{r.describe_failure()}")
            if self._none_slots:
                lines.append(f"  (+{self._none_slots} unidentified "
                             "missing slot(s))")
            out = "\n".join(lines)
        return out

    def to_json(self) -> Dict[str, Any]:
        return {
            "study": self.study.to_json(),
            "results": [
                {"job": r.job, "value": r.value, "sim": r.sim,
                 "cached": r.cached, "status": r.status,
                 "error": r.error, "attempts": r.attempts}
                for r in self.results
            ],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ResultSet":
        study = Study.from_json(data["study"])
        results = [JobResult(job=r["job"], value=r["value"],
                             sim=r.get("sim", {}),
                             cached=bool(r.get("cached", False)),
                             status=r.get("status", "ok"),
                             error=r.get("error"),
                             attempts=int(r.get("attempts", 1)))
                   for r in data["results"]]
        return cls(study, results)

    def to_csv(self) -> str:
        """Flat CSV: one row per job (study, series, x, value, cached,
        status); a failed cell's value field is empty, not invented."""
        lines = ["study,series,x,value,cached,status"]
        for r in self.results:
            label = r.series.replace('"', '""')
            value = repr(r.value) if r.ok else ""
            lines.append(f'{self.study.name},"{label}",{r.x},'
                         f'{value},{int(r.cached)},{r.status}')
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ResultSet({self.study.name!r}, jobs={len(self)}, "
                f"executed={self.executed}, cached={self.cached}, "
                f"failed={self.failed}, quarantined={self.quarantined}, "
                f"missing={self.missing})")
