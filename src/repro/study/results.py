"""Query, export and render the outcome of a study run.

A :class:`ResultSet` holds one :class:`JobResult` per job, in the
study's deterministic job order, and answers the questions figures and
tests actually ask: ``rs.series(label)`` (one figure line as a
:class:`~repro.bench.harness.Series`), ``rs.ratio(a, b)`` (point-wise
ratio of two lines), ``rs.table()`` (the paper-style text table),
``rs.to_json()`` / ``rs.to_csv()`` (artifacts), plus the
``executed`` / ``cached`` accounting the cache-gating CI job asserts
on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .study import Study, StudyError

# NOTE: Series/render_table are imported lazily inside methods —
# repro.bench.figures runs studies, so a module-level import back into
# repro.bench would be circular.

__all__ = ["JobResult", "ResultSet"]


@dataclass
class JobResult:
    """Outcome of one job: the extracted y-value plus sim accounting."""

    job: Dict[str, Any]
    value: float
    sim: Dict[str, Any] = field(default_factory=dict)
    cached: bool = False

    @property
    def series(self) -> str:
        return self.job["series"]

    @property
    def x(self) -> int:
        return self.job["x"]


class ResultSet:
    """All results of one study run, queryable by series label."""

    def __init__(self, study: Study, results: List[JobResult]):
        self.study = study
        self.results = list(results)
        self._by_label: Dict[str, Dict[int, JobResult]] = {}
        for r in self.results:
            self._by_label.setdefault(r.series, {})[r.x] = r

    # ------------------------------------------------------------------
    # accounting (the cache-gating CI job asserts on these)
    # ------------------------------------------------------------------
    @property
    def executed(self) -> int:
        """Jobs that actually ran a simulation this time."""
        return sum(1 for r in self.results if not r.cached)

    @property
    def cached(self) -> int:
        """Jobs served from the result cache (zero simulation work)."""
        return sum(1 for r in self.results if r.cached)

    def __len__(self) -> int:
        return len(self.results)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def labels(self) -> List[str]:
        """Series labels in job order."""
        return list(self._by_label)

    def series(self, label: str):
        """One figure line as a harness
        :class:`~repro.bench.harness.Series`."""
        from ..bench.harness import Series

        points = self._by_label.get(label)
        if points is None:
            raise StudyError(
                f"study {self.study.name!r} has no series {label!r}; "
                f"available: {self.labels()}")
        meta = dict(next(iter(points.values())).job.get("meta", {}))
        return Series(label,
                      points={x: r.value for x, r in points.items()},
                      meta=meta)

    def to_series(self) -> List[Any]:
        """Every line, in declaration/expansion order — what the
        figure and table code consumes directly."""
        return [self.series(label) for label in self.labels()]

    def value(self, label: str, x: int) -> float:
        return self.series(label).value(x)

    def ratio(self, num_label: str, den_label: str):
        """Point-wise ``num / den`` over their common x values."""
        from ..bench.harness import Series

        num, den = self.series(num_label), self.series(den_label)
        common = [x for x in num.xs if x in den.points]
        if not common:
            raise StudyError(
                f"series {num_label!r} and {den_label!r} share no points")
        return Series(f"{num_label} / {den_label}",
                      points={x: num.points[x] / den.points[x]
                              for x in common})

    # ------------------------------------------------------------------
    # rendering / export
    # ------------------------------------------------------------------
    def table(self, title: Optional[str] = None) -> str:
        from ..bench.harness import render_table

        return render_table(title or self.study.title, self.to_series(),
                            unit=self.study.unit)

    def to_json(self) -> Dict[str, Any]:
        return {
            "study": self.study.to_json(),
            "results": [
                {"job": r.job, "value": r.value, "sim": r.sim,
                 "cached": r.cached}
                for r in self.results
            ],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ResultSet":
        study = Study.from_json(data["study"])
        results = [JobResult(job=r["job"], value=r["value"],
                             sim=r.get("sim", {}),
                             cached=bool(r.get("cached", False)))
                   for r in data["results"]]
        return cls(study, results)

    def to_csv(self) -> str:
        """Flat CSV: one row per job (study, series, x, value, cached)."""
        lines = ["study,series,x,value,cached"]
        for r in self.results:
            label = r.series.replace('"', '""')
            lines.append(f'{self.study.name},"{label}",{r.x},'
                         f'{r.value!r},{int(r.cached)}')
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ResultSet({self.study.name!r}, jobs={len(self)}, "
                f"executed={self.executed}, cached={self.cached})")
