"""Declarative experiment studies: a grid of axes compiled to job specs.

A :class:`Study` is *data*: a named set of axes (``nprocs``, ``alpha``,
placement mode, noise seed, ...) plus *cells* — one per figure line —
that name an application from the :mod:`~repro.study.registry`, the
config parameters, the machine spec and the extractor that maps a
:class:`~repro.simmpi.launcher.SimResult` to the cell's y-value.

``Study.jobs()`` compiles the declaration into a deterministic list of
**Job specs** — plain JSON-serializable dicts — which the
:mod:`~repro.study.runner` executes across a process pool with a
content-addressed result cache.  Because a study round-trips through
``to_json()`` / ``from_json()``, a scenario is a *file*, not a Python
call tree::

    study = (Study("fig5", title="Fig. 5 - MapReduce weak scaling (s)")
             .axis("nprocs", [32, 128, 512])
             .axis("alpha", [0.125, 0.0625])
             .cell("Reference", app="mapreduce.reference",
                   machine={"preset": "beskow"})
             .cell("Decoupling (a={alpha:.4g})", app="mapreduce.decoupled",
                   bind={"alpha": "alpha"}, machine={"preset": "beskow"}))
    rs = run_study(study, jobs=4, cache="~/.cache/repro-study")
    print(rs.table())

Expansion rules
---------------

* Every cell sweeps the ``x_axis`` (``"nprocs"`` by default) — that is
  the figure's x coordinate.
* A cell additionally expands over every *referenced* axis: the keys of
  its ``bind`` mapping plus any axis named in the label template.  Axes
  a cell does not reference do not multiply it (the fig5 reference line
  does not repeat per alpha).
* Referenced non-x axes are outer loops in axis declaration order, the
  x axis is the innermost loop, cells expand in declaration order —
  so the job list, and therefore every cache key, is deterministic.

``bind`` maps an axis name to where its value lands in the job spec:
a bare name is a config parameter (``"alpha"`` →
``MapReduceConfig(alpha=...)``); a dotted ``machine.`` path writes into
the machine spec (``"machine.placement.policy"``, ``"machine.noise.seed"``).
"""

from __future__ import annotations

import copy
import string
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["Study", "StudyError"]


class StudyError(ValueError):
    """An invalid study declaration or job spec."""


_FORMATTER = string.Formatter()

#: JSON-representable scalar types allowed as axis values / parameters
_SCALARS = (bool, int, float, str, type(None))


def _label_fields(template: str) -> List[str]:
    """Axis names referenced by a label template, in template order."""
    try:
        return [fname for _, fname, _, _ in _FORMATTER.parse(template)
                if fname]
    except ValueError as exc:
        raise StudyError(f"bad label template {template!r}: {exc}") from exc


def _check_jsonable(value: Any, where: str) -> None:
    if isinstance(value, _SCALARS):
        return
    if isinstance(value, (list, tuple)):
        for v in value:
            _check_jsonable(v, where)
        return
    if isinstance(value, dict):
        for k, v in value.items():
            if not isinstance(k, str):
                raise StudyError(
                    f"{where}: dict keys must be strings, got {k!r}")
            _check_jsonable(v, where)
        return
    raise StudyError(
        f"{where}: {value!r} is not JSON-serializable; job specs must "
        "be plain data (use registry names, not objects)")


class Study:
    """A named, declarative grid of experiment cells (see module doc)."""

    def __init__(self, name: str, title: str = "", unit: str = "s"):
        if not name or not isinstance(name, str):
            raise StudyError("study name must be a non-empty string")
        self.name = name
        self.title = title or name
        self.unit = unit
        self._axes: Dict[str, Tuple[Any, ...]] = {}
        self._cells: List[Dict[str, Any]] = []
        self._policy: Optional[Any] = None

    # ------------------------------------------------------------------
    # declaration (fluent)
    # ------------------------------------------------------------------
    def axis(self, name: str, values: Sequence[Any]) -> "Study":
        """Declare one axis of the grid (ordered, non-empty)."""
        if not name or not isinstance(name, str):
            raise StudyError("axis name must be a non-empty string")
        if name in self._axes:
            raise StudyError(f"axis {name!r} declared twice")
        values = tuple(values)
        if not values:
            raise StudyError(f"axis {name!r} has no values")
        for v in values:
            _check_jsonable(v, f"axis {name!r}")
        self._axes[name] = values
        return self

    def cell(self, label: str, app: str, *,
             params: Optional[Dict[str, Any]] = None,
             extract: Any = "max_elapsed",
             machine: Optional[Dict[str, Any]] = None,
             args: Sequence[Any] = (),
             bind: Optional[Dict[str, str]] = None,
             meta: Optional[Dict[str, Any]] = None,
             x_axis: str = "nprocs") -> "Study":
        """Declare one cell — one line of the figure.

        ``label`` may be a template over axis names (``"Dec (a={alpha})"``)
        — one series per combination.  ``app`` / ``extract`` name entries
        of the :mod:`~repro.study.registry`; ``machine`` is a machine
        spec dict (``{"preset": ..., "topology": ..., "placement": ...,
        "noise": ...}``); ``args`` are extra worker arguments after the
        config; ``bind`` routes axis values into the job (see module
        doc).
        """
        # import here: registry imports apps; keep Study importable alone
        from .registry import validate_app, validate_extract, validate_machine_spec

        if not label or not isinstance(label, str):
            raise StudyError("cell label must be a non-empty string")
        spec = validate_app(app)
        validate_extract(extract)
        validate_machine_spec(machine, spec)
        cell = {
            "label": label,
            "app": app,
            "params": dict(params or {}),
            "extract": extract if isinstance(extract, str) else dict(extract),
            "machine": copy.deepcopy(dict(machine or {})),
            "args": list(args),
            "bind": dict(bind or {}),
            "meta": dict(meta or {}),
            "x_axis": x_axis,
        }
        for key in ("params", "machine", "args", "meta"):
            _check_jsonable(cell[key], f"cell {label!r} {key}")
        for axis_name, path in cell["bind"].items():
            if not isinstance(path, str) or not path:
                raise StudyError(
                    f"cell {label!r}: bind target for axis {axis_name!r} "
                    f"must be a non-empty path string, got {path!r}")
            if axis_name == x_axis:
                raise StudyError(
                    f"cell {label!r}: the x axis {x_axis!r} cannot be "
                    "re-routed via bind; it always becomes the job's "
                    "process count")
            if path == "nprocs" or path == x_axis:
                raise StudyError(
                    f"cell {label!r}: the x axis {x_axis!r} is bound "
                    "automatically; don't bind onto it")
            if "." in path and not path.startswith("machine."):
                raise StudyError(
                    f"cell {label!r}: dotted bind path {path!r} must "
                    "start with 'machine.' (config params are flat)")
        self._cells.append(cell)
        return self

    def with_policy(self, policy: Any) -> "Study":
        """Attach a default :class:`~repro.study.policy.RunPolicy`.

        The policy is *runner* input — how cells are timed out, retried
        and reported — never *job* input: it rides in ``to_json()``
        next to the cells but is deliberately absent from every job
        spec, so attaching or editing a policy never changes a cache
        key.  ``run_study(policy=...)`` overrides it.
        """
        from .policy import RunPolicy

        if policy is None:
            self._policy = None
        elif isinstance(policy, RunPolicy):
            self._policy = policy
        elif isinstance(policy, dict):
            self._policy = RunPolicy.from_json(policy)
        else:
            raise StudyError(
                f"study policy must be a RunPolicy or a dict, got "
                f"{type(policy).__name__}")
        return self

    @property
    def run_policy(self) -> Optional[Any]:
        """The study's default run policy (None = runner defaults)."""
        return self._policy

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def axes(self) -> Dict[str, Tuple[Any, ...]]:
        return dict(self._axes)

    @property
    def cells(self) -> List[Dict[str, Any]]:
        return copy.deepcopy(self._cells)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Study({self.name!r}, axes={list(self._axes)}, "
                f"cells={len(self._cells)})")

    # ------------------------------------------------------------------
    # compilation to job specs
    # ------------------------------------------------------------------
    def jobs(self) -> List[Dict[str, Any]]:
        """Compile to the deterministic, JSON-serializable job list."""
        if not self._cells:
            raise StudyError(f"study {self.name!r} declares no cells")
        out: List[Dict[str, Any]] = []
        seen_labels: Dict[str, int] = {}
        for idx, cell in enumerate(self._cells):
            x_axis = cell["x_axis"]
            xs = self._axes.get(x_axis)
            if xs is None:
                raise StudyError(
                    f"cell {cell['label']!r} sweeps axis {x_axis!r}, "
                    f"which is not declared (axes: {list(self._axes)})")
            referenced = list(dict.fromkeys(
                list(cell["bind"]) + _label_fields(cell["label"])))
            if x_axis in _label_fields(cell["label"]):
                raise StudyError(
                    f"cell {cell['label']!r} interpolates the x axis "
                    f"{x_axis!r} into its label; the x axis indexes "
                    "points within one series, not series")
            for name in referenced:
                if name == x_axis:
                    continue
                if name not in self._axes:
                    raise StudyError(
                        f"cell {cell['label']!r} references axis "
                        f"{name!r}, which is not declared")
            outer = [n for n in self._axes
                     if n in referenced and n != x_axis]
            for combo in _product([self._axes[n] for n in outer]):
                values = dict(zip(outer, combo))
                label = (cell["label"].format(**values)
                         if referenced else cell["label"])
                if label in seen_labels:
                    owner = seen_labels[label]
                    if owner == idx:
                        raise StudyError(
                            f"cell #{idx} produces the label {label!r} "
                            "for two axis combinations — every bound "
                            "axis must appear in the label template, or "
                            "the combinations overwrite each other")
                    raise StudyError(
                        f"series label {label!r} produced by two cells "
                        f"(#{owner} and #{idx})")
                seen_labels[label] = idx
                params = copy.deepcopy(cell["params"])
                machine = copy.deepcopy(cell["machine"])
                for axis_name, path in cell["bind"].items():
                    _apply_bind(path, values[axis_name], params, machine,
                                label)
                for x in xs:
                    if not isinstance(x, int) or x <= 0:
                        raise StudyError(
                            f"x axis {x_axis!r} values must be positive "
                            f"ints (process counts), got {x!r}")
                    out.append({
                        "study": self.name,
                        "series": label,
                        "x": x,
                        "app": cell["app"],
                        "nprocs": x,
                        "params": copy.deepcopy(params),
                        "args": list(cell["args"]),
                        "machine": copy.deepcopy(machine),
                        "extract": copy.deepcopy(cell["extract"]),
                        "meta": copy.deepcopy(cell["meta"]),
                    })
        return out

    def labels(self) -> List[str]:
        """Series labels in expansion order (no duplicates)."""
        return list(dict.fromkeys(j["series"] for j in self.jobs()))

    # ------------------------------------------------------------------
    # JSON round-trip: a scenario is a file
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        data = {
            "name": self.name,
            "title": self.title,
            "unit": self.unit,
            "axes": {n: list(vs) for n, vs in self._axes.items()},
            "cells": copy.deepcopy(self._cells),
        }
        if self._policy is not None:
            # runner input, serialized NEXT TO the cells — job specs
            # (and therefore cache keys) never see it
            data["policy"] = self._policy.to_json()
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Study":
        try:
            study = cls(data["name"], title=data.get("title", ""),
                        unit=data.get("unit", "s"))
            for name, values in data.get("axes", {}).items():
                study.axis(name, values)
            for cell in data.get("cells", []):
                cell = dict(cell)
                label = cell.pop("label")
                app = cell.pop("app")
                study.cell(label, app, **cell)
            if data.get("policy") is not None:
                study.with_policy(data["policy"])
        except KeyError as exc:
            raise StudyError(f"study JSON is missing key {exc}") from exc
        return study


def _product(axes_values: List[Tuple[Any, ...]]):
    """Cartesian product preserving declaration order ([] -> one empty
    combo, so unreferenced cells expand exactly once)."""
    if not axes_values:
        yield ()
        return
    head, *tail = axes_values
    for v in head:
        for rest in _product(tail):
            yield (v,) + rest


def _apply_bind(path: str, value: Any, params: Dict[str, Any],
                machine: Dict[str, Any], label: str) -> None:
    """Write one axis value into a job's params or machine spec."""
    if path.startswith("machine."):
        parts = path.split(".")[1:]
        target = machine
        for part in parts[:-1]:
            nxt = target.setdefault(part, {})
            if not isinstance(nxt, dict):
                raise StudyError(
                    f"cell {label!r}: bind path {path!r} descends into "
                    f"non-dict {part!r}")
            target = nxt
        target[parts[-1]] = value
    else:
        params[path] = value
