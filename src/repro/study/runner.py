"""Execute a study: schedule jobs over processes, through the cache.

``run_study`` is the one entry point: it compiles the study to job
specs, serves what it can from the content-addressed cache
(:mod:`~repro.study.cache`), and executes the misses — in-process for
``jobs=1``, across a :class:`~concurrent.futures.ProcessPoolExecutor`
otherwise.  Jobs are independent simulations, so the figure suite is
embarrassingly parallel; virtual-time determinism means the parallel,
serial and cached paths all produce bit-identical values.

Defaults honour the environment so existing callers pick studies up
transparently: ``REPRO_STUDY_JOBS`` sets the worker count and
``REPRO_STUDY_CACHE`` the cache directory when the caller passes
neither.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..simmpi.launcher import run
from . import cache as result_cache
from .registry import apply_extract, build_config, build_machine, get_app
from .results import JobResult, ResultSet
from .study import Study, StudyError

__all__ = ["execute_job", "run_study", "simulations_executed",
           "sweep_callable"]

#: simulations actually run by THIS process (pool workers count their
#: own); the cache tests assert it stays flat across a warm re-run
_SIMULATIONS_EXECUTED = 0


def simulations_executed() -> int:
    """How many simulations this process has run on behalf of studies."""
    return _SIMULATIONS_EXECUTED


def execute_job(job: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job spec to completion; returns ``{"value", "sim"}``.

    Module-level (picklable) so pool workers can execute specs by name;
    everything a job references resolves through the registry.
    """
    global _SIMULATIONS_EXECUTED
    app = get_app(job["app"])
    cfg = build_config(app, job["nprocs"], job.get("params", {}))
    machine_spec = job.get("machine") or {}
    machine = build_machine(machine_spec, app, cfg)
    # the machine spec's "faults" and "cosim" sub-keys are launcher and
    # worker input respectively, not MachineConfig fields — but riding
    # in the spec puts the fault scenario and the coupling spec into
    # every cache key
    faults = machine_spec.get("faults")
    extra = ()
    cosim = machine_spec.get("cosim")
    if cosim is not None:
        from ..cosim.spec import resolve_hub
        extra = (resolve_hub(cosim),)
    _SIMULATIONS_EXECUTED += 1
    sim = run(app.worker, job["nprocs"],
              args=(cfg, *extra, *job.get("args", ())), machine=machine,
              faults=faults)
    return {
        "value": apply_extract(job["extract"], sim),
        "sim": {"elapsed": sim.elapsed, "messages": sim.messages,
                "bytes": sim.bytes, "events": sim.events},
    }


def _job_context(job: Dict[str, Any]) -> str:
    return (f"study {job.get('study')!r} series {job.get('series')!r} "
            f"at P={job.get('x')}")


def run_study(study: Study,
              jobs: Optional[int] = None,
              cache: Optional[str] = None,
              progress: Optional[Callable[[str], None]] = None
              ) -> ResultSet:
    """Run every cell of ``study``; returns the :class:`ResultSet`.

    ``jobs`` — process-pool width (default ``$REPRO_STUDY_JOBS`` or 1,
    i.e. in-process serial execution).  ``cache`` — result-cache
    directory (default ``$REPRO_STUDY_CACHE`` or no caching).
    ``progress`` — optional callback for one-line status messages.
    """
    if jobs is None:
        jobs = int(os.environ.get("REPRO_STUDY_JOBS", "1") or 1)
    if jobs < 1:
        raise StudyError(f"jobs must be >= 1, got {jobs}")
    if cache is None:
        cache = os.environ.get("REPRO_STUDY_CACHE") or None
    if cache is not None:
        cache = os.path.abspath(os.path.expanduser(cache))

    specs = study.jobs()
    slots: List[Optional[JobResult]] = [None] * len(specs)
    pending: List[int] = []
    for i, job in enumerate(specs):
        outcome = result_cache.load(cache, job) if cache else None
        if outcome is not None:
            slots[i] = JobResult(job=job, value=outcome["value"],
                                 sim=outcome.get("sim", {}), cached=True)
        else:
            pending.append(i)
    if progress:
        progress(f"study {study.name!r}: {len(specs)} job(s), "
                 f"{len(specs) - len(pending)} cached, "
                 f"{len(pending)} to run"
                 + (f" across {jobs} workers" if jobs > 1 else ""))

    if pending and jobs > 1:
        # longest-processing-time-first: submit the big process counts
        # first so the pool tail is short.  Completion order does not
        # matter — results land in slots by index, and every job is
        # deterministic, so scheduling cannot perturb values.
        by_cost = sorted(pending, key=lambda i: -specs[i]["nprocs"])
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {pool.submit(execute_job, specs[i]): i
                       for i in by_cost}
            for future in as_completed(futures):
                i = futures[future]
                try:
                    outcome = future.result()
                except Exception as exc:
                    raise StudyError(
                        f"{_job_context(specs[i])} failed: {exc}") from exc
                slots[i] = JobResult(job=specs[i], value=outcome["value"],
                                     sim=outcome["sim"])
                if cache:
                    result_cache.store(cache, specs[i], outcome)
                if progress:
                    progress(f"  done {_job_context(specs[i])}")
    else:
        for i in pending:
            try:
                outcome = execute_job(specs[i])
            except Exception as exc:
                raise StudyError(
                    f"{_job_context(specs[i])} failed: {exc}") from exc
            slots[i] = JobResult(job=specs[i], value=outcome["value"],
                                 sim=outcome["sim"])
            if cache:
                result_cache.store(cache, specs[i], outcome)
            if progress:
                progress(f"  done {_job_context(specs[i])}")

    return ResultSet(study, [r for r in slots if r is not None])


# ----------------------------------------------------------------------
# the imperative escape hatch
# ----------------------------------------------------------------------

def sweep_callable(worker: Callable, cfg_factory: Callable[[int], Any],
                   points: Sequence[int], machine_factory: Callable,
                   extract: Callable[[Any], float], label: str,
                   extra_args: tuple = ()):
    """Run an *arbitrary* worker at every process count, serially.

    This is the imperative pre-study sweep, kept for callables that are
    not registry apps — it cannot be parallelized or cached (closures
    don't serialize), which is exactly why declared studies are the
    primary path.
    """
    from ..bench.harness import Series

    series = Series(label)
    for p in points:
        cfg = cfg_factory(p)
        result = run(worker, p, args=(cfg,) + tuple(extra_args),
                     machine=machine_factory())
        series.points[p] = float(extract(result))
    return series
