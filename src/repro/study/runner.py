"""Execute a study: schedule jobs over processes, through the cache —
and survive the failure of any one of them.

``run_study`` is the one entry point: it compiles the study to job
specs, serves what it can from the content-addressed cache
(:mod:`~repro.study.cache`), and executes the misses — in-process for
``jobs=1``, across a :class:`~concurrent.futures.ProcessPoolExecutor`
otherwise.  Jobs are independent simulations, so the figure suite is
embarrassingly parallel; virtual-time determinism means the parallel,
serial, cached and resumed paths all produce bit-identical values.

Resilience is policy, not luck (:class:`~repro.study.policy.RunPolicy`):

* a per-job **wall-clock timeout** is enforced with ``SIGALRM`` inside
  the executing process (worker or in-process alike);
* failed or timed-out attempts are **retried** with exponential backoff
  and deterministic per-(job, attempt) jitter;
* ``on_error="keep_going"`` turns failures into *data* — the cell's
  :class:`~repro.study.results.JobResult` records ``status`` /
  ``error`` / ``attempts`` and the study completes around the hole —
  while the default ``"raise"`` keeps the historical abort-on-first-
  failure contract;
* a **broken process pool** (worker OOM-killed, ``os._exit``, SIGKILL)
  is respawned within a budget; the cells that were actually executing
  when it broke are identified via the journal's ``running`` markers,
  re-run one at a time (so blame converges), and **quarantined** after
  repeated strikes instead of sinking the study;
* every run writes a :class:`~repro.study.journal.RunJournal` under
  the cache dir; ``resume=True`` replays it — completed cells are
  served without re-execution (even if the result cache was wiped,
  and the cache is repopulated from the journal), failed ones re-run.

Defaults honour the environment so existing callers pick studies up
transparently: ``REPRO_STUDY_JOBS`` sets the worker count and
``REPRO_STUDY_CACHE`` the cache directory when the caller passes
neither.
"""

from __future__ import annotations

import os
import shutil
import signal
import tempfile
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..simmpi.launcher import run
from . import cache as result_cache
from .journal import RunJournal, mark_running
from .policy import RunPolicy, backoff_delay
from .registry import apply_extract, build_config, build_machine, get_app
from .results import JobResult, ResultSet
from .study import Study, StudyError

__all__ = ["execute_job", "run_study", "simulations_executed",
           "sweep_callable"]

#: simulations actually run by THIS process (pool workers count their
#: own); the cache tests assert it stays flat across a warm re-run
_SIMULATIONS_EXECUTED = 0


def simulations_executed() -> int:
    """How many simulations this process has run on behalf of studies."""
    return _SIMULATIONS_EXECUTED


def execute_job(job: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job spec to completion; returns ``{"value", "sim"}``.

    Module-level (picklable) so pool workers can execute specs by name;
    everything a job references resolves through the registry.
    """
    global _SIMULATIONS_EXECUTED
    app = get_app(job["app"])
    cfg = build_config(app, job["nprocs"], job.get("params", {}))
    machine_spec = job.get("machine") or {}
    machine = build_machine(machine_spec, app, cfg)
    # the machine spec's "faults", "cosim" and "compile" sub-keys are
    # launcher / worker / launcher input respectively, not MachineConfig
    # fields — but riding in the spec puts the fault scenario, coupling
    # spec and compiler options into every cache key
    faults = machine_spec.get("faults")
    extra = ()
    cosim = machine_spec.get("cosim")
    if cosim is not None:
        from ..cosim.spec import resolve_hub
        extra = (resolve_hub(cosim),)
    _SIMULATIONS_EXECUTED += 1
    sim = run(app.worker, job["nprocs"],
              args=(cfg, *extra, *job.get("args", ())), machine=machine,
              faults=faults, compile=machine_spec.get("compile"),
              parallel=machine_spec.get("parallel"))
    return {
        "value": apply_extract(job["extract"], sim),
        "sim": {"elapsed": sim.elapsed, "messages": sim.messages,
                "bytes": sim.bytes, "events": sim.events},
    }


def _job_context(job: Dict[str, Any]) -> str:
    return (f"study {job.get('study')!r} series {job.get('series')!r} "
            f"at P={job.get('x')}")


# ----------------------------------------------------------------------
# guarded execution: wall-clock timeout + failure-as-data
# ----------------------------------------------------------------------

class _JobTimeout(Exception):
    """Raised inside the executing process when SIGALRM fires."""


@contextmanager
def _wall_clock_limit(seconds: Optional[float]):
    """Raise :class:`_JobTimeout` after ``seconds`` of wall time.

    Uses ``SIGALRM``, so it interrupts compute loops and sleeps alike;
    a no-op when no limit is set, when the platform has no SIGALRM, or
    off the main thread (signals only deliver there).
    """
    if (not seconds or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def _alarm(signum, frame):
        raise _JobTimeout()

    old = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old)


def _guarded_execute(job: Dict[str, Any],
                     timeout: Optional[float]) -> Dict[str, Any]:
    """Execute one job, converting failure into a plain payload.

    Returns ``{"ok": True, "outcome": ...}`` or ``{"ok": False,
    "kind": "failed"|"timeout", "error": str}`` — a dict survives
    pickling back from a pool worker no matter what exception type the
    app raised.
    """
    try:
        with _wall_clock_limit(timeout):
            outcome = execute_job(job)
    except _JobTimeout:
        return {"ok": False, "kind": "timeout",
                "error": f"exceeded the {timeout:g}s wall-clock timeout"}
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:
        return {"ok": False, "kind": "failed",
                "error": f"{type(exc).__name__}: {exc}"}
    return {"ok": True, "outcome": outcome}


def _pool_entry(job: Dict[str, Any], timeout: Optional[float],
                journal_path: str, key: str, attempt: int,
                delay: float) -> Dict[str, Any]:
    """What a pool worker runs: backoff, mark the journal, execute.

    The ``running`` marker is written by the *worker* right before the
    simulation starts, so a pool break can be attributed to the cells
    that were actually executing — queued-but-unstarted cells carry no
    marker and are resubmitted without a strike.
    """
    if delay > 0:
        time.sleep(delay)
    mark_running(journal_path, key, attempt)
    return _guarded_execute(job, timeout)


# ----------------------------------------------------------------------
# run_study
# ----------------------------------------------------------------------

def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None:
        # shared $REPRO_* validation (repro.envcfg): a bad value names
        # the variable and quotes the offending string
        from ..envcfg import env_int
        jobs = env_int("REPRO_STUDY_JOBS", 1,
                       what="integer worker count", error=StudyError)
    if jobs < 1:
        raise StudyError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _resolve_policy(policy: Union[RunPolicy, Dict[str, Any], None],
                    study: Study) -> RunPolicy:
    if policy is None:
        policy = study.run_policy
    if policy is None:
        return RunPolicy()
    if isinstance(policy, dict):
        return RunPolicy.from_json(policy)
    if not isinstance(policy, RunPolicy):
        raise StudyError(
            f"policy must be a RunPolicy or a dict, got "
            f"{type(policy).__name__}")
    return policy


def run_study(study: Study,
              jobs: Optional[int] = None,
              cache: Optional[str] = None,
              progress: Optional[Callable[[str], None]] = None,
              *,
              policy: Union[RunPolicy, Dict[str, Any], None] = None,
              resume: bool = False) -> ResultSet:
    """Run every cell of ``study``; returns the :class:`ResultSet`.

    ``jobs`` — process-pool width (default ``$REPRO_STUDY_JOBS`` or 1,
    i.e. in-process serial execution).  ``cache`` — result-cache
    directory (default ``$REPRO_STUDY_CACHE`` or no caching).
    ``progress`` — optional callback for one-line status messages.
    ``policy`` — a :class:`~repro.study.policy.RunPolicy` (or its JSON
    dict) overriding the study's own default policy.  ``resume`` —
    replay this study's :class:`~repro.study.journal.RunJournal`
    (requires ``cache``): completed cells are served without
    re-execution, failed/timed-out/quarantined cells re-run fresh.
    """
    jobs = _resolve_jobs(jobs)
    run_policy = _resolve_policy(policy, study)
    if cache is None:
        cache = os.environ.get("REPRO_STUDY_CACHE") or None
    if cache is not None:
        cache = os.path.abspath(os.path.expanduser(cache))
    if resume and cache is None:
        raise StudyError(
            "resume=True replays the run journal, which lives under the "
            "cache directory — pass cache=DIR (or set $REPRO_STUDY_CACHE)")

    specs = study.jobs()
    keys = [result_cache.job_key(job) for job in specs]
    slots: List[Optional[JobResult]] = [None] * len(specs)
    pending: List[int] = []
    skipped_before = result_cache.skipped_total()
    for i, job in enumerate(specs):
        outcome = result_cache.load(cache, job) if cache else None
        if outcome is not None:
            slots[i] = JobResult(job=job, value=outcome["value"],
                                 sim=outcome.get("sim", {}), cached=True)
        else:
            pending.append(i)
    skipped = result_cache.skipped_total() - skipped_before
    if progress and skipped:
        progress(f"  cache: skipped {skipped} corrupt/mismatched "
                 f"entr{'y' if skipped == 1 else 'ies'} (treated as misses)")

    # the journal lives under the cache dir; without a cache we still
    # journal (pool-break attribution needs the running markers) into
    # an ephemeral directory that cannot be resumed
    ephemeral: Optional[str] = None
    if cache is not None:
        journal_dir = os.path.join(cache, "journal")
    else:
        ephemeral = tempfile.mkdtemp(prefix="repro-study-journal-")
        journal_dir = ephemeral
    journal = RunJournal.open(journal_dir, study.name, keys, resume=resume)
    from_journal = 0
    if resume:
        prior = journal.prior_state()
        still_pending: List[int] = []
        for i in pending:
            done = prior.completed.get(keys[i])
            if done is not None:
                slots[i] = JobResult(job=specs[i], value=done["value"],
                                     sim=done.get("sim", {}), cached=True,
                                     attempts=done.get("attempts", 1))
                from_journal += 1
                if cache:  # repopulate a wiped cache from the journal
                    result_cache.store(cache, specs[i],
                                       {"value": done["value"],
                                        "sim": done.get("sim", {})})
            else:
                still_pending.append(i)
        pending = still_pending

    if progress:
        cached_n = len(specs) - len(pending) - from_journal
        progress(f"study {study.name!r}: {len(specs)} job(s), "
                 f"{cached_n} cached, "
                 + (f"{from_journal} resumed from the journal, "
                    if from_journal else "")
                 + f"{len(pending)} to run"
                 + (f" across {jobs} workers" if jobs > 1 else ""))

    try:
        if pending and jobs > 1:
            _run_pool(specs, keys, pending, jobs, run_policy, journal,
                      cache, progress, slots)
        elif pending:
            _run_serial(specs, keys, pending, run_policy, journal,
                        cache, progress, slots)
    finally:
        journal.close()
        if ephemeral is not None:
            shutil.rmtree(ephemeral, ignore_errors=True)

    results: List[JobResult] = []
    for i, slot in enumerate(slots):
        if slot is None:
            # a cell the engine never settled (e.g. abandoned when the
            # respawn budget ran dry): honest accounting, not silence
            slot = JobResult(job=specs[i], value=None, status="missing",
                             error="never executed", attempts=0)
        results.append(slot)
    rs = ResultSet(study, results)
    if progress and not rs.complete:
        progress(f"study {study.name!r}: {rs.failed} failed, "
                 f"{rs.quarantined} quarantined, {rs.missing} missing "
                 f"(of {len(rs)})")
    return rs


# ----------------------------------------------------------------------
# serial engine
# ----------------------------------------------------------------------

def _final_failure(spec: Dict[str, Any], key: str, kind: str, error: str,
                   attempts: int, policy: RunPolicy, journal: RunJournal,
                   progress) -> JobResult:
    """Record a cell's terminal failure; raise unless keep_going."""
    status = "timeout" if kind == "timeout" else "failed"
    journal.record(status, key=key, status=status, error=error,
                   attempts=attempts)
    if not policy.keep_going:
        raise StudyError(
            f"{_job_context(spec)} failed after {attempts} attempt(s): "
            f"{error}")
    if progress:
        progress(f"  FAILED {_job_context(spec)}: {error}")
    return JobResult(job=spec, value=None, status=status, error=error,
                     attempts=attempts)


def _run_serial(specs, keys, pending, policy: RunPolicy,
                journal: RunJournal, cache, progress, slots) -> None:
    for i in pending:
        attempts = 0
        failures = 0
        while True:
            attempts += 1
            if failures:
                delay = backoff_delay(policy, keys[i], failures)
                if delay > 0:
                    time.sleep(delay)
            journal.record("submitted", key=keys[i],
                           series=specs[i].get("series"),
                           x=specs[i].get("x"), attempt=attempts)
            payload = _guarded_execute(specs[i], policy.timeout)
            if payload["ok"]:
                outcome = payload["outcome"]
                slots[i] = JobResult(job=specs[i], value=outcome["value"],
                                     sim=outcome["sim"], attempts=attempts)
                journal.record("completed", key=keys[i],
                               value=outcome["value"], sim=outcome["sim"],
                               attempts=attempts)
                if cache:
                    result_cache.store(cache, specs[i], outcome)
                if progress:
                    progress(f"  done {_job_context(specs[i])}")
                break
            failures += 1
            if failures > policy.retries:
                slots[i] = _final_failure(specs[i], keys[i],
                                          payload["kind"], payload["error"],
                                          attempts, policy, journal,
                                          progress)
                break
            journal.record("retry", key=keys[i], attempt=attempts,
                           error=payload["error"])
            if progress:
                progress(f"  retry {failures}/{policy.retries} "
                         f"{_job_context(specs[i])}: {payload['error']}")


# ----------------------------------------------------------------------
# pool engine: respawn, blame, quarantine
# ----------------------------------------------------------------------

def _run_pool(specs, keys, pending, jobs, policy: RunPolicy,
              journal: RunJournal, cache, progress, slots) -> None:
    import concurrent.futures as cf
    from concurrent.futures.process import BrokenProcessPool

    # longest-processing-time-first: submit the big process counts
    # first so the pool tail is short.  Completion order does not
    # matter — results land in slots by index, and every job is
    # deterministic, so scheduling cannot perturb values.
    ready = deque(sorted(pending, key=lambda i: -specs[i]["nprocs"]))
    probation: deque = deque()   # struck cells, re-run one at a time
    attempts = {i: 0 for i in pending}   # submissions started
    failures = {i: 0 for i in pending}   # clean failures/timeouts
    strikes = {i: 0 for i in pending}    # in-flight at a pool break
    incomplete = set(pending)
    respawns_left = policy.respawn_budget
    width = min(jobs, len(pending))
    pool = cf.ProcessPoolExecutor(max_workers=width)
    futures: Dict[Any, int] = {}

    def submit(i: int) -> None:
        attempts[i] += 1
        delay = (backoff_delay(policy, keys[i], failures[i])
                 if failures[i] else 0.0)
        journal.record("submitted", key=keys[i],
                       series=specs[i].get("series"), x=specs[i].get("x"),
                       attempt=attempts[i])
        fut = pool.submit(_pool_entry, specs[i], policy.timeout,
                          journal.path, keys[i], attempts[i], delay)
        futures[fut] = i

    def pump_submissions() -> None:
        # probation cells run ALONE: one cell in flight and nothing
        # else, so the next pool break names its culprit unambiguously
        if probation:
            if not futures:
                submit(probation.popleft())
            return
        while ready:
            submit(ready.popleft())

    def settle(i: int, payload: Dict[str, Any]) -> None:
        if payload.get("ok"):
            outcome = payload["outcome"]
            slots[i] = JobResult(job=specs[i], value=outcome["value"],
                                 sim=outcome.get("sim", {}),
                                 attempts=attempts[i])
            incomplete.discard(i)
            strikes[i] = 0   # a clean completion clears suspicion
            journal.record("completed", key=keys[i],
                           value=outcome["value"],
                           sim=outcome.get("sim", {}),
                           attempts=attempts[i])
            if cache:
                result_cache.store(cache, specs[i], outcome)
            if progress:
                progress(f"  done {_job_context(specs[i])}")
            return
        failures[i] += 1
        if failures[i] <= policy.retries:
            journal.record("retry", key=keys[i], attempt=attempts[i],
                           error=payload.get("error", ""))
            if progress:
                progress(f"  retry {failures[i]}/{policy.retries} "
                         f"{_job_context(specs[i])}: "
                         f"{payload.get('error', '')}")
            ready.append(i)
            return
        slots[i] = _final_failure(specs[i], keys[i],
                                  payload.get("kind", "failed"),
                                  payload.get("error", "unknown error"),
                                  attempts[i], policy, journal, progress)
        incomplete.discard(i)

    def quarantine(i: int, why: str) -> None:
        journal.record("quarantined", key=keys[i], strikes=strikes[i],
                       attempts=attempts[i], error=why)
        if not policy.keep_going:
            raise StudyError(
                f"{_job_context(specs[i])} quarantined after "
                f"{strikes[i]} pool-breaking attempt(s): {why}")
        slots[i] = JobResult(job=specs[i], value=None,
                             status="quarantined", error=why,
                             attempts=attempts[i])
        incomplete.discard(i)
        if progress:
            progress(f"  QUARANTINED {_job_context(specs[i])}: {why}")

    try:
        while incomplete and (ready or probation or futures):
            pump_submissions()
            done, _ = cf.wait(list(futures), return_when=cf.FIRST_COMPLETED)
            broken: List[int] = []
            for fut in done:
                i = futures.pop(fut)
                exc = fut.exception()
                if exc is None:
                    settle(i, fut.result())
                elif isinstance(exc, BrokenProcessPool):
                    broken.append(i)
                else:
                    settle(i, {"ok": False, "kind": "failed",
                               "error": f"{type(exc).__name__}: {exc}"})
            if not broken:
                continue

            # the executor is dead; every remaining future resolves now
            for fut in cf.as_completed(list(futures)):
                i = futures.pop(fut)
                exc = fut.exception()
                if exc is None:
                    settle(i, fut.result())   # finished before the break
                elif isinstance(exc, BrokenProcessPool):
                    broken.append(i)
                else:
                    settle(i, {"ok": False, "kind": "failed",
                               "error": f"{type(exc).__name__}: {exc}"})
            pool.shutdown(wait=False)

            # blame: the journal's running markers name the cells that
            # were executing; queued cells resubmit without a strike
            state = RunJournal.read_state(journal.path)
            suspects = [i for i in broken
                        if state.running.get(keys[i], 0) >= attempts[i]]
            if not suspects:
                suspects = list(broken)
            for i in broken:
                if i not in suspects:
                    ready.append(i)
            for i in suspects:
                strikes[i] += 1
                why = ("worker process died while this cell was "
                       f"executing ({strikes[i]} strike(s))")
                if strikes[i] >= policy.quarantine_strikes:
                    quarantine(i, why)
                else:
                    probation.append(i)

            if not incomplete or not (ready or probation):
                break
            if respawns_left <= 0:
                why = ("worker pool kept breaking; respawn budget "
                       f"({policy.respawn_budget}) exhausted")
                if not policy.keep_going:
                    raise StudyError(f"study {_study_name(specs)}: {why}")
                for i in sorted(set(ready) | set(probation)):
                    if i in incomplete:
                        slots[i] = JobResult(job=specs[i], value=None,
                                             status="failed", error=why,
                                             attempts=attempts[i])
                        journal.record("failed", key=keys[i],
                                       status="failed", error=why,
                                       attempts=attempts[i])
                        incomplete.discard(i)
                if progress:
                    progress(f"  {why}")
                break
            respawns_left -= 1
            if progress:
                progress(f"  worker pool broke ({len(suspects)} suspect "
                         f"cell(s)); respawning, {respawns_left} "
                         f"respawn(s) left")
            pool = cf.ProcessPoolExecutor(
                max_workers=min(width, max(1, len(incomplete))))
    finally:
        pool.shutdown(wait=True, cancel_futures=True)


def _study_name(specs: Sequence[Dict[str, Any]]) -> str:
    return repr(specs[0].get("study")) if specs else "<empty>"


# ----------------------------------------------------------------------
# the imperative escape hatch
# ----------------------------------------------------------------------

def sweep_callable(worker: Callable, cfg_factory: Callable[[int], Any],
                   points: Sequence[int], machine_factory: Callable,
                   extract: Callable[[Any], float], label: str,
                   extra_args: tuple = ()):
    """Run an *arbitrary* worker at every process count, serially.

    This is the imperative pre-study sweep, kept for callables that are
    not registry apps — it cannot be parallelized or cached (closures
    don't serialize), which is exactly why declared studies are the
    primary path.
    """
    from ..bench.harness import Series

    series = Series(label)
    for p in points:
        cfg = cfg_factory(p)
        result = run(worker, p, args=(cfg,) + tuple(extra_args),
                     machine=machine_factory())
        series.points[p] = float(extract(result))
    return series
