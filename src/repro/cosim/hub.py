"""The hub protocol: ports, translator ranks, buffers, and recovery.

Three actors run the coupling (see DESIGN.md §13):

* :class:`APort` — held by each rank of simulator A's port stage.
  ``put(element)`` ships ``(producer, seq, element)`` to the rank's
  hub translator with a *synchronous* send, so an overloaded hub exerts
  real rendezvous back-pressure.  Elements stay in an un-acked replay
  buffer until the hub confirms it has safely absorbed them (drained
  **and** mirrored), which is what makes crash handoff exactly-once.

* the hub translator (:func:`hub_main`) — each of the H hub ranks runs
  receive → transform → send over an explicit double buffer: a *fill*
  buffer accepts elements (capacity ``buffer_depth``; while it is full
  and the drain side is busy the rank simply does not repost its
  receive, so producers block in rendezvous) and a daemon *drainer*
  coroutine charges the transform cost, aggregates ``scale_ratio``
  micro elements into one macro element per producer, mirrors its
  state into its successor's RMA window, forwards macro elements to
  simulator B, and only then acks the producers.

* :class:`BPort` — held by each rank of simulator B's port stage.
  ``get()`` returns macro elements, deduplicating per (hub owner,
  macro seq) so a successor's replay after a crash is invisible, and
  returns ``None`` once every hub identity it covers has terminated.

Recovery reuses the PR 5 machinery end to end: a dead hub rank is
noticed by its peers through the poisoned sentinel receive on the hub
intracommunicator, the cyclic-successor rule picks the inheritor, the
inheritor reads the state the dead rank mirrored into its window
(``Win.local`` — local loads need no epoch), consults
``FaultController.stream_terms`` for TERMs the dead rank had already
absorbed, resends the mirrored in-flight macro elements (B deduplicates)
and publishes a deterministic sha256 *replay digest* over the adopted
state so tests can golden-gate the handoff.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict, deque
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from ..simmpi.datatypes import SizedPayload
from ..simmpi.engine import EventFlag, Spawn, WaitFlag
from ..simmpi.errors import FaultSignal, ProcessFailedError, RevokedError
from ..simmpi.matching import ANY_SOURCE, ANY_TAG
from .spec import CosimError, HubSpec

__all__ = [
    "APort",
    "BPort",
    "TAG_ACK",
    "TAG_DATA",
    "TAG_TERM",
    "hub_main",
]

#: intercomm message tags
TAG_DATA = 1
TAG_ACK = 2
TAG_TERM = 3

#: bytes of bookkeeping in a mirror snapshot besides buffered elements
_MIRROR_HEADER_BYTES = 64
#: wire size of an ack / TERM control message
_CTL_BYTES = 64


def producers_of(hub_index: int, n_producers: int, hub_size: int
                 ) -> Tuple[int, ...]:
    """A-side port ranks owned by hub rank ``hub_index`` (static mod-H)."""
    return tuple(p for p in range(n_producers) if p % hub_size == hub_index)


def consumer_of(owner: int, n_consumers: int, hub_size: int) -> int:
    """B-side port rank fed by hub identity ``owner`` (block mapping)."""
    return owner * n_consumers // hub_size


def mirror_slot_bytes(spec: HubSpec, n_producers: int) -> int:
    """Window bytes reserved per hub rank for its mirrored state."""
    per_hub = max(1, (n_producers + spec.size - 1) // spec.size)
    buffered = spec.buffer_depth + (spec.scale_ratio - 1) * per_hub
    return _MIRROR_HEADER_BYTES + spec.element_bytes * buffered


def _waitany_flags(engine, flags) -> Generator[Any, Any, Tuple[int, Any]]:
    """Block until the first of ``flags`` (EventFlags / Requests) is set.

    Returns ``(index, payload)``; raises the carried error if the flag
    was poisoned by the fault controller.  Watchers are daemons so a
    flag that never fires cannot deadlock the run.
    """
    for i, f in enumerate(flags):
        if f.is_set:
            payload = f.payload
            if payload.__class__ is FaultSignal:
                raise payload.error
            return i, payload
    any_flag = EventFlag(label="cosim-waitany")

    def watcher(idx, flag):
        payload = yield WaitFlag(flag)
        if not any_flag.is_set:
            engine.set_flag(any_flag, (idx, payload))

    for i, f in enumerate(flags):
        yield Spawn(watcher(i, f), name="cosim-waitany", daemon=True)
    hit = yield WaitFlag(any_flag)
    idx, payload = hit
    if payload.__class__ is FaultSignal:
        raise payload.error
    return idx, payload


def _unwrap(data: Any) -> Any:
    return data.data if isinstance(data, SizedPayload) else data


# ----------------------------------------------------------------------
# simulator-side ports
# ----------------------------------------------------------------------
class APort:
    """Producer port of the fine-scale simulator (one per port rank)."""

    def __init__(self, inter, spec: HubSpec):
        self.inter = inter
        self.spec = spec
        self.me = inter.rank
        self.hub_size = inter.remote_size
        #: current hub translator (the static owner until it crashes)
        self.target = self.me % self.hub_size
        self.next_seq = 0
        #: seq -> element, awaiting the hub's absorbed-ack (replay set)
        self.unacked: "OrderedDict[int, Any]" = OrderedDict()
        self._send_reqs: deque = deque()
        self._ack_req = None
        #: flow-control cap: both halves of the hub's double buffer
        self.max_unacked = 2 * spec.buffer_depth
        self.replays = 0
        self.sent = 0
        self.closed = False

    # -- public ---------------------------------------------------------
    def put(self, element: Any) -> Generator[Any, Any, None]:
        """Ship one element to the hub (blocks under back-pressure)."""
        if self.closed:
            raise CosimError(
                f"put on closed co-simulation port (producer {self.me})")
        yield from self._pump(block=False)
        while len(self.unacked) >= self.max_unacked:
            yield from self._pump(block=True)
        seq = self.next_seq
        self.next_seq += 1
        self.unacked[seq] = element
        self.sent += 1
        yield from self._send_data(seq, element)

    def close(self) -> Generator[Any, Any, None]:
        """Flush (wait until every element is acked), then terminate."""
        if self.closed:
            return
        while self.unacked:
            yield from self._pump(block=True)
        ctl = self.inter.world._fault_ctl
        if ctl is not None:
            # persisted-recovery stand-in (PR 5): a successor must not
            # wait for a TERM this producer already delivered elsewhere
            ctl.note_stream_terminated(self.inter.context, TAG_TERM, self.me)
        while True:
            try:
                req = yield from self.inter.issend(
                    SizedPayload((self.me,), _CTL_BYTES),
                    dest=self.target, tag=TAG_TERM)
                yield from self.inter.wait(req)
                break
            except (ProcessFailedError, RevokedError):
                yield from self._recover()
        self.closed = True

    # -- internals ------------------------------------------------------
    def _send_data(self, seq: int, element: Any
                   ) -> Generator[Any, Any, None]:
        payload = SizedPayload((self.me, seq, element),
                               self.spec.element_bytes)
        while True:
            try:
                req = yield from self.inter.issend(
                    payload, dest=self.target, tag=TAG_DATA)
                self._send_reqs.append(req)
                return
            except (ProcessFailedError, RevokedError):
                yield from self._recover()

    def _pump(self, block: bool) -> Generator[Any, Any, None]:
        """Reap finished sends and process acks (optionally blocking)."""
        try:
            reqs = self._send_reqs
            while reqs and reqs[0].done:
                yield from self.inter.wait(reqs.popleft())
            if self._ack_req is None:
                self._ack_req = self.inter.irecv(
                    source=ANY_SOURCE, tag=TAG_ACK)
            while self._ack_req.done:
                data, _st = yield from self.inter.wait(self._ack_req)
                self._apply_ack(_unwrap(data))
                self._ack_req = self.inter.irecv(
                    source=ANY_SOURCE, tag=TAG_ACK)
            if block:
                data, _st = yield from self.inter.wait(self._ack_req)
                self._ack_req = self.inter.irecv(
                    source=ANY_SOURCE, tag=TAG_ACK)
                self._apply_ack(_unwrap(data))
        except (ProcessFailedError, RevokedError):
            yield from self._recover()

    def _apply_ack(self, payload: Any) -> None:
        _kind, up_to = payload
        unacked = self.unacked
        while unacked:
            seq = next(iter(unacked))
            if seq > up_to:
                break
            del unacked[seq]

    def _recover(self) -> Generator[Any, Any, None]:
        """A hub rank died: re-aim at the cyclic successor and replay."""
        inter = self.inter
        inter.failure_ack()
        dead = set(inter.failed_members())
        home = self.me % self.hub_size
        for k in range(self.hub_size):
            cand = (home + k) % self.hub_size
            if cand not in dead:
                self.target = cand
                break
        else:
            raise CosimError(
                f"co-simulation hub lost all {self.hub_size} translator "
                f"rank(s); producer {self.me} cannot recover")
        # salvage an ack that completed normally before the poison sweep
        req, self._ack_req = self._ack_req, None
        if req is not None and req.is_set \
                and req.payload.__class__ is not FaultSignal:
            data, _st = yield from self.inter.wait(req)
            self._apply_ack(_unwrap(data))
        # poisoned or already-matched in-flight sends are superseded by
        # the replay: the hub's per-producer watermark drops duplicates
        self._send_reqs.clear()
        self.replays += len(self.unacked)
        for seq, element in list(self.unacked.items()):
            payload = SizedPayload((self.me, seq, element),
                                   self.spec.element_bytes)
            req = yield from inter.issend(
                payload, dest=self.target, tag=TAG_DATA)
            self._send_reqs.append(req)

    def summary(self) -> Dict[str, Any]:
        return {"producer": self.me, "sent": self.sent,
                "replays": self.replays, "target": self.target}


class BPort:
    """Consumer port of the coarse-scale simulator (one per port rank)."""

    def __init__(self, inter, spec: HubSpec):
        self.inter = inter
        self.spec = spec
        self.me = inter.rank
        self.hub_size = inter.remote_size
        n = inter.size
        #: hub identities whose macro stream lands on this rank
        self.owners: Set[int] = {
            h for h in range(self.hub_size)
            if consumer_of(h, n, self.hub_size) == self.me}
        self.covered: Set[int] = set()
        #: owner -> next expected macro seq (successor-replay dedup)
        self.watermark: Dict[int, int] = {}
        self.received = 0
        self.duplicates = 0
        self.by_owner: Dict[int, int] = {}
        self._req = None

    def get(self) -> Generator[Any, Any, Optional[Any]]:
        """Next macro element, or ``None`` once all owners terminated."""
        while True:
            if self.covered >= self.owners:
                return None
            if self._req is None:
                try:
                    self._req = self.inter.irecv(
                        source=ANY_SOURCE, tag=ANY_TAG)
                except (ProcessFailedError, RevokedError):
                    self.inter.failure_ack()
                    continue
            try:
                data, st = yield from self.inter.wait(self._req)
            except (ProcessFailedError, RevokedError):
                # a hub rank died; its successor will replay — ack the
                # failure and keep listening
                self.inter.failure_ack()
                self._req = None
                continue
            self._req = None
            payload = _unwrap(data)
            if st.tag == TAG_TERM:
                _kind, owners = payload
                self.covered.update(owners)
                continue
            owner, mseq, body = payload
            expected = self.watermark.get(owner, 0)
            if mseq < expected:
                self.duplicates += 1
                continue
            self.watermark[owner] = mseq + 1
            self.received += 1
            self.by_owner[owner] = self.by_owner.get(owner, 0) + 1
            return body

    def summary(self) -> Dict[str, Any]:
        return {"consumer": self.me, "received": self.received,
                "duplicates": self.duplicates,
                "by_owner": dict(sorted(self.by_owner.items()))}


# ----------------------------------------------------------------------
# the translator rank
# ----------------------------------------------------------------------
def hub_main(hubcomm, inter_a, inter_b, win, spec: HubSpec,
             n_producers: int, n_consumers: int, slot_bytes: int
             ) -> Generator[Any, Any, Dict[str, Any]]:
    """One hub translator rank: the receive → transform → send loop.

    ``hubcomm`` is the hub intracommunicator (death detection, window
    hosting), ``inter_a``/``inter_b`` the intercommunicators toward the
    two simulators' port stages, ``win`` the mirror window allocated
    over ``hubcomm`` with ``hub_size * slot_bytes`` bytes per rank.
    """
    h = hubcomm.rank
    H = hubcomm.size
    world = hubcomm.world
    engine = world.engine
    ctl = world._fault_ctl
    my_global = hubcomm.ranks[h]

    # --- translator state (shared with the drainer via closure) -------
    my_producers: Set[int] = set(producers_of(h, n_producers, H))
    owned: List[int] = [h]          # hub identities this rank acts for
    owned_set: Set[int] = {h}
    #: producer -> next unseen micro seq (receive-side duplicate filter;
    #: counts elements still sitting un-drained in the fill buffer)
    seen: Dict[int, int] = {}
    #: producer -> next un-absorbed micro seq.  Only *drained* elements
    #: count: they are represented in the mirror (carry/pending) so a
    #: successor can stand in for them.  Acks — and therefore the
    #: producers' replay-buffer trims — never run ahead of this.
    absorbed: Dict[int, int] = {}
    carry: Dict[int, List[Any]] = {}   # producer -> partial macro accum
    macro_next: Dict[int, int] = {h: 0}
    terms: Set[int] = set()
    fill: List[Tuple[int, int, Any]] = []
    handled_deaths: Set[int] = set()
    adopted_pending = 0
    replay_digest: Optional[str] = None
    stats = {"received": 0, "duplicates": 0, "forwarded": 0, "batches": 0,
             "mirrors": 0}

    cell: Dict[str, Any] = {
        "work": EventFlag(label=("hub-work:", h)),
        "done": EventFlag(label=("hub-done:", h)),
        "batch": None, "busy": False, "stop": False,
    }

    # --- helpers -------------------------------------------------------
    def terms_covered() -> bool:
        need = my_producers - terms
        if not need:
            return True
        if ctl is not None:
            # TERMs absorbed by a rank that died afterwards are never
            # re-sent; the controller's persisted record covers them
            need -= ctl.terminated_producers(inter_a.context, TAG_TERM)
        return not need

    def next_alive_after(idx: int) -> Optional[int]:
        dead = set(hubcomm.failed_members())
        for k in range(1, H + 1):
            cand = (idx + k) % H
            if cand not in dead:
                return None if cand == idx else cand
        return None

    def aggregate(producer: int, element: Any) -> Optional[Tuple]:
        """Accumulate one micro element; a full group yields a macro."""
        acc = carry.setdefault(producer, [])
        acc.append(element)
        if len(acc) < spec.scale_ratio:
            return None
        owner = producer % H
        mseq = macro_next.get(owner, 0)
        macro_next[owner] = mseq + 1
        macro = (owner, mseq, ("macro", producer, mseq, len(acc)))
        carry[producer] = []
        return macro

    def forward(macros) -> Generator[Any, Any, None]:
        for owner, mseq, body in macros:
            dest = consumer_of(owner, n_consumers, H)
            try:
                req = yield from inter_b.issend(
                    SizedPayload((owner, mseq, body), spec.element_bytes),
                    dest=dest, tag=TAG_DATA)
                yield from inter_b.wait(req)
            except (ProcessFailedError, RevokedError):
                # consumer-side failures are outside the recovery story;
                # acknowledge and drop
                inter_b.failure_ack()
        stats["forwarded"] += len(macros)

    def mirror(pending) -> Generator[Any, Any, None]:
        """Checkpoint this translator's state into its successor's
        window (lock/put/unlock), keyed by this rank's slot offset."""
        succ = next_alive_after(h)
        if succ is None:
            return  # sole survivor / H == 1: nobody to hand off to
        snapshot = {
            "owned": tuple(owned),
            "watermark": dict(absorbed),
            "carry": {p: list(a) for p, a in carry.items() if a},
            "macro_next": dict(macro_next),
            "terms": set(terms),
            "pending": list(pending),
        }
        buffered = len(pending) + sum(len(a) for a in snapshot["carry"]
                                      .values())
        nbytes = min(_MIRROR_HEADER_BYTES
                     + spec.element_bytes * buffered, slot_bytes)
        try:
            yield from win.lock(succ)
            req = yield from win.put(snapshot, succ, offset=h * slot_bytes,
                                     nbytes=nbytes)
            yield from win.unlock(succ)
            yield from hubcomm.wait(req)
            stats["mirrors"] += 1
        except (ProcessFailedError, RevokedError):
            pass  # successor died mid-mirror; the next batch re-aims

    def send_ack(producer: int, up_to: int) -> Generator[Any, Any, None]:
        try:
            yield from inter_a.isend(
                SizedPayload(("ack", up_to), _CTL_BYTES),
                dest=producer, tag=TAG_ACK)
        except (ProcessFailedError, RevokedError):
            inter_a.failure_ack()

    def adopt(d: int) -> Generator[Any, Any, None]:
        """Inherit a dead translator's identity, buffer and producers."""
        nonlocal adopted_pending, replay_digest
        fresh = [d]
        snapshot = win.local().get(d * slot_bytes)
        if snapshot is not None:
            # the mirror may carry identities d itself had adopted
            fresh = [o for o in snapshot["owned"] if o not in owned_set]
        for o in fresh:
            owned.append(o)
            owned_set.add(o)
            my_producers.update(producers_of(o, n_producers, H))
            macro_next.setdefault(o, 0)
        pending: List[Tuple] = []
        if snapshot is not None:
            # the mirrored watermark covers exactly the dead rank's
            # drained elements: replays below it are duplicates to
            # re-ack, replays at or above it (its lost fill buffer) are
            # fresh work
            seen.update(snapshot["watermark"])
            absorbed.update(snapshot["watermark"])
            for p, acc in snapshot["carry"].items():
                carry[p] = list(acc)
            for o, mseq in snapshot["macro_next"].items():
                if macro_next.get(o, 0) < mseq:
                    macro_next[o] = mseq
            terms.update(snapshot["terms"])
            pending = list(snapshot["pending"])
        adopted_pending += len(pending)
        material = (
            tuple(sorted(fresh)),
            tuple(sorted((snapshot or {}).get("watermark", {}).items())),
            tuple(sorted((p, len(a)) for p, a in
                         (snapshot or {}).get("carry", {}).items())),
            tuple(sorted((o, m) for o, m, _b in pending)),
            tuple(sorted((snapshot or {}).get("terms", ()))),
        )
        digest = hashlib.sha256(repr(material).encode()).hexdigest()
        replay_digest = (digest if replay_digest is None else
                         hashlib.sha256(
                             (replay_digest + digest).encode()).hexdigest())
        # replay the macro elements the dead rank had not confirmed
        # forwarding; the consumer's watermark absorbs any duplicates
        yield from forward(pending)
        # producers the dead rank had acked only up to its mirror: ack
        # again from the restored watermark so their flush can finish
        for p in sorted(my_producers):
            wm = absorbed.get(p, 0)
            if wm > 0:
                yield from send_ack(p, wm - 1)

    def recover() -> Generator[Any, Any, None]:
        hubcomm.failure_ack()
        inter_a.failure_ack()
        inter_b.failure_ack()
        for d in sorted(set(hubcomm.failed_members()) - handled_deaths):
            handled_deaths.add(d)
            if next_alive_after(d) == h:
                yield from adopt(d)

    # --- the drainer (daemon coroutine: overlap receive with drain) ----
    def drainer() -> Generator[Any, Any, None]:
        while True:
            work = cell["work"]
            yield WaitFlag(work)
            if cell["stop"]:
                return
            if ctl is not None and my_global in ctl.failed:
                return  # owner crashed under us; go quiet
            batch = cell["batch"]
            nominal = spec.transform_seconds * len(batch)
            if nominal > 0:
                yield from hubcomm.compute(nominal, label="hub-transform")
            if ctl is not None and my_global in ctl.failed:
                return
            macros = []
            for producer, seq, element in batch:
                macro = aggregate(producer, element)
                if macro is not None:
                    macros.append(macro)
                if seq >= absorbed.get(producer, 0):
                    absorbed[producer] = seq + 1
            # mirror BEFORE forwarding and acking: once a producer sees
            # the ack it will never replay, so the state must already
            # be safe in the successor's window
            yield from mirror(macros)
            yield from forward(macros)
            acks: Dict[int, int] = {}
            for producer, seq, _element in batch:
                if seq > acks.get(producer, -1):
                    acks[producer] = seq
            for producer, up_to in sorted(acks.items()):
                yield from send_ack(producer, up_to)
            stats["batches"] += 1
            cell["busy"] = False
            engine.set_flag(cell["done"])

    yield Spawn(drainer(), name=f"hub-drainer-{h}", daemon=True)

    def dispatch() -> None:
        cell["batch"] = list(fill)
        del fill[:]
        cell["busy"] = True
        cell["done"] = EventFlag(label=("hub-done:", h))
        work = cell["work"]
        cell["work"] = EventFlag(label=("hub-work:", h))
        engine.set_flag(work)

    # --- the receive loop ----------------------------------------------
    # sentinel: nothing is ever sent on the hub intracomm, so this
    # wildcard receive completes only when the poison sweep cancels it —
    # a pure failure detector
    r_sent = hubcomm.irecv(source=ANY_SOURCE, tag=ANY_TAG)
    r_data = None
    while True:
        if terms_covered() and not fill and not cell["busy"]:
            break
        if not cell["busy"] and fill:
            dispatch()
            continue
        flags: List[Any] = [r_sent]
        if cell["busy"]:
            flags.append(cell["done"])
        want_recv = len(fill) < spec.buffer_depth and not terms_covered()
        if want_recv:
            if r_data is None:
                try:
                    r_data = inter_a.irecv(source=ANY_SOURCE, tag=ANY_TAG)
                except (ProcessFailedError, RevokedError):
                    yield from recover()
                    continue
            flags.append(r_data)
        try:
            idx, payload = yield from _waitany_flags(engine, flags)
        except (ProcessFailedError, RevokedError):
            yield from recover()
            if r_sent.is_set:
                r_sent = hubcomm.irecv(source=ANY_SOURCE, tag=ANY_TAG)
            continue
        hit = flags[idx]
        if hit is r_sent:  # pragma: no cover - poison path raises instead
            r_sent = hubcomm.irecv(source=ANY_SOURCE, tag=ANY_TAG)
            continue
        if hit is not r_data:
            continue  # drainer finished; loop decides what to do next
        r_data = None
        data, st = payload
        body = _unwrap(data)
        if st.tag == TAG_TERM:
            terms.add(body[0])
            continue
        producer, seq, element = body
        owner = producer % H
        if owner not in owned_set:
            # redirected traffic from a dead translator's producers can
            # outrun the sentinel poison: adopt idempotently
            yield from recover()
            if owner not in owned_set:
                yield from adopt(owner)
                handled_deaths.add(owner)
        if seq < seen.get(producer, 0):
            # a replay of something already seen.  If it was absorbed
            # (drained + mirrored) the producer still needs the ack it
            # never saw; if it is merely sitting in the fill buffer the
            # ack will come when that batch drains.
            stats["duplicates"] += 1
            done_through = absorbed.get(producer, 0)
            if done_through > 0:
                yield from send_ack(producer, done_through - 1)
            continue
        seen[producer] = seq + 1
        stats["received"] += 1
        fill.append((producer, seq, element))

    # --- drain leftovers and terminate --------------------------------
    cell["stop"] = True
    engine.set_flag(cell["work"])

    def flush_and_term(owners) -> Generator[Any, Any, None]:
        """Flush partial macro groups owned by ``owners`` and send each
        of those identities' TERM to its consumer."""
        owners_set = set(owners)
        tail = []
        for producer in sorted(carry):
            acc = carry[producer]
            if not acc or producer % H not in owners_set:
                continue
            owner = producer % H
            mseq = macro_next.get(owner, 0)
            macro_next[owner] = mseq + 1
            tail.append((owner, mseq, ("macro", producer, mseq, len(acc))))
            carry[producer] = []
        if tail:
            nominal = spec.transform_seconds * sum(t[2][3] for t in tail)
            if nominal > 0:
                yield from hubcomm.compute(nominal, label="hub-transform")
            yield from mirror(tail)
            yield from forward(tail)
        for owner in owners:
            dest = consumer_of(owner, n_consumers, H)
            try:
                req = yield from inter_b.issend(
                    SizedPayload(("term", (owner,)), _CTL_BYTES),
                    dest=dest, tag=TAG_TERM)
                yield from inter_b.wait(req)
            except (ProcessFailedError, RevokedError):
                inter_b.failure_ack()

    yield from flush_and_term(list(owned))

    record = {
        "role": "hub", "hub": h,
        "owned": tuple(owned),
        "adopted": tuple(o for o in owned if o != h),
        "adopted_pending": adopted_pending,
        "replay_digest": replay_digest,
        "terms": len(terms),
        **stats,
    }

    def refresh_record() -> None:
        record.update(
            owned=tuple(owned),
            adopted=tuple(o for o in owned if o != h),
            adopted_pending=adopted_pending,
            replay_digest=replay_digest,
            terms=len(terms),
            **stats,
        )

    def standby(sentinel) -> Generator[Any, Any, None]:
        """Daemon watcher left behind after a clean exit.

        Two things can still arrive once this rank's own producers have
        all TERMed.  A peer translator can die *after* this rank
        finished but before the failure is detected; with every
        finished rank gone, nobody would adopt the dead rank's identity
        and its producers and consumer would hang — the hubcomm
        sentinel detects that, and the cyclic successor serves the
        inherited producers to completion.  And a producer whose
        rendezvous was matched right at the crash instant re-sends a
        TERM or element this rank already has on record — the wildcard
        intercomm receive matches those strays so the producer
        unblocks, re-acking where the original ack was lost.  Either
        way the already-returned record is refreshed in place.
        """
        to_flush: List[int] = []

        def note_adoptions(before: int) -> None:
            if len(owned) > before:
                to_flush.extend(owned[before:])
                refresh_record()

        def serve_one(payload) -> Generator[Any, Any, None]:
            """One post-exit intercomm message, drained inline (the
            double buffer died with the main loop; overlap no longer
            matters here)."""
            data, st = payload
            body = _unwrap(data)
            if st.tag == TAG_TERM:
                terms.add(body[0])
                refresh_record()
                return
            producer, seq, element = body
            owner = producer % H
            if owner not in owned_set:
                # redirected traffic can outrun the sentinel poison
                before = len(owned)
                yield from recover()
                if owner not in owned_set:
                    yield from adopt(owner)
                    handled_deaths.add(owner)
                note_adoptions(before)
            if seq < seen.get(producer, 0):
                stats["duplicates"] += 1
                done_through = absorbed.get(producer, 0)
                if done_through > 0:
                    yield from send_ack(producer, done_through - 1)
                refresh_record()
                return
            seen[producer] = seq + 1
            stats["received"] += 1
            if spec.transform_seconds > 0:
                yield from hubcomm.compute(spec.transform_seconds,
                                           label="hub-transform")
            macro = aggregate(producer, element)
            macros = [macro] if macro is not None else []
            absorbed[producer] = seq + 1
            yield from mirror(macros)
            if macros:
                yield from forward(macros)
            yield from send_ack(producer, seq)
            stats["batches"] += 1
            # the engine halts the instant the last main process ends,
            # discarding whatever this daemon still had scheduled — so
            # the returned record must be current after every step, not
            # refreshed once at the end
            refresh_record()

        stray = None
        while True:
            try:
                if stray is None:
                    stray = inter_a.irecv(source=ANY_SOURCE, tag=ANY_TAG)
                idx, payload = yield from _waitany_flags(
                    engine, [sentinel, stray])
            except (ProcessFailedError, RevokedError):
                before = len(owned)
                yield from recover()
                note_adoptions(before)
                if sentinel.is_set:
                    sentinel = hubcomm.irecv(source=ANY_SOURCE,
                                             tag=ANY_TAG)
                if stray is not None and stray.is_set:
                    stray = None
            else:
                if idx == 0:
                    return  # unreachable: nothing is sent on the intracomm
                stray = None
                yield from serve_one(payload)
            if to_flush and terms_covered():
                owners = list(to_flush)
                del to_flush[:]
                yield from flush_and_term(owners)
                refresh_record()

    if ctl is not None and H > 1:
        if r_sent.is_set:
            r_sent = hubcomm.irecv(source=ANY_SOURCE, tag=ANY_TAG)
        yield Spawn(standby(r_sent), name=f"hub-standby-{h}", daemon=True)

    return record
