"""repro.cosim: coupled-simulator (hub) workloads.

Two :class:`~repro.api.StreamGraph` simulators with different time
scales exchange elements through a *hub* — a group of translator ranks
modeled after InterscaleHUB-style co-simulation middleware.  The hub
runs receive → transform → send over explicit double buffers, built on
the simulator's intercommunicators (:meth:`Comm.create_intercomm`) and
one-sided windows (:class:`~repro.simmpi.rma.Win`); a crashed hub rank
is recovered by its cyclic successor from the state it mirrored into
the successor's window.

Entry points: :meth:`repro.api.Simulation.couple` (declarative),
:func:`run_coupled` (SPMD main), and the ``cosim.hub`` registry app
(studies / the ``cosim`` catalog sweep).
"""

from .apps import CosimConfig, build_graphs, cosim_worker
from .coupling import CouplingLayout, plan_layout, run_coupled
from .hub import APort, BPort, hub_main
from .spec import CosimError, HubSpec, resolve_hub

__all__ = [
    "APort",
    "BPort",
    "CosimConfig",
    "CosimError",
    "CouplingLayout",
    "HubSpec",
    "build_graphs",
    "cosim_worker",
    "hub_main",
    "plan_layout",
    "resolve_hub",
    "run_coupled",
]
