"""Wiring two StreamGraphs and a hub into one SPMD world.

:func:`run_coupled` is the generator main of a coupled simulation.  The
world is partitioned ``[A ranks | hub ranks | B ranks]``; each side's
:class:`~repro.api.graph.StreamGraph` is compiled for its sub-world and
executed unchanged on a sub-communicator, except that the declared
*port stage* gets its body wrapped: the wrapper looks up this rank's
:class:`~repro.cosim.hub.APort` / :class:`~repro.cosim.hub.BPort` in a
process-local registry and passes it to the user body as a second
argument (``body(ctx, port)``).  Hub ranks run
:func:`~repro.cosim.hub.hub_main` instead of a graph.

All communicator construction is communication-free: sub-groups come
from ``group_from_ranks``, the two intercommunicators from
``create_intercomm`` (A's port stage ↔ hub, hub ↔ B's port stage), and
the hub's mirror window is allocated over the hub intracommunicator.
Every rank derives the same layout from ``(world size, hub spec,
nprocs_a)``, so no agreement round is paid.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional, Tuple

from ..api.graph import StreamGraph
from ..simmpi.rma import Win
from .hub import APort, BPort, hub_main, mirror_slot_bytes
from .spec import CosimError, HubSpec, resolve_hub

__all__ = [
    "CouplingLayout",
    "plan_layout",
    "run_coupled",
]

#: (id(World), global rank) -> port object, installed around execute()
_ACTIVE_PORTS: Dict[Tuple[int, int], Any] = {}

#: wrapped-and-compiled graphs, keyed by graph identity + layout; every
#: rank of a run passes the same StreamGraph objects, so this turns
#: O(P) compiles per run into O(1).  Identity keys are guarded against
#: id() reuse by keeping the graph reference in the value.
_compile_memo: Dict[tuple, tuple] = {}


def _compiled(graph: StreamGraph, port: str,
              default_body: Optional[Callable], nprocs: int):
    key = (id(graph), port, default_body is not None, nprocs)
    hit = _compile_memo.get(key)
    if hit is not None and hit[0] is graph:
        return hit[1]
    if len(_compile_memo) >= 64:
        _compile_memo.clear()
    compiled = _with_port_body(graph, port, default_body).compile(nprocs)
    _compile_memo[key] = (graph, compiled)
    return compiled


class CouplingLayout:
    """The deterministic rank partition of a coupled world."""

    def __init__(self, total: int, hub: HubSpec, graph_a: StreamGraph,
                 graph_b: StreamGraph, port_a: str, port_b: str,
                 nprocs_a: Optional[int] = None):
        hub.validate()
        stages_a = len(graph_a.stages)
        stages_b = len(graph_b.stages)
        if stages_a == 0 or stages_b == 0:
            raise CosimError("both coupled graphs need at least one stage")
        min_procs = stages_a + stages_b + hub.size
        if total < min_procs:
            raise CosimError(
                f"{total} processes cannot host a coupling of "
                f"{stages_a}-stage graph A, {stages_b}-stage graph B and "
                f"a {hub.size}-rank hub (need >= {min_procs})")
        if nprocs_a is None:
            nprocs_a = (total - hub.size) // 2
        if not stages_a <= nprocs_a <= total - hub.size - stages_b:
            raise CosimError(
                f"nprocs_a={nprocs_a} does not fit: graph A needs "
                f"[{stages_a}, {total - hub.size - stages_b}] of the "
                f"{total} processes ({hub.size} are the hub)")
        for graph, port, label in ((graph_a, port_a, "A"),
                                   (graph_b, port_b, "B")):
            names = [s.name for s in graph.stages]
            if port not in names:
                raise CosimError(
                    f"port stage {port!r} not in graph {label} "
                    f"({graph.name!r}); declared stages: {names}")
        if graph_a._stages[port_a].body is None:
            raise CosimError(
                f"graph A's port stage {port_a!r} needs a body "
                "(it drives the coupling by putting elements)")
        self.total = total
        self.hub = hub
        self.nprocs_a = nprocs_a
        self.nprocs_b = total - hub.size - nprocs_a
        self.a_ranks = tuple(range(nprocs_a))
        self.hub_ranks = tuple(range(nprocs_a, nprocs_a + hub.size))
        self.b_ranks = tuple(range(nprocs_a + hub.size, total))
        self.port_a = port_a
        self.port_b = port_b

    def port_globals(self, plan, port: str, offset: int) -> Tuple[int, ...]:
        spec = plan.groups[port]
        return tuple(range(offset + spec.first_rank,
                           offset + spec.first_rank + spec.size))


def plan_layout(total: int, hub, graph_a: StreamGraph,
                graph_b: StreamGraph, port_a: str, port_b: str,
                nprocs_a: Optional[int] = None) -> CouplingLayout:
    """Validate and resolve the rank partition without running."""
    return CouplingLayout(total, resolve_hub(hub), graph_a, graph_b,
                          port_a, port_b, nprocs_a)


def _with_port_body(graph: StreamGraph, port: str,
                    default_body: Optional[Callable]) -> StreamGraph:
    """Copy ``graph`` with the port stage's body wrapped to receive the
    registered port object as a second argument."""
    wrapped = StreamGraph(name=f"{graph.name}+port")
    for s in graph.stages:
        body = s.body
        if s.name == port:
            body = _port_wrapper(s.body if s.body is not None
                                 else default_body)
        wrapped.stage(s.name, fraction=s.fraction, size=s.size, body=body)
    for f in graph.flows:
        wrapped.flow(f.name, f.src, f.dst, operator=f.operator,
                     operator_factory=f.operator_factory, router=f.router,
                     window=f.window, element_overhead=f.element_overhead,
                     eager=f.eager, checkpoint=f.checkpoint)
    return wrapped


def _port_wrapper(user_body: Callable) -> Callable:
    def body(ctx) -> Generator[Any, Any, Any]:
        comm = ctx.world  # the coupled sub-communicator run_decoupled got
        port = _ACTIVE_PORTS[(id(comm.world), comm._global)]
        result = yield from user_body(ctx, port)
        if isinstance(port, APort) and not port.closed:
            yield from port.close()
        return result

    return body


def _default_b_body(ctx, port: BPort) -> Generator[Any, Any, Any]:
    """Drain the hub stream to exhaustion and report the counts."""
    while True:
        element = yield from port.get()
        if element is None:
            break
    return port.summary()


def run_coupled(comm, graph_a: StreamGraph, graph_b: StreamGraph,
                hub=None, *, port_a: str, port_b: str,
                nprocs_a: Optional[int] = None
                ) -> Generator[Any, Any, Dict[str, Any]]:
    """SPMD main of a coupled simulation; run it on every world rank.

    Returns this rank's record: ``{"role": "a"|"b", "record":
    StageRecord, "port": {...}}`` for simulator ranks,
    :func:`~repro.cosim.hub.hub_main`'s stats dict for hub ranks.
    """
    layout = plan_layout(comm.size, hub, graph_a, graph_b,
                         port_a, port_b, nprocs_a)
    spec = layout.hub
    compiled_a = _compiled(graph_a, port_a, None, layout.nprocs_a)
    compiled_b = _compiled(graph_b, port_b, _default_b_body,
                           layout.nprocs_b)
    a_port_globals = layout.port_globals(compiled_a.plan, port_a, 0)
    b_port_globals = layout.port_globals(compiled_b.plan, port_b,
                                         layout.nprocs_a + spec.size)
    n_producers = len(a_port_globals)
    n_consumers = len(b_port_globals)
    slot = mirror_slot_bytes(spec, n_producers)
    rank = comm.rank

    if rank in layout.hub_ranks:
        hubcomm = comm.group_from_ranks(layout.hub_ranks, name="cosim-hub")
        inter_a = comm.create_intercomm(layout.hub_ranks, a_port_globals,
                                        tag=0, name="cosim-hub/a")
        inter_b = comm.create_intercomm(layout.hub_ranks, b_port_globals,
                                        tag=1, name="cosim-hub/b")
        win = yield from Win.allocate(hubcomm, spec.size * slot)
        result = yield from hub_main(hubcomm, inter_a, inter_b, win, spec,
                                     n_producers, n_consumers, slot)
        return result

    if rank in layout.a_ranks:
        side, ranks, compiled = "a", layout.a_ranks, compiled_a
        port_globals = a_port_globals
    else:
        side, ranks, compiled = "b", layout.b_ranks, compiled_b
        port_globals = b_port_globals
    sub = comm.group_from_ranks(ranks, name=f"cosim-{side}")
    port = None
    if comm.rank in port_globals:
        inter = comm.create_intercomm(port_globals, layout.hub_ranks,
                                      tag=0 if side == "a" else 1,
                                      name=f"cosim-{side}/hub")
        port = (APort if side == "a" else BPort)(inter, spec)
        _ACTIVE_PORTS[(id(comm.world), comm._global)] = port
    try:
        record = yield from compiled.execute(sub)
    finally:
        if port is not None:
            _ACTIVE_PORTS.pop((id(comm.world), comm._global), None)
    out: Dict[str, Any] = {"role": side, "record": record}
    if port is not None:
        out["port"] = port.summary()
    return out
