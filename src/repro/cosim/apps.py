"""The ``cosim.hub`` registry workload: a canonical coupled pair.

Simulator A is a single *micro* stage whose every rank drives the
coupling — it pays a (deterministically jittered) per-step produce cost
and puts one element per step through its :class:`~repro.cosim.hub.APort`.
Simulator B is a single *macro* stage that drains its
:class:`~repro.cosim.hub.BPort` to exhaustion.  All the interesting
knobs live in the hub spec, which arrives from the study layer's
``machine.cosim`` sub-key (see :mod:`repro.study.registry`) so hub
size, buffer depth, transform cost and scale ratio are sweepable —
and cached — like any other machine axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Tuple

from ..api.graph import StreamGraph
from .coupling import run_coupled

__all__ = [
    "CosimConfig",
    "build_graphs",
    "cosim_worker",
]


@dataclass(frozen=True)
class CosimConfig:
    """Config of the canonical coupled workload (hub knobs ride in the
    hub spec, not here — they are machine axes, not app axes)."""

    nprocs: int
    elements_per_producer: int = 24
    produce_seconds: float = 0.0
    #: deterministic per-(rank, element) produce jitter amplitude
    jitter: float = 0.25
    #: A-side process count; None = half of the non-hub ranks
    nprocs_a: Optional[int] = None

    def __post_init__(self):
        if self.nprocs < 3:
            raise ValueError(
                f"cosim workload needs >= 3 ranks (A + hub + B), "
                f"got {self.nprocs}")
        if self.elements_per_producer < 1:
            raise ValueError("elements_per_producer must be >= 1")
        if self.produce_seconds < 0:
            raise ValueError("produce_seconds must be >= 0")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")


def _jitter01(rank: int, i: int) -> float:
    """Deterministic hash-noise in [0, 1) (no RNG state to carry)."""
    return ((rank * 2654435761 + i * 97003 + 12289) % 4096) / 4096.0


def build_graphs(cfg: CosimConfig) -> Tuple[StreamGraph, StreamGraph]:
    """The micro/macro pair; B's port stage uses the default drain."""

    def micro_body(ctx, port) -> Generator[Any, Any, Dict[str, Any]]:
        comm = ctx.comm
        produce = cfg.produce_seconds
        amp = cfg.jitter
        for i in range(cfg.elements_per_producer):
            if produce:
                yield from ctx.compute(
                    produce * (1.0 + amp * _jitter01(comm.rank, i)),
                    label="produce")
            yield from port.put(("m", comm.rank, i))
        return {"put": cfg.elements_per_producer}

    graph_a = StreamGraph(name="cosim-micro")
    graph_a.stage("micro", fraction=1.0, body=micro_body)
    graph_b = StreamGraph(name="cosim-macro")
    graph_b.stage("macro", fraction=1.0)
    return graph_a, graph_b


#: graphs are pure functions of the config; building once per process
#: keeps the coupled compile memo (same graph objects on every rank)
#: effective
_graph_memo: Dict[CosimConfig, Tuple[StreamGraph, StreamGraph]] = {}


def _graphs(cfg: CosimConfig) -> Tuple[StreamGraph, StreamGraph]:
    hit = _graph_memo.get(cfg)
    if hit is None:
        if len(_graph_memo) >= 64:
            _graph_memo.clear()
        hit = _graph_memo[cfg] = build_graphs(cfg)
    return hit


def cosim_worker(comm, cfg: CosimConfig, hub=None
                 ) -> Generator[Any, Any, Dict[str, Any]]:
    """Registry worker: run the coupled pair, report a flat per-rank
    record (``role``/``elapsed`` + the rank's port or hub counters)."""
    graph_a, graph_b = _graphs(cfg)
    rec = yield from run_coupled(comm, graph_a, graph_b, hub,
                                 port_a="micro", port_b="macro",
                                 nprocs_a=cfg.nprocs_a)
    if rec.get("role") == "hub":
        # return the hub's record object itself, not a copy: a standby
        # adoption after this rank finished refreshes it in place
        rec["elapsed"] = comm.time
        return rec
    out: Dict[str, Any] = {"elapsed": comm.time}
    out["role"] = "micro" if rec["role"] == "a" else "macro"
    port = rec.get("port")
    if port is not None:
        out.update(port)
    return out
