"""The coupling specification: how big the hub is and how it behaves.

A :class:`HubSpec` is the declarative knob set of a co-simulation hub
(InterscaleHUB-shaped): how many translator ranks, how deep each rank's
double buffer is, what one element costs to transform, and how many
fine-scale (micro) elements aggregate into one coarse-scale (macro)
element.  It round-trips through JSON so it can ride in a study's
machine spec (``machine.cosim.*``) and enter the cache key like every
other machine axis.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Union


class CosimError(ValueError):
    """Invalid coupling specification or coupled-graph wiring."""


@dataclass(frozen=True)
class HubSpec:
    """Parameters of the translator (hub) group between two simulators.

    size:
        Number of hub (translator) ranks.
    buffer_depth:
        Capacity of each hub rank's fill buffer.  The hub stops
        matching incoming elements while the fill buffer is at capacity
        and the drain buffer is still being transformed — rendezvous
        back-pressure then propagates to the producing simulator.
    transform_seconds:
        Modeled compute cost of transforming one element.
    scale_ratio:
        Micro elements aggregated into one macro element per producer
        (the time-scale translation: the receiving simulator advances
        once per ``scale_ratio`` steps of the sending one).
    element_bytes:
        Wire size of one element (micro and macro alike).
    """

    size: int = 2
    buffer_depth: int = 4
    transform_seconds: float = 0.0
    scale_ratio: int = 1
    element_bytes: int = 1024

    def validate(self) -> None:
        if self.size < 1:
            raise CosimError(f"hub size must be >= 1, got {self.size}")
        if self.buffer_depth < 1:
            raise CosimError(
                f"hub buffer_depth must be >= 1, got {self.buffer_depth}")
        if self.transform_seconds < 0:
            raise CosimError(
                f"hub transform_seconds must be >= 0, got "
                f"{self.transform_seconds}")
        if self.scale_ratio < 1:
            raise CosimError(
                f"hub scale_ratio must be >= 1, got {self.scale_ratio}")
        if self.element_bytes < 1:
            raise CosimError(
                f"hub element_bytes must be >= 1, got {self.element_bytes}")

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "HubSpec":
        if not isinstance(data, Mapping):
            raise CosimError(
                f"cosim spec must be a mapping of HubSpec fields, "
                f"got {type(data).__name__}")
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = sorted(set(data) - known)
        if unknown:
            raise CosimError(
                f"unknown cosim spec field(s) {unknown}; "
                f"known fields: {sorted(known)}")
        spec = cls(**dict(data))
        spec.validate()
        return spec


def resolve_hub(hub: Union[None, Mapping[str, Any], HubSpec]) -> HubSpec:
    """Accept a HubSpec, its JSON dict, or None (defaults)."""
    if hub is None:
        spec = HubSpec()
        spec.validate()
        return spec
    if isinstance(hub, HubSpec):
        hub.validate()
        return hub
    return HubSpec.from_json(hub)
