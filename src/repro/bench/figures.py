"""Per-figure experiment definitions (the paper's evaluation section).

Each ``figN_*`` function runs the full experiment and returns the
series the paper plots, scaled to the paper's parameters (e.g. a
20-iteration CG simulation is reported as the paper's 300 iterations by
linear extrapolation — per-iteration cost is stationary).

Since the study redesign the sweep figures (5-8 and the placement
family) are thin wrappers over their :mod:`repro.study.catalog`
declarations: each call builds the figure's :class:`~repro.study.
study.Study` and hands it to :func:`~repro.study.runner.run_study`, so
``REPRO_STUDY_JOBS`` / ``REPRO_STUDY_CACHE`` parallelize and cache the
whole figure suite transparently.  Fig. 2 (traces) and Fig. 3
(execution models) are not sweeps and keep their direct form.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..apps.ipic3d import IPICConfig, pcomm_decoupled, pcomm_reference
from ..simmpi.config import TopologyConfig, beskow
from ..study.catalog import (
    CG_PAPER_ITERATIONS,
    IPIC_PAPER_STEPS,
    fig5_study,
    fig6_study,
    fig7_study,
    fig8_study,
    placement_study,
)
from ..study.policy import RunPolicy
from ..study.runner import run_study
from .harness import Series

#: figure sweeps degrade rather than abort: a failed cell becomes a
#: hole in its Series (``Series.missing``) and the rest of the figure
#: still renders — callers that need a specific point get a KeyError
#: naming the failure from :meth:`Series.value`
_FIGURE_POLICY = RunPolicy(on_error="keep_going")


# ----------------------------------------------------------------------
# Fig. 5 — MapReduce weak scaling with alpha sweep
# ----------------------------------------------------------------------

def fig5_mapreduce(points: List[int],
                   alphas: Tuple[float, ...] = (0.125, 0.0625, 0.03125)
                   ) -> List[Series]:
    """Reference vs decoupled (three alphas), 2.9 TB-equivalent corpus."""
    return run_study(fig5_study(points=points, alphas=alphas),
                     policy=_FIGURE_POLICY).to_series()


# ----------------------------------------------------------------------
# Placement scenario family — colocated vs partitioned under a fat-tree
# ----------------------------------------------------------------------

def fig_placement(points: List[int], alpha: float = 0.0625,
                  topology: Optional[TopologyConfig] = None) -> List[Series]:
    """The paper's decoupling strategy as a *placement* study.

    The Fig. 5 MapReduce funnel, decoupled identically, run twice per
    process count on a contended fat-tree (radix 2 over the nodes, so
    cross-subtree streams queue on tapered uplinks): once with the
    reduce group *colocated* on its producers' nodes — every stream
    rides the intra-node shortcut — and once *partitioned* onto a
    disjoint node set — every stream climbs the tree.  Not a figure
    from the paper: the fabric/placement subsystem opens it as a new
    scenario family.
    """
    return run_study(placement_study(points=points, alpha=alpha,
                                     topology=topology),
                     policy=_FIGURE_POLICY).to_series()


# ----------------------------------------------------------------------
# Fig. 6 — CG solver weak scaling
# ----------------------------------------------------------------------

def fig6_cg(points: List[int], sim_iterations: int = 20) -> List[Series]:
    """Blocking / non-blocking / decoupled CG, 120^3 points per rank,
    reported at the paper's 300 iterations."""
    return run_study(fig6_study(points=points,
                                sim_iterations=sim_iterations),
                     policy=_FIGURE_POLICY).to_series()


# ----------------------------------------------------------------------
# Fig. 7 — iPIC3D particle communication weak scaling
# ----------------------------------------------------------------------

def fig7_pcomm(points: List[int], sim_steps: int = 8) -> List[Series]:
    """Reference forwarding vs decoupled exchange, GEM setup, reported
    at the paper's step count."""
    return run_study(fig7_study(points=points,
                                sim_steps=sim_steps),
                     policy=_FIGURE_POLICY).to_series()


# ----------------------------------------------------------------------
# Fig. 8 — iPIC3D particle I/O weak scaling
# ----------------------------------------------------------------------

def fig8_pio(points: List[int], sim_steps: int = 8) -> List[Series]:
    """Collective / shared-pointer references vs decoupled buffered I/O.

    The y-value is the *visible particle-I/O cost*: the blocking dump
    time for the references; for the decoupled run, the end-to-end time
    minus the movers' compute baseline (streaming overhead + the final
    drain tail) — the cost a user actually observes (the
    ``pio_visible`` extractor).
    """
    return run_study(fig8_study(points=points,
                                sim_steps=sim_steps),
                     policy=_FIGURE_POLICY).to_series()


# ----------------------------------------------------------------------
# Recovery figure — the Daly-style checkpoint trade-off (repro.faults)
# ----------------------------------------------------------------------

def fig_recovery(nprocs: int = 32,
                 intervals: Tuple[int, ...] = (8, 32, 128, 512),
                 crash_fractions: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8),
                 recover_interval: int = 32) -> Dict[str, List[Series]]:
    """Checkpointed stream recovery on the CG and pcomm funnels.

    Two classic trade-off curves per app:

    * **overhead vs checkpoint interval** — fault-free runs; the y-value
      is the elapsed-time overhead (seconds) over an un-checkpointed
      baseline.  Short intervals pay snapshot + ack cost constantly.
    * **time-to-recover vs crash time** — the helper group's tail rank
      crashes at a fraction of the fault-free makespan; the y-value is
      the extra elapsed time over the checkpointed fault-free run.
      Replay is bounded by the interval, but the survivors carry the
      dead rank's remaining load — later crashes leave less to carry.

    Series are keyed by checkpoint interval (elements) and crash time
    (milliseconds) respectively.
    """
    from ..faults.apps import (
        CGHaloRecoveryConfig,
        PcommRecoveryConfig,
        cg_halo_recovery,
        pcomm_recovery,
    )
    from ..simmpi.launcher import run

    overhead_series: List[Series] = []
    recover_series: List[Series] = []
    for label, worker, cfg_cls in (
            ("CG halo", cg_halo_recovery, CGHaloRecoveryConfig),
            ("pcomm", pcomm_recovery, PcommRecoveryConfig)):
        def elapsed(cfg, faults=None):
            return run(worker, nprocs, args=(cfg,), machine=beskow(),
                       faults=faults).elapsed

        base = elapsed(cfg_cls(nprocs=nprocs, checkpoint_interval=0))
        overhead = Series(f"{label} overhead",
                          meta={"baseline_s": base, "nprocs": nprocs})
        for interval in intervals:
            overhead.points[interval] = elapsed(
                cfg_cls(nprocs=nprocs, checkpoint_interval=interval)) - base
        overhead_series.append(overhead)

        cfg = cfg_cls(nprocs=nprocs, checkpoint_interval=recover_interval)
        fault_free = elapsed(cfg)
        recover = Series(f"{label} recover",
                         meta={"fault_free_s": fault_free,
                               "interval": recover_interval,
                               "nprocs": nprocs})
        for frac in crash_fractions:
            t_crash = fault_free * frac
            faults = {"events": [
                {"kind": "crash", "time": t_crash, "rank": -1}]}
            recover.points[round(t_crash * 1000)] = \
                elapsed(cfg, faults=faults) - fault_free
        recover_series.append(recover)
    return {"overhead": overhead_series, "recover": recover_series}


# ----------------------------------------------------------------------
# Co-simulation figure — hub back-pressure and crash handoff (repro.cosim)
# ----------------------------------------------------------------------

def fig_cosim(nprocs: int = 12,
              depths: Tuple[int, ...] = (1, 2, 4, 8),
              ratios: Tuple[int, ...] = (1, 2, 4),
              hub_sizes: Tuple[int, ...] = (2, 3, 4),
              crash_fraction: float = 0.5) -> Dict[str, List[Series]]:
    """The coupled micro/macro pair through a translator hub.

    Two curves:

    * **back-pressure vs buffer depth** — one series per scale ratio;
      the y-value is the coupled makespan (seconds).  Shallow double
      buffers stall the producing simulator in rendezvous whenever the
      transform is busy; deeper buffers absorb the burstiness until the
      transform itself is the bottleneck.
    * **crash handoff overhead vs hub size** — the first hub rank
      crashes mid-stream; the y-value is the extra elapsed time over
      the fault-free run of the same spec (mirror restore + un-acked
      replay on the cyclic successor).
    """
    from ..cosim import CosimConfig, HubSpec, cosim_worker
    from ..simmpi.launcher import run

    cfg = CosimConfig(nprocs=nprocs, elements_per_producer=24,
                      produce_seconds=2e-6)

    def elapsed(spec, faults=None):
        return run(cosim_worker, nprocs, args=(cfg, spec),
                   machine=beskow(), faults=faults).elapsed

    depth_series: List[Series] = []
    for ratio in ratios:
        s = Series(f"1:{ratio} scale", meta={"nprocs": nprocs})
        for depth in depths:
            s.points[depth] = elapsed(
                HubSpec(size=2, buffer_depth=depth,
                        transform_seconds=4e-6, scale_ratio=ratio))
        depth_series.append(s)

    recover = Series("hub crash overhead",
                     meta={"nprocs": nprocs,
                           "crash_fraction": crash_fraction})
    for hub_size in hub_sizes:
        spec = HubSpec(size=hub_size, buffer_depth=4,
                       transform_seconds=4e-6, scale_ratio=2)
        base = elapsed(spec)
        first_hub_rank = (nprocs - hub_size) // 2  # the layout's default
        faults = {"events": [{"kind": "crash",
                              "time": base * crash_fraction,
                              "rank": first_hub_rank}]}
        recover.points[hub_size] = elapsed(spec, faults=faults) - base
    return {"backpressure": depth_series, "recovery": [recover]}


# ----------------------------------------------------------------------
# Fig. 2 — execution traces of iPIC3D, reference vs decoupled
# ----------------------------------------------------------------------

def fig2_traces(nprocs: int = 7, steps: int = 6) -> Dict[str, object]:
    """Seven-rank traces (paper: P0-P6) of the particle phase.

    Returns both run reports plus overlap metrics: the decoupled trace
    must show mover/exchange concurrency, the reference must not.
    """
    from ..api import Simulation

    # a communication-heavy phase, as in the paper's trace (the GEM run
    # section where many particles cross subdomains)
    cfg_ref = IPICConfig(nprocs=nprocs - 1, steps=steps,
                         particles_per_rank=100_000,
                         exit_fraction_mean=0.15)
    r_ref = Simulation(nprocs - 1, machine=beskow(), trace=True).run(
        pcomm_reference, args=(cfg_ref,))
    cfg_dec = IPICConfig(nprocs=nprocs, steps=steps, alpha=1.0 / nprocs,
                         particles_per_rank=100_000,
                         exit_fraction_mean=0.15)
    r_dec = Simulation(nprocs, machine=beskow(), trace=True).run(
        pcomm_decoupled, args=(cfg_dec,))
    return {
        "reference": r_ref,
        "decoupled": r_dec,
        # fraction of particle-communication busy time hidden behind
        # concurrent computation (the Fig. 2 contrast)
        "ref_overlap": r_ref.overlap("pcomm-handle", "mover"),
        "dec_overlap": r_dec.overlap("exchange-handle", "mover"),
    }


# ----------------------------------------------------------------------
# Fig. 3 — conventional vs non-blocking vs decoupled, conceptually
# ----------------------------------------------------------------------

def fig3_execution_models(nprocs: int = 8, rounds: int = 8
                          ) -> Dict[str, float]:
    """The three execution models of Fig. 3 on a synthetic imbalanced
    two-operation application; returns each model's makespan.

    The conventional and non-blocking models are plain rank programs;
    the decoupled model is a two-stage :class:`~repro.api.graph.
    StreamGraph`, compiled for the same machine by the same
    :class:`~repro.api.simulation.Simulation` entry point.
    """
    from ..api import Simulation, StreamGraph

    work_red = 0.30     # the operation that stays on compute ranks
    work_blue = 0.07    # the operation that gets decoupled
    skew = 0.25         # per-rank, per-round imbalance of the red op
    # the dedicated group executes the operation with application-
    # specific aggregation: T'_W1 < T_W1 (Section II-D's second factor)
    work_blue_decoupled = work_blue / 3.0

    def red_seconds(rank: int, rnd: int) -> float:
        # rotating imbalance: every round some rank is the straggler,
        # but all ranks carry equal total work — the conventional model
        # pays the per-round max at each barrier, the decoupled model
        # only each rank's own (equal) sum
        level = ((rank + rnd) % nprocs) % 4
        return work_red * (1.0 + skew * level / 3.0)

    def conventional(comm):
        for rnd in range(rounds):
            yield from comm.compute(red_seconds(comm.rank, rnd), "op0")
            yield from comm.barrier()
            yield from comm.compute(work_blue, "op1")
            yield from comm.barrier()
        return comm.time

    def nonblocking(comm):
        # op1 overlapped with the *next* op0 via a spawned progress
        # coroutine, but still executed by every rank
        req = None
        for rnd in range(rounds):
            yield from comm.compute(red_seconds(comm.rank, rnd), "op0")
            if req is not None:
                yield from comm.wait(req)
            req = yield from comm.ibarrier()
            yield from comm.compute(work_blue, "op1")
        yield from comm.wait(req)
        return comm.time

    def worker_body(ctx):
        scale = nprocs / (nprocs - 1)
        with ctx.producer("results") as out:
            for rnd in range(rounds):
                yield from ctx.compute(
                    red_seconds(ctx.comm.rank, rnd) * scale, "op0")
                yield from out.send(rnd)

    def op1_body(ctx):
        def op1(element):
            yield from ctx.compute(work_blue_decoupled, "op1")

        yield from ctx.consume("results", operator=op1)

    decoupled_graph = (
        StreamGraph("fig3-decoupled")
        .stage("workers", size=nprocs - 1, body=worker_body)
        .stage("op1", size=1, body=op1_body)
        .flow("results", src="workers", dst="op1")
    )

    sim = Simulation(nprocs, machine="quiet")
    return {
        "conventional": sim.run(conventional).elapsed,
        "nonblocking": sim.run(nonblocking).elapsed,
        "decoupled": sim.run(decoupled_graph).elapsed,
    }
