"""Performance benchmarks that gate the simulator's own speed.

Where :mod:`repro.bench.figures` reproduces what the *paper* measured
(virtual time of simulated applications), this module measures the
*simulator*: how many engine events per wall-clock second the core can
drain on canonical scenarios, with the virtual-time results pinned
bit-identical to the pre-optimization slow path.

Three kinds of output:

* **events/sec accounting** — each scenario runs under wall-clock +
  ``events_fired`` accounting and reports events/sec, per-rank message
  totals and peak mailbox queue depths.
* **slow-path equivalence** — the same scenario re-runs on the
  :mod:`repro.simmpi.oracle` implementations (seed engine, linear-scan
  mailbox, dict-based network) and the virtual-time results (final
  times, per-rank finish times, message counts, per-rank values
  including stream statistics) must be *bit-identical*; ``bench perf``
  fails loudly otherwise.  Fault-free scenarios additionally run a
  **compiled** leg (:mod:`repro.compile` plan compiler) held to the
  same bit-identity bar against the fast path.
* **parallel equivalence** — fault-free scenarios run a **parallel**
  leg (:mod:`repro.parallel` conservative-lookahead scheduler, 2
  workers) held to the same bit-identity bar against the serial fast
  path.  Wall-clock speedup is reported but never gated here: the
  strict-merge engine guarantees identity on any core count, while
  speedup is hardware-dependent (``_meta`` records ``cpu_count`` and
  ``parallel_workers`` so payloads are comparable).
* **golden gating** — ``--check-golden`` compares a scenario's
  virtual-time results against a committed golden file; CI runs the
  quickstart scenario this way so a change that silently perturbs
  simulation results cannot land.  Wall-clock is always reported, never
  gated (CI machines vary).

Scenarios are deterministic by construction (noise-free machine
variants, zero chunk jitter), so the digests are stable across runs
and Python versions.
"""

from __future__ import annotations

import gc
import hashlib
import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..simmpi.config import MachineConfig, TopologyConfig, beskow
from ..simmpi.launcher import SimResult, run
from ..simmpi.oracle import SLOW_PATH

#: BENCH_perf.json schema version
SCHEMA = 2


class PerfError(RuntimeError):
    """A perf invariant failed (oracle mismatch, golden mismatch)."""


#: worker-lane count the parallel legs run with (the smallest parallel
#: configuration — identity must hold for any count, so the cheapest
#: one gates)
PARALLEL_WORKERS = 2


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------

def _quiet_beskow() -> MachineConfig:
    """The paper's platform with the noise model silenced: perf
    scenarios must be deterministic so golden results can gate CI."""
    from dataclasses import replace
    m = beskow()
    return m.with_(noise=replace(m.noise, persistent_skew=0.0,
                                 quantum_fraction=0.0))


@dataclass(frozen=True)
class Scenario:
    """One perf workload: a rank program plus its scale and platform."""

    name: str
    describe: str
    nprocs: int
    #: () -> (fn, args, machine); deferred so scenario listing is cheap
    build: Callable[[], Tuple[Callable, tuple, MachineConfig]]
    #: which slow path the oracle leg runs: "full" injects the seed
    #: engine+mailbox+network trio; "core" injects only engine+mailbox
    #: and keeps the scenario's own fabric (the seed OracleNetwork is
    #: flat-only, so topology scenarios pin the engine/matching layers
    #: instead — the same oracle-equivalence discipline, minus the
    #: network leg that cannot exist); "none" skips the oracle leg
    #: entirely (fault-injection scenarios need the fast-path engine's
    #: kill/poison primitives, which the seed engine predates — the
    #: committed golden digest is their regression gate instead)
    slow_path: str = "full"
    #: optional fault plan (JSON dict) handed to run(faults=)
    faults: Optional[Dict[str, Any]] = None


def _quickstart_build():
    """The README quickstart shape: a compute stage streams workload
    samples to a small analysis stage (decoupled running statistics)."""
    from ..api import StreamGraph
    from ..mpistream import RunningStats

    nprocs, rounds = 16, 64

    def compute_body(ctx):
        with ctx.producer("samples") as out:
            for rnd in range(rounds):
                workload = 0.01 * (1 + (ctx.comm.rank + rnd) % 4)
                yield from ctx.compute(workload, label="calculation")
                yield from out.send(workload)

    graph = (
        StreamGraph("perf-quickstart")
        .stage("compute", fraction=15 / 16, body=compute_body)
        .stage("analyze", fraction=1 / 16)
        .flow("samples", src="compute", dst="analyze", operator=RunningStats)
    )
    compiled = graph.compile(nprocs)

    def main(comm):
        record = yield from compiled.execute(comm)
        return record

    return main, (), _quiet_beskow()


def _fig5_build(nprocs: int):
    """The Fig. 5 MapReduce reduce-funnel: (1-alpha)P mappers stream
    chunk histograms into alpha*P reducers that funnel into one master
    — the paper's congestion scenario, at stream granularity 64."""
    def build():
        from ..apps.mapreduce import MapReduceConfig, decoupled_worker
        cfg = MapReduceConfig(nprocs=nprocs, nchunks=64,
                              chunk_jitter_sigma=0.0)
        return decoupled_worker, (cfg,), _quiet_beskow()
    return build


def _fig7_build():
    """The Fig. 7 iPIC3D particle-communication decoupling at 256
    ranks: movers stream exiting particles to exchange servers."""
    from ..apps.ipic3d import IPICConfig, pcomm_decoupled
    cfg = IPICConfig(nprocs=256, steps=4)
    return pcomm_decoupled, (cfg,), _quiet_beskow()


#: the fat-tree the placement scenarios contend on: radix 2 over the
#: 32-rank nodes, so 256 ranks span 8 nodes under a 3-level tree with
#: tapered uplinks — cross-subtree streams queue, intra-node ones fly
_PLACEMENT_TOPOLOGY = TopologyConfig(kind="fat_tree", radix=2)


def _fig5_placement_build(mode: str):
    """The Fig. 5 reduce funnel with the reduce group either sharing
    its producers' nodes (colocated) or exiled to a disjoint node set
    (partitioned), under the contended fat-tree.  The paper's placement
    trade-off as a perf scenario: the two must diverge measurably."""
    def build():
        from ..api import plan_placement
        from ..apps.mapreduce import MapReduceConfig, decoupled_worker
        from ..apps.mapreduce.decoupled import build_graph
        cfg = MapReduceConfig(nprocs=256, nchunks=64,
                              chunk_jitter_sigma=0.0)
        plan = build_graph(cfg).compile(cfg.nprocs).plan
        machine = _quiet_beskow().with_(
            topology=_PLACEMENT_TOPOLOGY,
            placement=plan_placement(mode, plan))
        return decoupled_worker, (cfg,), machine
    return build


def _fabric_contention_build():
    """Synthetic incast across a thin fat-tree: every rank rendezvous-
    sends to rank 0 from all subtrees, so the tapered per-level uplink
    timelines — not the NICs — set the pace.  Gated by a committed
    golden in CI so fabric-timing drift fails the build."""
    rounds, nbytes = 12, 131_072

    def main(comm):
        if comm.rank == 0:
            for _ in range(rounds * (comm.size - 1)):
                yield from comm.recv()
            return comm.time
        for rnd in range(rounds):
            req = yield from comm.isend(rnd, dest=0, nbytes=nbytes)
            yield from comm.wait(req)
        return comm.time

    machine = _quiet_beskow().with_(
        ranks_per_node=8,
        topology=TopologyConfig(kind="fat_tree", radix=2))
    return main, (), machine


def _fault_recovery_build():
    """A 64-rank CG-shaped funnel whose helper-group tail rank crashes
    mid-stream: failure detection, poison sweep, successor adoption,
    checkpoint restore and un-acked replay all sit on the measured
    path.  The committed golden digest pins the recovered virtual-time
    results — recovery drift fails CI exactly like timing drift."""
    from ..faults.apps import CGHaloRecoveryConfig, cg_halo_recovery
    cfg = CGHaloRecoveryConfig(nprocs=64, checkpoint_interval=16)
    return cg_halo_recovery, (cfg,), _quiet_beskow()


#: the fault-recovery scenario's plan: crash the last rank (helper
#: tail) at ~40% of the fault-free makespan
_FAULT_RECOVERY_PLAN = {
    "events": [{"kind": "crash", "time": 0.02, "rank": -1}],
}


def _cosim_build():
    """The coupled micro/macro pair through a 2-rank translator hub
    whose first rank crashes mid-stream: intercommunicator failure
    detection, window-mirrored buffer adoption by the cyclic successor,
    un-acked producer replay and TERM handoff all sit on the measured
    path.  The committed golden digest pins the recovered results."""
    from ..cosim.apps import CosimConfig, cosim_worker
    from ..cosim.spec import HubSpec
    cfg = CosimConfig(nprocs=24, elements_per_producer=24,
                      produce_seconds=2e-6)
    spec = HubSpec(size=2, buffer_depth=2, transform_seconds=1e-6,
                   scale_ratio=3, element_bytes=2048)
    return cosim_worker, (cfg, spec), _quiet_beskow()


#: the cosim scenario's plan: crash the first hub rank (global rank
#: nprocs_a = (24 - 2) // 2 = 11) mid-stream, while both sides are live
_COSIM_PLAN = {
    "events": [{"kind": "crash", "time": 6e-5, "rank": 11}],
}


SCENARIOS: Dict[str, Scenario] = {
    s.name: s for s in (
        Scenario("quickstart", "compute->analyze stream graph, 16 ranks",
                 16, _quickstart_build),
        Scenario("fig5-256", "MapReduce reduce funnel, 256 ranks",
                 256, _fig5_build(256)),
        Scenario("fig5-1024", "MapReduce reduce funnel, 1024 ranks",
                 1024, _fig5_build(1024)),
        Scenario("fig5-4096", "MapReduce reduce funnel, 4096 ranks",
                 4096, _fig5_build(4096)),
        Scenario("fig7-pcomm", "iPIC3D particle communication, 256 ranks",
                 256, _fig7_build),
        Scenario("fig5-placement",
                 "reduce funnel, partitioned groups on a fat-tree, 256 ranks",
                 256, _fig5_placement_build("partitioned"),
                 slow_path="core"),
        Scenario("fig5-colocated",
                 "reduce funnel, colocated groups on a fat-tree, 256 ranks",
                 256, _fig5_placement_build("colocated"),
                 slow_path="core"),
        Scenario("fabric-contention",
                 "incast over tapered fat-tree uplinks, 64 ranks",
                 64, _fabric_contention_build,
                 slow_path="core"),
        Scenario("fault-recovery",
                 "helper crash + checkpoint replay on a 64-rank funnel",
                 64, _fault_recovery_build,
                 slow_path="none", faults=_FAULT_RECOVERY_PLAN),
        Scenario("cosim",
                 "coupled hub + crashed translator rank, 24 ranks",
                 24, _cosim_build,
                 slow_path="none", faults=_COSIM_PLAN),
    )
}

#: scenarios the default `bench perf` run covers (fig5-4096 is opt-in:
#: its slow-path leg alone runs for minutes)
DEFAULT_SCENARIOS = ("quickstart", "fig5-256", "fig5-1024", "fig7-pcomm",
                     "fig5-placement", "fig5-colocated", "fabric-contention",
                     "fault-recovery", "cosim")


# ----------------------------------------------------------------------
# scenario listing (`bench perf --list`)
# ----------------------------------------------------------------------

def _golden_dir() -> str:
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    return os.path.join(root, "benchmarks", "golden")


def golden_scenarios(directory: Optional[str] = None) -> Dict[str, str]:
    """Map scenario name -> golden filename for every committed golden
    under ``benchmarks/golden`` (missing directory -> empty map)."""
    directory = directory or _golden_dir()
    out: Dict[str, str] = {}
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return out
    for fname in names:
        if not fname.endswith(".json"):
            continue
        try:
            with open(os.path.join(directory, fname)) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            continue
        scen = data.get("scenario")
        if scen:
            out[scen] = fname
    return out


def list_scenarios(golden: Optional[Dict[str, str]] = None) -> str:
    """One row per registered scenario: scale, oracle leg, fault
    injection, default-suite membership and golden gating — so nobody
    has to read this module to learn what ``--scenario`` accepts or
    which scenarios CI pins."""
    if golden is None:
        golden = golden_scenarios()
    rule = "-" * 76
    lines = ["bench perf scenarios", rule]
    header = (f"{'scenario':>17} | {'nprocs':>6} | {'slow path':>9} | "
              f"{'faults':>6} | {'suite':>7} | golden")
    lines += [header, rule]
    for name, s in SCENARIOS.items():   # registration order
        lines.append(
            f"{name:>17} | {s.nprocs:>6} | {s.slow_path:>9} | "
            f"{('yes' if s.faults else '-'):>6} | "
            f"{('default' if name in DEFAULT_SCENARIOS else 'opt-in'):>7}"
            f" | {golden.get(name, '-')}")
        lines.append(f"{'':>17} |   {s.describe}")
    lines.append(rule)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------

@dataclass
class PerfRecord:
    """One (scenario, variant) measurement."""

    scenario: str
    variant: str           # "fast" | "oracle" | "compiled" | "parallel"
    wall_s: float
    events: int
    events_per_sec: float
    virtual_elapsed: float
    messages: int
    bytes: int
    peak_posted: int
    peak_unexpected: int
    digest: str                    # sha256 of the virtual-time results
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        # `extra` stays nested so PerfRecord(**to_json()) round-trips
        # (the isolated-subprocess path relies on it)
        return dict(self.__dict__)


def _slow_path_kwargs(scenario: Scenario) -> Dict[str, Any]:
    """Injection kwargs for a scenario's oracle leg (see
    :attr:`Scenario.slow_path`)."""
    if scenario.slow_path == "full":
        return dict(SLOW_PATH)
    if scenario.slow_path == "core":
        kwargs = dict(SLOW_PATH)
        kwargs.pop("network_factory")
        return kwargs
    if scenario.slow_path == "none":
        raise PerfError(
            f"scenario {scenario.name!r} has no oracle leg (slow_path="
            "'none'); its golden digest is the regression gate")
    raise PerfError(
        f"scenario {scenario.name!r} has unknown slow_path "
        f"{scenario.slow_path!r}")


def _clear_memos() -> None:
    """Reset cross-run caches so every timed run pays its own setup —
    memoization must never flatter the second leg of a comparison."""
    from ..apps.mapreduce import common as mr_common
    from ..apps.mapreduce import decoupled as mr_decoupled
    from ..cosim import apps as cosim_apps
    from ..cosim import coupling as cosim_coupling
    from ..faults import apps as fault_apps
    from ..simmpi import topology
    from ..compile import executor as compile_executor
    from ..mpistream import channel as mp_channel
    mr_common._rank_file_memo.clear()
    mr_common._chunk_sketch_memo.clear()
    mr_decoupled._compiled_memo.clear()
    fault_apps._compiled_memo.clear()
    cosim_apps._graph_memo.clear()
    cosim_coupling._compile_memo.clear()
    topology._best_dims.cache_clear()
    topology._divisors.cache_clear()
    compile_executor._exe_memo.clear()
    mp_channel._peers_cache.clear()


def result_digest(sim: SimResult) -> str:
    """Canonical sha256 over the virtual-time results: final time,
    per-rank finish times, traffic totals and per-rank values (stream
    statistics ride inside the values' reprs).  Everything hashed is a
    pure function of the simulated execution — wall-clock never enters.
    """
    h = hashlib.sha256()
    h.update(repr(sim.elapsed).encode())
    h.update(repr(sim.finish_times).encode())
    h.update(repr((sim.nprocs, sim.messages, sim.bytes)).encode())
    for v in sim.values:
        h.update(repr(v).encode())
    return h.hexdigest()


def _mailbox_peaks(sim: SimResult) -> Tuple[int, int]:
    world = sim.extras.get("world")
    if world is None:
        return (0, 0)
    return (max(mb.peak_posted for mb in world.mailboxes),
            max(mb.peak_unexpected for mb in world.mailboxes))


#: walls under this are dominated by interpreter warm-up (allocator,
#: bytecode specialization) rather than steady-state event throughput;
#: such scenarios deepen to FAST_SCENARIO_REPEATS so best-of-N can see
#: warm runs — the cold first run then simply loses the minimum
FAST_SCENARIO_WALL = 0.1
FAST_SCENARIO_REPEATS = 5


def run_scenario(name: str, variant: str = "fast",
                 repeats: int = 1,
                 isolate: bool = False) -> PerfRecord:
    """Run one scenario under wall-clock + events accounting.

    ``repeats`` > 1 reports the best wall-clock of N runs (standard
    benchmarking practice: the minimum is the least-interfered
    measurement; the virtual-time results are identical every time by
    determinism, which is asserted).  Sub-100ms scenarios deepen
    best-of-N automatically (see :data:`FAST_SCENARIO_WALL`) so the
    interpreter's cold-start tax cannot masquerade as a regression.
    ``isolate`` runs the measurement in a fresh subprocess so one
    scenario's heap garbage cannot tax the next one's wall-clock — the
    suite uses it for every record.
    """
    if isolate:
        return _run_isolated(name, variant, repeats)
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise PerfError(f"unknown scenario {name!r}; "
                        f"choose from {sorted(SCENARIOS)}")
    if variant not in ("fast", "oracle", "compiled", "parallel"):
        raise PerfError(f"unknown variant {variant!r}")
    fn, args, machine = scenario.build()
    kwargs = _slow_path_kwargs(scenario) if variant == "oracle" else {}
    if variant == "compiled":
        if scenario.faults is not None:
            raise PerfError(
                f"scenario {name!r} injects faults; the plan compiler "
                "bypasses itself there — no compiled leg to measure")
        kwargs["compile"] = True
    if variant == "parallel":
        if scenario.faults is not None:
            raise PerfError(
                f"scenario {name!r} injects faults; the parallel "
                "scheduler bypasses itself there — no parallel leg to "
                "measure")
        kwargs["parallel"] = PARALLEL_WORKERS
    if scenario.faults is not None:
        kwargs["faults"] = scenario.faults
    wall = None
    last_digest = None
    n = max(1, repeats)
    i = 0
    while i < n:
        _clear_memos()
        gc.collect()
        t0 = time.perf_counter()
        sim = run(fn, scenario.nprocs, args=args, machine=machine, **kwargs)
        elapsed = time.perf_counter() - t0
        if i == 0 and n > 1 and elapsed < FAST_SCENARIO_WALL \
                and n < FAST_SCENARIO_REPEATS:
            n = FAST_SCENARIO_REPEATS
        if wall is None or elapsed < wall:
            wall = elapsed
        digest = result_digest(sim)
        if last_digest is not None and digest != last_digest:
            raise PerfError(
                f"scenario {name!r} is not deterministic across repeats")
        last_digest = digest
        i += 1
    peak_posted, peak_unexpected = _mailbox_peaks(sim)
    digest = last_digest
    extra: Dict[str, Any] = {}
    if variant == "parallel":
        summary = sim.extras.get("parallel")
        if summary:
            # drop non-finite stats (min_slack with no boundary traffic)
            # so the record survives a strict-JSON round trip
            import math
            extra["parallel"] = {
                k: v for k, v in summary.items()
                if not (isinstance(v, float) and not math.isfinite(v))
            }
    return PerfRecord(
        scenario=name,
        variant=variant,
        wall_s=round(wall, 6),
        events=sim.events,
        events_per_sec=round(sim.events / wall, 1) if wall > 0 else 0.0,
        virtual_elapsed=sim.elapsed,
        messages=sim.messages,
        bytes=sim.bytes,
        peak_posted=peak_posted,
        peak_unexpected=peak_unexpected,
        digest=digest,
        extra=extra,
    )


def _run_isolated(name: str, variant: str, repeats: int) -> PerfRecord:
    """Measure in a fresh interpreter; returns the child's PerfRecord."""
    import subprocess

    code = (
        "import json, sys\n"
        "from repro.bench.perf import run_scenario\n"
        "r = run_scenario(sys.argv[1], sys.argv[2], "
        "repeats=int(sys.argv[3]))\n"
        "print('PERF_RECORD ' + json.dumps(r.to_json()))\n"
    )
    src_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code, name, variant, str(repeats)],
        capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise PerfError(
            f"isolated run of {name!r}/{variant} failed:\n{proc.stderr}")
    for line in proc.stdout.splitlines():
        if line.startswith("PERF_RECORD "):
            data = json.loads(line[len("PERF_RECORD "):])
            return PerfRecord(**data)
    raise PerfError(
        f"isolated run of {name!r}/{variant} produced no record:\n"
        f"{proc.stdout}\n{proc.stderr}")


def verify_against_oracle(name: str, repeats: int = 1,
                          isolate: bool = False
                          ) -> Tuple[PerfRecord, PerfRecord]:
    """Run a scenario on both paths; raise unless the virtual-time
    results are bit-identical."""
    fast = run_scenario(name, "fast", repeats=repeats, isolate=isolate)
    oracle = run_scenario(name, "oracle", repeats=repeats, isolate=isolate)
    mismatches = [
        f"{field_}: fast={getattr(fast, field_)!r} "
        f"oracle={getattr(oracle, field_)!r}"
        for field_ in ("virtual_elapsed", "messages", "bytes", "digest")
        if getattr(fast, field_) != getattr(oracle, field_)
    ]
    if mismatches:
        raise PerfError(
            f"scenario {name!r}: fast path diverged from the "
            f"pre-optimization oracle — " + "; ".join(mismatches))
    return fast, oracle


#: virtual-time fields two legs of one scenario must agree on
_IDENTITY_FIELDS = ("virtual_elapsed", "events", "messages", "bytes",
                    "digest")


def verify_compiled(name: str, fast: PerfRecord, repeats: int = 1,
                    isolate: bool = False) -> PerfRecord:
    """Run the compiled leg; raise unless its virtual-time results are
    bit-identical to the already-measured fast (interpreted) leg."""
    compiled = run_scenario(name, "compiled", repeats=repeats,
                            isolate=isolate)
    mismatches = [
        f"{field_}: compiled={getattr(compiled, field_)!r} "
        f"interpreted={getattr(fast, field_)!r}"
        for field_ in _IDENTITY_FIELDS
        if getattr(compiled, field_) != getattr(fast, field_)
    ]
    if mismatches:
        raise PerfError(
            f"scenario {name!r}: compiled execution diverged from the "
            f"interpreted fast path — " + "; ".join(mismatches))
    return compiled


def verify_parallel(name: str, fast: PerfRecord, repeats: int = 1,
                    isolate: bool = False) -> PerfRecord:
    """Run the parallel leg; raise unless its virtual-time results are
    bit-identical to the already-measured fast (serial) leg.

    Identity, not speedup, is what gates: the strict-merge parallel
    scheduler fires the serial event sequence by construction, so any
    divergence is a scheduler bug regardless of core count.
    """
    par = run_scenario(name, "parallel", repeats=repeats, isolate=isolate)
    mismatches = [
        f"{field_}: parallel={getattr(par, field_)!r} "
        f"serial={getattr(fast, field_)!r}"
        for field_ in _IDENTITY_FIELDS
        if getattr(par, field_) != getattr(fast, field_)
    ]
    if mismatches:
        raise PerfError(
            f"scenario {name!r}: parallel execution diverged from the "
            f"serial fast path — " + "; ".join(mismatches))
    return par


def require_compiled_at_least(payload: Dict[str, Any], name: str,
                              ratio: float = 1.0) -> float:
    """Gate: the payload's compiled leg of ``name`` must reach at least
    ``ratio`` × the interpreted events/sec.  Returns the achieved
    ratio; raises :class:`PerfError` below the bar (CI uses this on
    fig5-256 so the compiler can never regress below the interpreter).
    """
    entry = payload.get("scenarios", {}).get(name)
    if not entry or "compiled" not in entry or "fast" not in entry:
        raise PerfError(
            f"payload has no compiled+fast legs for scenario {name!r}")
    got = entry["compiled"]["events_per_sec"] / \
        entry["fast"]["events_per_sec"]
    if got < ratio:
        raise PerfError(
            f"compiled leg of {name!r} reached only {got:.3f}x the "
            f"interpreted events/sec (required >= {ratio:.3f}x)")
    return got


# ----------------------------------------------------------------------
# layered profiling (--profile)
# ----------------------------------------------------------------------

#: path fragment -> layer name, checked in order
_LAYERS = (
    ("simmpi/engine", "engine"),
    ("simmpi/matching", "matching"),
    ("simmpi/network", "network"),
    ("simmpi/comm", "comm"),
    ("simmpi/collectives", "collectives"),
    ("simmpi/", "simmpi-other"),
    ("mpistream/", "mpistream"),
    ("repro/compile/", "compile"),
    ("repro/api/", "api"),
    ("repro/core/", "core"),
    ("repro/apps/", "apps"),
    ("repro/bench", "bench"),
)


def _layer_of(path: str) -> str:
    path = path.replace(os.sep, "/")
    for fragment, layer in _LAYERS:
        if fragment in path:
            return layer
    return "other"


def profile_scenario(name: str, top_n: int = 12,
                     variant: str = "fast") -> Dict[str, Any]:
    """cProfile one run; return per-layer totals and the top-N
    functions per layer by internal time.  ``variant="compiled"``
    profiles the plan-compiler execution, attributing time to the
    ``compile`` layer (passes, cursors, fused driver) alongside the
    engine and network layers."""
    import cProfile
    import pstats

    scenario = SCENARIOS[name]
    fn, args, machine = scenario.build()
    kwargs = {"compile": True} if variant == "compiled" else {}
    _clear_memos()
    gc.collect()
    profiler = cProfile.Profile()
    profiler.enable()
    run(fn, scenario.nprocs, args=args, machine=machine, **kwargs)
    profiler.disable()
    stats = pstats.Stats(profiler)
    layers: Dict[str, float] = {}
    rows: Dict[str, List[Tuple[float, str]]] = {}
    total = 0.0
    for (path, lineno, func), (_cc, ncalls, tottime, _cum, _callers) \
            in stats.stats.items():
        layer = _layer_of(path)
        layers[layer] = layers.get(layer, 0.0) + tottime
        total += tottime
        rows.setdefault(layer, []).append(
            (tottime, f"{os.path.basename(path)}:{lineno}:{func} "
                      f"({ncalls} calls)"))
    top = {
        layer: [f"{t:.4f}s {desc}"
                for t, desc in sorted(entries, reverse=True)[:top_n]]
        for layer, entries in rows.items()
    }
    return {
        "total_s": round(total, 4),
        "layers_s": {k: round(v, 4)
                     for k, v in sorted(layers.items(),
                                        key=lambda kv: -kv[1])},
        "top": top,
    }


# ----------------------------------------------------------------------
# suite + artifact
# ----------------------------------------------------------------------

def _meta() -> Dict[str, Any]:
    import platform

    from ..study.cache import code_version
    meta = {
        "schema": SCHEMA,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        # the lane count the parallel legs ran with: identity holds on
        # any hardware, but speedups only compare across payloads whose
        # cpu_count/parallel_workers agree (`--compare` warns otherwise)
        "parallel_workers": PARALLEL_WORKERS,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        # the same source digest the study cache keys on: two payloads
        # with equal code_version measured identical simulator code
        "code_version": code_version(),
    }
    try:  # best effort, absent outside a git checkout
        import subprocess
        meta["commit"] = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or None
    except Exception:
        meta["commit"] = None
    return meta


def run_suite(names: Optional[List[str]] = None,
              check_oracle: bool = True,
              profile: bool = False,
              compare: Optional[Dict[str, Any]] = None,
              repeats: int = 2) -> Dict[str, Any]:
    """Run scenarios; return the BENCH_perf payload.

    ``compare`` is a previously emitted payload (e.g. measured at an
    older commit): its per-scenario events/sec are merged in as
    ``before`` and speedups are computed against them.
    """
    names = list(names or DEFAULT_SCENARIOS)
    payload: Dict[str, Any] = {"meta": _meta(), "scenarios": {}}
    if compare is not None:
        payload["before_meta"] = compare.get("meta", {})
    for name in names:
        entry: Dict[str, Any] = {}
        if check_oracle and SCENARIOS[name].slow_path != "none":
            fast, oracle = verify_against_oracle(name, repeats=repeats,
                                                 isolate=True)
            entry["fast"] = fast.to_json()
            entry["oracle"] = oracle.to_json()
            entry["oracle_identical"] = True
            entry["speedup_vs_oracle"] = round(
                fast.events_per_sec / oracle.events_per_sec, 3)
        else:
            fast = run_scenario(name, "fast", repeats=repeats,
                                isolate=True)
            entry["fast"] = fast.to_json()
        if SCENARIOS[name].faults is None:
            compiled = verify_compiled(name, fast, repeats=repeats,
                                       isolate=True)
            entry["compiled"] = compiled.to_json()
            entry["compiled_identical"] = True
            entry["speedup_compiled_vs_fast"] = round(
                compiled.events_per_sec / fast.events_per_sec, 3)
            par = verify_parallel(name, fast, repeats=repeats,
                                  isolate=True)
            entry["parallel"] = par.to_json()
            entry["parallel_identical"] = True
            entry["speedup_parallel_vs_fast"] = round(
                par.events_per_sec / fast.events_per_sec, 3)
        if compare is not None:
            before = (compare.get("scenarios", {}).get(name, {})
                      .get("fast", compare.get("scenarios", {})
                           .get(name)))
            if before:
                entry["before"] = before
                if before.get("events_per_sec"):
                    entry["speedup_vs_before"] = round(
                        fast.events_per_sec / before["events_per_sec"], 3)
                    if "compiled" in entry:
                        entry["speedup_compiled_vs_before"] = round(
                            entry["compiled"]["events_per_sec"]
                            / before["events_per_sec"], 3)
        if profile:
            entry["profile"] = profile_scenario(name)
            if "compiled" in entry:
                entry["profile_compiled"] = profile_scenario(
                    name, variant="compiled")
        payload["scenarios"][name] = entry
    return payload


def save_payload(payload: Dict[str, Any],
                 out_dir: Optional[str] = None,
                 filename: str = "BENCH_perf.json") -> str:
    from .harness import results_dir
    directory = os.path.abspath(out_dir) if out_dir else results_dir()
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, filename)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    return path


# ----------------------------------------------------------------------
# golden gating (CI)
# ----------------------------------------------------------------------

#: virtual-time fields a golden file pins (wall-clock is never gated)
GOLDEN_FIELDS = ("virtual_elapsed", "events", "messages", "bytes", "digest")


def golden_entry(record: PerfRecord) -> Dict[str, Any]:
    return {"scenario": record.scenario,
            **{f: getattr(record, f) for f in GOLDEN_FIELDS}}


def check_golden(record: PerfRecord, golden_path: str) -> None:
    """Raise :class:`PerfError` if the scenario's virtual-time results
    differ from the committed golden file."""
    with open(golden_path) as fh:
        golden = json.load(fh)
    if golden.get("scenario") != record.scenario:
        raise PerfError(
            f"golden file {golden_path!r} pins scenario "
            f"{golden.get('scenario')!r}, not {record.scenario!r}")
    diffs = [
        f"{f}: got {getattr(record, f)!r}, golden {golden[f]!r}"
        for f in GOLDEN_FIELDS
        if f in golden and getattr(record, f) != golden[f]
    ]
    if diffs:
        raise PerfError(
            f"virtual-time results for {record.scenario!r} differ from "
            f"golden {golden_path!r} — " + "; ".join(diffs))


def write_golden(record: PerfRecord, golden_path: str) -> str:
    os.makedirs(os.path.dirname(os.path.abspath(golden_path)), exist_ok=True)
    with open(golden_path, "w") as fh:
        json.dump(golden_entry(record), fh, indent=2)
    return golden_path


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------

def render_report(payload: Dict[str, Any]) -> str:
    """Human-readable table of the payload."""
    lines = ["bench perf — simulator events/sec", "-" * 74]
    header = (f"{'scenario':>12} | {'variant':>7} | {'events':>9} | "
              f"{'wall (s)':>9} | {'events/s':>10} | {'speedup':>8}")
    lines += [header, "-" * 74]
    for name, entry in payload["scenarios"].items():
        for variant in ("before", "oracle", "fast", "compiled",
                        "parallel"):
            rec = entry.get(variant)
            if not rec:
                continue
            if variant == "fast":
                speedup = (entry.get("speedup_vs_before")
                           or entry.get("speedup_vs_oracle"))
                tag = f"{speedup:>7.2f}x" if speedup else f"{'':>8}"
            elif variant == "compiled":
                speedup = (entry.get("speedup_compiled_vs_before")
                           or entry.get("speedup_compiled_vs_fast"))
                tag = f"{speedup:>7.2f}x" if speedup else f"{'':>8}"
            elif variant == "parallel":
                speedup = entry.get("speedup_parallel_vs_fast")
                tag = f"{speedup:>7.2f}x" if speedup else f"{'':>8}"
            else:
                tag = f"{'':>8}"
            lines.append(
                f"{name:>12} | {variant:>7} | {rec['events']:>9} | "
                f"{rec['wall_s']:>9.3f} | {rec['events_per_sec']:>10.0f} | "
                f"{tag}")
        if entry.get("oracle_identical"):
            lines.append(f"{'':>12} |   virtual-time results bit-identical "
                         "to the slow-path oracle")
        if entry.get("compiled_identical"):
            lines.append(f"{'':>12} |   compiled execution bit-identical "
                         "to the interpreted fast path")
        if entry.get("parallel_identical"):
            workers = (entry.get("parallel", {}).get("extra", {})
                       .get("parallel", {}).get("workers"))
            tag = f" ({workers} lanes)" if workers else ""
            lines.append(f"{'':>12} |   parallel execution bit-identical "
                         f"to the serial fast path{tag}")
        for key, label in (("profile", "profile"),
                           ("profile_compiled", "profile(compiled)")):
            prof = entry.get(key)
            if prof:
                layers = ", ".join(f"{k}={v:.3f}s"
                                   for k, v in prof["layers_s"].items()
                                   if v >= 0.01)
                lines.append(f"{'':>12} |   {label}: {layers}")
    lines.append("-" * 74)
    return "\n".join(lines)
