"""Experiment harness: series, tables, artifacts.

The benchmark files under ``benchmarks/`` are thin: they call a figure
function from :mod:`repro.bench.figures`, print the same rows the paper
plots, persist a JSON artifact, and assert the *shape* claims
(who wins, how the gap moves with P) — never absolute numbers.

Experiment *execution* lives in :mod:`repro.study` since the study
redesign: figures are :class:`~repro.study.study.Study` declarations
run by :func:`~repro.study.runner.run_study` (parallel, cached); for
one-off callables that are not registry apps,
:func:`repro.study.sweep_callable` is the imperative escape hatch.
This module keeps the presentation pieces — :class:`Series`, tables,
artifacts.  (The deprecated ``sweep`` / ``Series.ratio_to`` shims were
removed one PR cycle after their deprecation.)
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: the paper's x-axis is 32..8192 doubling; we sweep the same range with
#: x4 steps to keep the full suite tractable (shape is preserved)
DEFAULT_POINTS = (32, 128, 512, 2048, 8192)


def scale_points() -> List[int]:
    """Sweep points, overridable via ``REPRO_POINTS=32,64,...``.

    Validation goes through :mod:`repro.envcfg`: a malformed value
    raises :class:`~repro.envcfg.EnvVarError` naming the variable and
    quoting the offending string (the ``$REPRO_STUDY_JOBS`` contract).
    """
    from ..envcfg import env_int_list
    pts = env_int_list("REPRO_POINTS",
                       what="comma-separated list of process counts")
    if pts is None:
        return list(DEFAULT_POINTS)
    return sorted(set(pts))


@dataclass
class Series:
    """One line of a figure: label -> {nprocs: seconds}.

    ``missing`` records points that were *swept but produced no value*
    (a failed/timed-out/quarantined study cell) as ``{p: reason}`` —
    they render as holes, and :meth:`value` names the failure instead
    of pretending the point was never asked for.
    """

    label: str
    points: Dict[int, float] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)
    missing: Dict[int, str] = field(default_factory=dict)

    def value(self, p: int) -> float:
        try:
            return self.points[p]
        except KeyError:
            if p in self.missing:
                raise KeyError(
                    f"series {self.label!r} has no value at P={p} — "
                    f"the job produced none ({self.missing[p]}); "
                    f"process counts with values: {self.xs}") from None
            raise KeyError(
                f"series {self.label!r} has no point P={p}; "
                f"available process counts: {self.xs}") from None

    @property
    def xs(self) -> List[int]:
        return sorted(self.points)

    def speedup_over(self, other: "Series", p: int) -> float:
        """How many times faster this series is than ``other`` at
        ``P=p``: ``other / self`` (> 1 means this one is faster —
        y-values are execution times, so smaller wins)."""
        return other.value(p) / self.value(p)


def max_elapsed(result) -> float:
    """Slowest rank's reported elapsed time (the figure metric)."""
    return max(v["elapsed"] for v in result.values)


def max_field(name: str, role: Optional[str] = None) -> Callable:
    def _extract(result) -> float:
        vals = [
            v[name] for v in result.values
            if role is None or v.get("role") == role
        ]
        return max(vals)
    return _extract


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------

def render_table(title: str, series: List[Series],
                 unit: str = "s") -> str:
    """The figure as a text table, one row per process count."""
    points = sorted({p for s in series for p in s.points})
    width = max(12, max(len(s.label) for s in series) + 2)
    header = f"{'procs':>8} | " + " | ".join(
        f"{s.label:>{width}}" for s in series)
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for p in points:
        cells = []
        for s in series:
            v = s.points.get(p)
            cells.append(f"{v:>{width}.2f}" if v is not None
                         else " " * width)
        lines.append(f"{p:>8} | " + " | ".join(cells))
    lines.append(rule)
    return "\n".join(lines)


def results_dir() -> str:
    path = os.environ.get("REPRO_RESULTS_DIR",
                          os.path.join(os.path.dirname(__file__),
                                       "..", "..", "..", "benchmarks",
                                       "results"))
    path = os.path.abspath(path)
    os.makedirs(path, exist_ok=True)
    return path


def save_artifact(name: str, series: List[Series],
                  extra: Optional[Dict[str, Any]] = None,
                  out_dir: Optional[str] = None) -> str:
    """Persist a figure's series as JSON; returns the path.

    ``out_dir`` overrides the default artifact directory (which is
    ``$REPRO_RESULTS_DIR`` or ``benchmarks/results``)."""
    payload = {
        "figure": name,
        "series": [
            # "missing" appears only when a series has holes, so
            # fault-free artifacts are byte-identical to the old format
            {"label": s.label,
             "points": {str(k): v for k, v in s.points.items()},
             "meta": s.meta,
             **({"missing": {str(k): v for k, v in s.missing.items()}}
                if s.missing else {})}
            for s in series
        ],
        "extra": extra or {},
    }
    if out_dir is not None:
        directory = os.path.abspath(out_dir)
        os.makedirs(directory, exist_ok=True)
    else:
        directory = results_dir()
    path = os.path.join(directory, f"{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    return path
