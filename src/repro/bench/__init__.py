"""Benchmark harness regenerating every figure of the paper's
evaluation (Section IV); see ``benchmarks/`` for the pytest entry
points and EXPERIMENTS.md for paper-vs-measured."""

from .figures import (
    fig2_traces,
    fig3_execution_models,
    fig5_mapreduce,
    fig6_cg,
    fig7_pcomm,
    fig8_pio,
    fig_placement,
    fig_recovery,
)
from .harness import (
    DEFAULT_POINTS,
    Series,
    max_elapsed,
    render_table,
    save_artifact,
    scale_points,
)
from .perf import (
    SCENARIOS as PERF_SCENARIOS,
    PerfError,
    PerfRecord,
    check_golden,
    run_scenario,
    run_suite,
    verify_against_oracle,
)

__all__ = [
    "DEFAULT_POINTS", "PERF_SCENARIOS", "PerfError", "PerfRecord", "Series",
    "check_golden", "fig2_traces", "fig3_execution_models", "fig5_mapreduce",
    "fig6_cg", "fig7_pcomm", "fig8_pio", "fig_placement", "fig_recovery",
    "max_elapsed", "render_table", "run_scenario", "run_suite",
    "save_artifact", "scale_points", "verify_against_oracle",
]
