"""Benchmark harness regenerating every figure of the paper's
evaluation (Section IV); see ``benchmarks/`` for the pytest entry
points and EXPERIMENTS.md for paper-vs-measured."""

from .figures import (
    fig2_traces,
    fig3_execution_models,
    fig5_mapreduce,
    fig6_cg,
    fig7_pcomm,
    fig8_pio,
)
from .harness import (
    DEFAULT_POINTS,
    Series,
    max_elapsed,
    render_table,
    save_artifact,
    scale_points,
    sweep,
)

__all__ = [
    "DEFAULT_POINTS", "Series", "fig2_traces", "fig3_execution_models",
    "fig5_mapreduce", "fig6_cg", "fig7_pcomm", "fig8_pio", "max_elapsed",
    "render_table", "save_artifact", "scale_points", "sweep",
]
