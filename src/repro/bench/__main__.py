"""``python -m repro.bench`` dispatches to the figure CLI."""

import sys

from .cli import main

sys.exit(main())
