"""Command-line entry point: ``python -m repro.bench <figure>``.

Regenerates one figure (or all) outside pytest, printing the paper's
rows and saving JSON artifacts::

    python -m repro.bench fig5 --points 32,128,512
    python -m repro.bench fig2
    python -m repro.bench fig3 --out /tmp/artifacts
    python -m repro.bench all --points 32,128
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .figures import (
    fig2_traces,
    fig3_execution_models,
    fig5_mapreduce,
    fig6_cg,
    fig7_pcomm,
    fig8_pio,
)
from .harness import DEFAULT_POINTS, Series, render_table, save_artifact

SWEEP_FIGURES = {
    "fig5": (fig5_mapreduce, "Fig. 5 - MapReduce weak scaling (s)"),
    "fig6": (fig6_cg, "Fig. 6 - CG solver weak scaling (s)"),
    "fig7": (fig7_pcomm, "Fig. 7 - particle communication (s)"),
    "fig8": (fig8_pio, "Fig. 8 - particle I/O (s)"),
}
ALL_FIGURES = ("fig2", "fig3") + tuple(SWEEP_FIGURES)


def _parse_points(text: Optional[str]) -> List[int]:
    if not text:
        return list(DEFAULT_POINTS)
    points = sorted({int(x) for x in text.split(",") if x.strip()})
    if not points:
        raise SystemExit("--points parsed to an empty list")
    return points


def run_figure(name: str, points: List[int],
               out_dir: Optional[str] = None) -> None:
    if name == "fig2":
        from ..trace import render
        out = fig2_traces()
        print("Fig. 2 (top) - reference:")
        print(render(out["reference"].tracer, width=68))
        print("\nFig. 2 (bottom) - decoupled:")
        print(render(out["decoupled"].tracer, width=68))
        print(f"\nhidden communication: ref {out['ref_overlap']:.1%} "
              f"vs dec {out['dec_overlap']:.1%}")
        return
    if name == "fig3":
        out = fig3_execution_models()
        print("Fig. 3 - execution-model makespans (s):")
        for key in ("conventional", "nonblocking", "decoupled"):
            print(f"  {key:>14}: {out[key]:.3f}")
        save_artifact("fig3_models",
                      [Series(k, points={0: v}) for k, v in out.items()],
                      out_dir=out_dir)
        return
    fn, title = SWEEP_FIGURES[name]
    series = fn(points)
    print(render_table(title, series))
    save_artifact(f"{name}_cli", series, out_dir=out_dir)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures.")
    parser.add_argument("figure", choices=ALL_FIGURES + ("all",),
                        help="which figure to regenerate")
    parser.add_argument("--points", default=None,
                        help="comma-separated process counts "
                             f"(default: {','.join(map(str, DEFAULT_POINTS))})")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="directory for JSON artifacts (default: "
                             "$REPRO_RESULTS_DIR or benchmarks/results)")
    args = parser.parse_args(argv)
    points = _parse_points(args.points)
    names = ALL_FIGURES if args.figure == "all" else (args.figure,)
    for name in names:
        run_figure(name, points, out_dir=args.out)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
