"""Command-line entry point: ``python -m repro.bench <figure|study|perf>``.

``study`` runs a catalog study — declarative, parallel, cached::

    python -m repro.bench study fig5 --jobs 4 --cache ~/.cache/repro-study
    python -m repro.bench study placement --points 32,128 --csv placement.csv
    python -m repro.bench study fig5 --cache DIR --expect-cached   # CI gate
    python -m repro.bench study fig5 --cache DIR --keep-going \
        --timeout 60 --retries 2          # survive bad cells, then
    python -m repro.bench study fig5 --cache DIR --resume   # finish holes

The ``fig*`` subcommands are kept as thin aliases over the same study
declarations: they regenerate one figure (or ``all``), printing the
paper's rows and saving JSON artifacts::

    python -m repro.bench fig5 --points 32,128,512 --jobs 4
    python -m repro.bench fig2
    python -m repro.bench fig3 --out /tmp/artifacts
    python -m repro.bench all --points 32,128

``perf`` benchmarks the *simulator* itself (events/sec, slow-path
equivalence, golden gating) and emits ``BENCH_perf.json``::

    python -m repro.bench perf                         # default suite
    python -m repro.bench perf --list                  # what's runnable
    python -m repro.bench perf --scenario fig5-1024 --profile
    python -m repro.bench perf --scenario quickstart \
        --check-golden benchmarks/golden/quickstart_perf.json
    python -m repro.bench perf --compare old_BENCH_perf.json --out .
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .figures import (
    fig2_traces,
    fig3_execution_models,
    fig_cosim,
    fig_recovery,
)
from .harness import (
    DEFAULT_POINTS,
    Series,
    render_table,
    save_artifact,
    scale_points,
)

#: CLI figure name -> title; each name is also its study-catalog key
SWEEP_FIGURES = {
    "fig5": "Fig. 5 - MapReduce weak scaling (s)",
    "fig6": "Fig. 6 - CG solver weak scaling (s)",
    "fig7": "Fig. 7 - particle communication (s)",
    "fig8": "Fig. 8 - particle I/O (s)",
    "placement": "Placement - colocated vs partitioned on a fat-tree (s)",
    "recovery": "Recovery - helper crash + replay vs fault-free (s)",
    "resilience": "Resilience - healthy sweep + one poisoned cell (s)",
    "cosim": "Co-simulation - hub sensitivity (us)",
}
ALL_FIGURES = ("fig2", "fig3", "fig_recovery",
               "fig_cosim") + tuple(SWEEP_FIGURES)


def _parse_points(text: Optional[str]) -> List[int]:
    if not text:
        # --points absent: honour $REPRO_POINTS exactly like the
        # tier-1 figure benchmarks do, else the paper's default axis
        return scale_points()
    points = sorted({int(x) for x in text.split(",") if x.strip()})
    if not points:
        raise SystemExit("--points parsed to an empty list")
    return points


def run_figure(name: str, points: List[int],
               out_dir: Optional[str] = None,
               jobs: Optional[int] = None,
               cache: Optional[str] = None) -> None:
    if name == "fig2":
        from ..trace import render
        out = fig2_traces()
        print("Fig. 2 (top) - reference:")
        print(render(out["reference"].tracer, width=68))
        print("\nFig. 2 (bottom) - decoupled:")
        print(render(out["decoupled"].tracer, width=68))
        print(f"\nhidden communication: ref {out['ref_overlap']:.1%} "
              f"vs dec {out['dec_overlap']:.1%}")
        return
    if name == "fig3":
        out = fig3_execution_models()
        print("Fig. 3 - execution-model makespans (s):")
        for key in ("conventional", "nonblocking", "decoupled"):
            print(f"  {key:>14}: {out[key]:.3f}")
        save_artifact("fig3_models",
                      [Series(k, points={0: v}) for k, v in out.items()],
                      out_dir=out_dir)
        return
    if name == "fig_recovery":
        out = fig_recovery()
        print("Recovery - checkpoint overhead vs interval (extra s, "
              "fault-free):")
        for s in out["overhead"]:
            row = ", ".join(f"{k}: {v:.4f}" for k, v in
                            sorted(s.points.items()))
            print(f"  {s.label:>16}: {row}")
        print("Recovery - time-to-recover vs crash time (extra s over "
              "checkpointed fault-free; keys are crash ms):")
        for s in out["recover"]:
            row = ", ".join(f"{k}ms: {v:.4f}" for k, v in
                            sorted(s.points.items()))
            print(f"  {s.label:>16}: {row}")
        save_artifact("fig_recovery",
                      out["overhead"] + out["recover"], out_dir=out_dir)
        return
    if name == "fig_cosim":
        out = fig_cosim()
        print("Co-simulation - coupled makespan vs hub buffer depth (s):")
        for s in out["backpressure"]:
            row = ", ".join(f"d={k}: {v:.6f}" for k, v in
                            sorted(s.points.items()))
            print(f"  {s.label:>16}: {row}")
        print("Co-simulation - crash handoff overhead vs hub size "
              "(extra s over fault-free):")
        for s in out["recovery"]:
            row = ", ".join(f"H={k}: {v:.6f}" for k, v in
                            sorted(s.points.items()))
            print(f"  {s.label:>16}: {row}")
        save_artifact("fig_cosim",
                      out["backpressure"] + out["recovery"], out_dir=out_dir)
        return
    # a sweep figure: run its study-catalog declaration
    from ..study import get_study, run_study

    rs = run_study(get_study(name, points=points), jobs=jobs, cache=cache)
    print(render_table(SWEEP_FIGURES[name], rs.to_series()))
    save_artifact(f"{name}_cli", rs.to_series(), out_dir=out_dir)


def list_studies() -> str:
    """One line per catalog study: name, title, and its axes."""
    from ..study.catalog import CATALOG, get_study

    lines = []
    for name in sorted(CATALOG):
        study = get_study(name)
        axes = ", ".join(
            f"{axis}[{len(values)}]={list(values)}"
            for axis, values in study.axes.items())
        lines.append(f"{name:>12}  {study.title}")
        lines.append(f"{'':>12}  axes: {axes}")
    return "\n".join(lines)


def run_study_cmd(args) -> int:
    """The ``study`` subcommand: run one catalog study end to end."""
    from ..study import StudyError, get_study, run_study
    from ..study.catalog import CATALOG

    if args.list:
        if args.name:
            raise SystemExit("--list enumerates the catalog; it does not "
                             "take a study name")
        print(list_studies())
        return 0
    catalog = ", ".join(sorted(CATALOG))
    if not args.name:
        raise SystemExit(
            f"the 'study' command needs a study name; catalog: {catalog}")
    if args.name not in CATALOG:
        raise SystemExit(
            f"unknown study {args.name!r}; catalog: {catalog}")
    if args.expect_cached and not (args.cache
                                   or os.environ.get("REPRO_STUDY_CACHE")):
        raise SystemExit(
            "--expect-cached asserts a warm cache; give --cache DIR "
            "(or set $REPRO_STUDY_CACHE)")
    if args.resume and not (args.cache
                            or os.environ.get("REPRO_STUDY_CACHE")):
        raise SystemExit(
            "--resume reads the run journal kept under the cache dir; "
            "give --cache DIR (or set $REPRO_STUDY_CACHE)")
    # --points absent: pass None so each study keeps its own default
    # axis (the fig studies default to scale_points(); cosim's default
    # is deliberately small — its sweep is 16 cells per point)
    study = get_study(
        args.name,
        points=_parse_points(args.points) if args.points else None)
    # only build a policy when a flag asks for one, so the study's own
    # declared policy (e.g. the resilience study's keep_going) applies
    policy = None
    if args.keep_going or args.timeout is not None or args.retries is not None:
        from ..study import RunPolicy
        policy = RunPolicy(
            timeout=args.timeout,
            retries=args.retries if args.retries is not None else 0,
            on_error="keep_going" if args.keep_going else "raise")
    try:
        rs = run_study(study, jobs=args.jobs, cache=args.cache,
                       progress=print, policy=policy, resume=args.resume)
    except StudyError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(rs.table())
    print(f"jobs: {len(rs)} total, {rs.executed} executed, "
          f"{rs.cached} cached, {rs.failed} failed, "
          f"{rs.quarantined} quarantined, {rs.missing} missing")
    for r in rs.failures():
        print(f"  {r.series} @ P={r.x}: {r.describe_failure()} "
              f"({r.attempts} attempt(s))")
    path = save_artifact(
        f"{study.name}_study", rs.to_series(),
        extra={"total": len(rs), "executed": rs.executed,
               "cached": rs.cached, "failed": rs.failed,
               "quarantined": rs.quarantined, "missing": rs.missing},
        out_dir=args.out)
    print(f"artifact: {path}")
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(rs.to_csv())
        print(f"csv: {args.csv}")
    if args.expect_cached and rs.executed:
        print(f"FAIL: expected a fully cached run, but {rs.executed} "
              f"job(s) executed simulations", file=sys.stderr)
        return 1
    return 0


def run_perf(args) -> int:
    """The ``perf`` subcommand: simulator events/sec + regression gate."""
    import json

    from . import perf

    if args.list:
        if args.scenario or args.check_golden or args.write_golden \
                or args.profile or args.compare:
            raise SystemExit("--list enumerates the perf scenarios; it "
                             "does not run anything")
        print(perf.list_scenarios())
        return 0

    if args.scenario:
        names = []
        for chunk in args.scenario:
            names.extend(x.strip() for x in chunk.split(",") if x.strip())
        if "all" in names:
            names = list(perf.DEFAULT_SCENARIOS)
    else:
        names = list(perf.DEFAULT_SCENARIOS)
    unknown = [n for n in names if n not in perf.SCENARIOS]
    if unknown:
        raise SystemExit(f"unknown scenario(s) {unknown}; choose from "
                         f"{sorted(perf.SCENARIOS)}")

    if args.check_golden or args.write_golden:
        if len(names) != 1:
            raise SystemExit("golden check/write needs exactly one "
                             "--scenario")
        if args.profile or args.no_oracle or args.compare or args.out \
                or args.require_compiled_speedup:
            raise SystemExit(
                "--check-golden/--write-golden run a single gating "
                "measurement; they cannot be combined with --profile, "
                "--no-oracle, --compare, --out or "
                "--require-compiled-speedup")
        record = perf.run_scenario(names[0], args.variant)
        print(f"{names[0]} [{args.variant}]: {record.events} events in "
              f"{record.wall_s:.3f}s = {record.events_per_sec:.0f} "
              "events/s (wall-clock reported, not gated)")
        if args.write_golden:
            path = perf.write_golden(record, args.write_golden)
            print(f"golden virtual-time results written to {path}")
            return 0
        try:
            perf.check_golden(record, args.check_golden)
        except perf.PerfError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        print(f"golden check OK: virtual-time results match "
              f"{args.check_golden}")
        return 0

    compare = None
    if args.compare:
        with open(args.compare) as fh:
            compare = json.load(fh)
        # wall-clock comparisons only mean something on like hardware;
        # warn (never fail — identity gates are hardware-independent)
        before_cpus = compare.get("meta", {}).get("cpu_count")
        if before_cpus is not None and before_cpus != os.cpu_count():
            print(f"warning: --compare baseline was measured on "
                  f"{before_cpus} cores but this machine has "
                  f"{os.cpu_count()}; before/after speedups are not "
                  "apples to apples", file=sys.stderr)
    try:
        payload = perf.run_suite(names,
                                 check_oracle=not args.no_oracle,
                                 profile=args.profile,
                                 compare=compare)
    except perf.PerfError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(perf.render_report(payload))
    if args.require_compiled_speedup:
        for spec in args.require_compiled_speedup:
            name, _, ratio = spec.partition(":")
            try:
                got = perf.require_compiled_at_least(
                    payload, name, float(ratio) if ratio else 1.0)
            except perf.PerfError as exc:
                print(f"FAIL: {exc}", file=sys.stderr)
                return 1
            print(f"compiled-speedup gate OK: {name} at {got:.3f}x "
                  "the interpreted events/sec")
    path = perf.save_payload(payload, out_dir=args.out)
    print(f"\nartifact: {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures, run a declarative "
                    "study, or benchmark the simulator itself (perf).")
    parser.add_argument("figure",
                        choices=ALL_FIGURES + ("all", "perf", "study"),
                        help="which figure to regenerate, 'study' to run "
                             "a catalog study by name, or 'perf' for the "
                             "simulator benchmark suite")
    parser.add_argument("name", nargs="?", default=None,
                        help="study name (only with the 'study' command)")
    parser.add_argument("--points", default=None,
                        help="comma-separated process counts (default: "
                             "$REPRO_POINTS if set, else "
                             f"{','.join(map(str, DEFAULT_POINTS))})")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="directory for JSON artifacts (default: "
                             "$REPRO_RESULTS_DIR or benchmarks/results)")
    study_group = parser.add_argument_group(
        "study options (--jobs/--cache are also honoured by the "
        "fig*/all aliases; --csv/--expect-cached are study-only)")
    study_group.add_argument("--jobs", type=int, default=None, metavar="N",
                             help="process-pool width for study jobs "
                                  "(default: $REPRO_STUDY_JOBS or 1)")
    study_group.add_argument("--cache", default=None, metavar="DIR",
                             help="content-addressed result cache "
                                  "(default: $REPRO_STUDY_CACHE or none)")
    study_group.add_argument("--csv", default=None, metavar="FILE",
                             help="also export the study results as CSV "
                                  "(study command only)")
    study_group.add_argument("--list", action="store_true",
                             help="with 'study': list the catalog studies "
                                  "with their axes; with 'perf': list the "
                                  "perf scenarios with their scale, "
                                  "slow-path/fault legs and golden gating")
    study_group.add_argument("--expect-cached", action="store_true",
                             help="exit 1 unless every job was served "
                                  "from the cache (CI gate: a warm rerun "
                                  "must do zero simulation work; study "
                                  "command only)")
    study_group.add_argument("--keep-going", action="store_true",
                             help="record failed/timed-out cells as holes "
                                  "and finish the sweep instead of "
                                  "aborting on the first failure "
                                  "(study command only)")
    study_group.add_argument("--timeout", type=float, default=None,
                             metavar="S",
                             help="per-job wall-clock timeout in seconds "
                                  "(study command only)")
    study_group.add_argument("--retries", type=int, default=None,
                             metavar="N",
                             help="retry each failed/timed-out job up to "
                                  "N times with exponential backoff "
                                  "(study command only)")
    study_group.add_argument("--resume", action="store_true",
                             help="resume from the previous run's journal "
                                  "under the cache dir: completed cells "
                                  "are served without re-execution, only "
                                  "failed/timed-out/quarantined cells "
                                  "re-run (needs --cache; study command "
                                  "only)")
    perf_group = parser.add_argument_group("perf options")
    perf_group.add_argument("--scenario", action="append", default=None,
                            metavar="NAME",
                            help="perf scenario (repeatable or "
                                 "comma-separated; default: the standard "
                                 "suite; 'all' for the same)")
    perf_group.add_argument("--profile", action="store_true",
                            help="attach per-layer cProfile top-N to each "
                                 "scenario")
    perf_group.add_argument("--no-oracle", action="store_true",
                            help="skip the slow-path equivalence runs "
                                 "(faster, but no bit-identical check)")
    perf_group.add_argument("--compare", default=None, metavar="FILE",
                            help="older BENCH_perf.json to compute "
                                 "before/after speedups against")
    perf_group.add_argument("--check-golden", default=None, metavar="FILE",
                            help="compare one scenario's virtual-time "
                                 "results against a committed golden file "
                                 "(exit 1 on drift)")
    perf_group.add_argument("--write-golden", default=None, metavar="FILE",
                            help="write the golden file for one scenario")
    perf_group.add_argument("--variant", default="fast",
                            choices=("fast", "compiled", "parallel"),
                            help="execution variant for golden check/write "
                                 "(compiled and parallel must match the "
                                 "same golden — both are bit-identical)")
    perf_group.add_argument("--require-compiled-speedup", action="append",
                            default=None, metavar="NAME[:RATIO]",
                            help="after the suite, exit 1 unless the "
                                 "compiled leg of NAME reached at least "
                                 "RATIO (default 1.0) x the interpreted "
                                 "events/sec (repeatable)")
    args = parser.parse_args(argv)
    if args.figure == "perf":
        return run_perf(args)
    if args.figure == "study":
        return run_study_cmd(args)
    if args.name is not None:
        raise SystemExit(
            f"unexpected argument {args.name!r}: only the 'study' "
            "command takes a name")
    if (args.csv or args.expect_cached or args.list or args.keep_going
            or args.timeout is not None or args.retries is not None
            or args.resume):
        # refuse rather than silently ignore: a no-op --expect-cached
        # would green-light a broken cache gate, and a silently dropped
        # --keep-going would turn a partial-results request into an
        # abort-on-first-failure run
        raise SystemExit(
            "--csv/--expect-cached/--list/--keep-going/--timeout/"
            "--retries/--resume only apply to the 'study' command")
    points = _parse_points(args.points)
    names = ALL_FIGURES if args.figure == "all" else (args.figure,)
    for name in names:
        run_figure(name, points, out_dir=args.out, jobs=args.jobs,
                   cache=args.cache)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
