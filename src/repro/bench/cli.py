"""Command-line entry point: ``python -m repro.bench <figure|perf>``.

Regenerates one figure (or all) outside pytest, printing the paper's
rows and saving JSON artifacts::

    python -m repro.bench fig5 --points 32,128,512
    python -m repro.bench fig2
    python -m repro.bench fig3 --out /tmp/artifacts
    python -m repro.bench all --points 32,128

``perf`` benchmarks the *simulator* itself (events/sec, slow-path
equivalence, golden gating) and emits ``BENCH_perf.json``::

    python -m repro.bench perf                         # default suite
    python -m repro.bench perf --scenario fig5-1024 --profile
    python -m repro.bench perf --scenario quickstart \
        --check-golden benchmarks/golden/quickstart_perf.json
    python -m repro.bench perf --compare old_BENCH_perf.json --out .
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .figures import (
    fig2_traces,
    fig3_execution_models,
    fig5_mapreduce,
    fig6_cg,
    fig7_pcomm,
    fig8_pio,
    fig_placement,
)
from .harness import (
    DEFAULT_POINTS,
    Series,
    render_table,
    save_artifact,
    scale_points,
)

SWEEP_FIGURES = {
    "fig5": (fig5_mapreduce, "Fig. 5 - MapReduce weak scaling (s)"),
    "fig6": (fig6_cg, "Fig. 6 - CG solver weak scaling (s)"),
    "fig7": (fig7_pcomm, "Fig. 7 - particle communication (s)"),
    "fig8": (fig8_pio, "Fig. 8 - particle I/O (s)"),
    "placement": (fig_placement,
                  "Placement - colocated vs partitioned on a fat-tree (s)"),
}
ALL_FIGURES = ("fig2", "fig3") + tuple(SWEEP_FIGURES)


def _parse_points(text: Optional[str]) -> List[int]:
    if not text:
        # --points absent: honour $REPRO_POINTS exactly like the
        # tier-1 figure benchmarks do, else the paper's default axis
        return scale_points()
    points = sorted({int(x) for x in text.split(",") if x.strip()})
    if not points:
        raise SystemExit("--points parsed to an empty list")
    return points


def run_figure(name: str, points: List[int],
               out_dir: Optional[str] = None) -> None:
    if name == "fig2":
        from ..trace import render
        out = fig2_traces()
        print("Fig. 2 (top) - reference:")
        print(render(out["reference"].tracer, width=68))
        print("\nFig. 2 (bottom) - decoupled:")
        print(render(out["decoupled"].tracer, width=68))
        print(f"\nhidden communication: ref {out['ref_overlap']:.1%} "
              f"vs dec {out['dec_overlap']:.1%}")
        return
    if name == "fig3":
        out = fig3_execution_models()
        print("Fig. 3 - execution-model makespans (s):")
        for key in ("conventional", "nonblocking", "decoupled"):
            print(f"  {key:>14}: {out[key]:.3f}")
        save_artifact("fig3_models",
                      [Series(k, points={0: v}) for k, v in out.items()],
                      out_dir=out_dir)
        return
    fn, title = SWEEP_FIGURES[name]
    series = fn(points)
    print(render_table(title, series))
    save_artifact(f"{name}_cli", series, out_dir=out_dir)


def run_perf(args) -> int:
    """The ``perf`` subcommand: simulator events/sec + regression gate."""
    import json

    from . import perf

    if args.scenario:
        names = []
        for chunk in args.scenario:
            names.extend(x.strip() for x in chunk.split(",") if x.strip())
        if "all" in names:
            names = list(perf.DEFAULT_SCENARIOS)
    else:
        names = list(perf.DEFAULT_SCENARIOS)
    unknown = [n for n in names if n not in perf.SCENARIOS]
    if unknown:
        raise SystemExit(f"unknown scenario(s) {unknown}; choose from "
                         f"{sorted(perf.SCENARIOS)}")

    if args.check_golden or args.write_golden:
        if len(names) != 1:
            raise SystemExit("golden check/write needs exactly one "
                             "--scenario")
        if args.profile or args.no_oracle or args.compare or args.out:
            raise SystemExit(
                "--check-golden/--write-golden run a single gating "
                "measurement; they cannot be combined with --profile, "
                "--no-oracle, --compare or --out")
        record = perf.run_scenario(names[0], "fast")
        print(f"{names[0]}: {record.events} events in "
              f"{record.wall_s:.3f}s = {record.events_per_sec:.0f} "
              "events/s (wall-clock reported, not gated)")
        if args.write_golden:
            path = perf.write_golden(record, args.write_golden)
            print(f"golden virtual-time results written to {path}")
            return 0
        try:
            perf.check_golden(record, args.check_golden)
        except perf.PerfError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        print(f"golden check OK: virtual-time results match "
              f"{args.check_golden}")
        return 0

    compare = None
    if args.compare:
        with open(args.compare) as fh:
            compare = json.load(fh)
    try:
        payload = perf.run_suite(names,
                                 check_oracle=not args.no_oracle,
                                 profile=args.profile,
                                 compare=compare)
    except perf.PerfError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(perf.render_report(payload))
    path = perf.save_payload(payload, out_dir=args.out)
    print(f"\nartifact: {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures, or benchmark the "
                    "simulator itself (perf).")
    parser.add_argument("figure", choices=ALL_FIGURES + ("all", "perf"),
                        help="which figure to regenerate, or 'perf' for "
                             "the simulator benchmark suite")
    parser.add_argument("--points", default=None,
                        help="comma-separated process counts (default: "
                             "$REPRO_POINTS if set, else "
                             f"{','.join(map(str, DEFAULT_POINTS))})")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="directory for JSON artifacts (default: "
                             "$REPRO_RESULTS_DIR or benchmarks/results)")
    perf_group = parser.add_argument_group("perf options")
    perf_group.add_argument("--scenario", action="append", default=None,
                            metavar="NAME",
                            help="perf scenario (repeatable or "
                                 "comma-separated; default: the standard "
                                 "suite; 'all' for the same)")
    perf_group.add_argument("--profile", action="store_true",
                            help="attach per-layer cProfile top-N to each "
                                 "scenario")
    perf_group.add_argument("--no-oracle", action="store_true",
                            help="skip the slow-path equivalence runs "
                                 "(faster, but no bit-identical check)")
    perf_group.add_argument("--compare", default=None, metavar="FILE",
                            help="older BENCH_perf.json to compute "
                                 "before/after speedups against")
    perf_group.add_argument("--check-golden", default=None, metavar="FILE",
                            help="compare one scenario's virtual-time "
                                 "results against a committed golden file "
                                 "(exit 1 on drift)")
    perf_group.add_argument("--write-golden", default=None, metavar="FILE",
                            help="write the golden file for one scenario")
    args = parser.parse_args(argv)
    if args.figure == "perf":
        return run_perf(args)
    points = _parse_points(args.points)
    names = ALL_FIGURES if args.figure == "all" else (args.figure,)
    for name in names:
        run_figure(name, points, out_dir=args.out)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
