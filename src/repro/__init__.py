"""repro — reproduction of Peng et al., "Preparing HPC Applications for
the Exascale Era: A Decoupling Strategy" (ICPP 2017).

Layers (bottom-up):

* :mod:`repro.simmpi` — simulated MPI runtime (the testbed substitute).
* :mod:`repro.mpistream` — the paper's MPIStream data-streaming library.
* :mod:`repro.core` — the decoupling strategy: groups, plans, the
  Section II-D performance model, operation-suitability scoring.
* :mod:`repro.trace` — interval tracing + timeline/overlap analysis.
* :mod:`repro.api` — the declarative front-end: ``Simulation`` +
  ``StreamGraph`` compile stages/flows onto plans, channels and streams.
* :mod:`repro.workloads` — synthetic corpora, particle ensembles, grids.
* :mod:`repro.apps` — the paper's case studies (MapReduce, CG, iPIC3D).
* :mod:`repro.study` — declarative experiments: studies compile to
  JSON job specs run across a process pool with an exact result cache.
* :mod:`repro.bench` — figure presentation + CLI over the study
  catalog, and the simulator's own perf benchmarks.
"""

__version__ = "1.0.0"
