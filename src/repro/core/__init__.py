"""``repro.core`` — the decoupling strategy (Section II of the paper).

* :mod:`~repro.core.groups` — group formation and operation mapping.
* :mod:`~repro.core.model` — the Eq. 1-4 performance model + solvers.
* :mod:`~repro.core.categories` — the five-category suitability guide.
* :mod:`~repro.core.runtime` — generic decoupled-app scaffolding.
"""

from .adaptive import (
    AlphaController,
    EpochMeasurement,
    GranularityController,
    epoch_from_trace,
)
from .categories import (
    CATEGORY_NAMES,
    PAPER_PROFILES,
    OperationProfile,
    SuitabilityReport,
    rank_operations,
    score_operation,
)
from .groups import DecouplingPlan, Flow, GroupSpec, PlanError
from .model import (
    BetaModel,
    conventional_time,
    decoupled_time_beta,
    decoupled_time_full,
    decoupled_time_overlap,
    optimal_alpha,
    optimal_granularity,
    predicted_sigma,
    speedup,
)
from .runtime import GroupContext, conventional_baseline, run_decoupled

__all__ = [
    "AlphaController", "BetaModel", "CATEGORY_NAMES", "DecouplingPlan",
    "EpochMeasurement", "Flow", "GranularityController", "GroupContext",
    "GroupSpec", "OperationProfile", "PAPER_PROFILES", "PlanError",
    "SuitabilityReport", "conventional_baseline", "conventional_time",
    "decoupled_time_beta", "decoupled_time_full",
    "decoupled_time_overlap", "epoch_from_trace", "optimal_alpha",
    "optimal_granularity", "predicted_sigma", "rank_operations",
    "run_decoupled", "score_operation", "speedup",
]
