"""Adaptive decoupling configuration (the paper's stated future work).

Section III of the paper: *"Currently, the library only supports static
configuration of these values.  An extension to support adaptive
changes of the configuration is subject of a current work."*  This
module implements that extension: epoch-based feedback controllers that
observe the two groups' utilization and re-balance the decoupled
fraction alpha (and the stream granularity S) between epochs, driving
execution toward the Eq. 2 balance point
``T_W0 / (1 - alpha) + T_sigma = T'_W1 / alpha``.

The controllers are pure decision logic — they consume measurements and
emit recommendations — so they are unit-testable without a simulation
and equally usable by real MPI codes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from .model import BetaModel, optimal_granularity


@dataclass(frozen=True)
class EpochMeasurement:
    """What one epoch of a decoupled run observed."""

    compute_busy: float        # busy seconds of the compute group (max rank)
    compute_idle: float        # idle/wait seconds of the compute group
    decoupled_busy: float      # busy seconds of the decoupled group (max)
    decoupled_idle: float      # idle/wait seconds of the decoupled group
    elements: int = 0          # stream elements moved this epoch
    bytes_streamed: int = 0

    def __post_init__(self):
        for name in ("compute_busy", "compute_idle",
                     "decoupled_busy", "decoupled_idle"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def compute_utilization(self) -> float:
        total = self.compute_busy + self.compute_idle
        return self.compute_busy / total if total > 0 else 0.0

    @property
    def decoupled_utilization(self) -> float:
        total = self.decoupled_busy + self.decoupled_idle
        return self.decoupled_busy / total if total > 0 else 0.0


@dataclass
class AlphaController:
    """Epoch-to-epoch alpha re-balancing.

    Control law: the imbalance signal is the utilization gap between
    the decoupled group and the compute group.  If the decoupled group
    is saturated while compute ranks idle, alpha grows; in the opposite
    case it shrinks.  Updates are multiplicative with gain ``eta`` and
    clamped to ``[alpha_min, alpha_max]``; a dead band avoids churning
    on noise.
    """

    alpha: float
    nprocs: int
    eta: float = 0.5
    alpha_min: float = 1.0 / 1024.0
    alpha_max: float = 0.5
    dead_band: float = 0.05
    history: List[float] = field(default_factory=list)

    def __post_init__(self):
        if not (0.0 < self.alpha < 1.0):
            raise ValueError("alpha must be in (0, 1)")
        if self.nprocs < 2:
            raise ValueError("nprocs must be >= 2")
        if not (0.0 < self.eta <= 1.0):
            raise ValueError("eta must be in (0, 1]")
        if not (0.0 < self.alpha_min <= self.alpha_max < 1.0):
            raise ValueError("alpha bounds invalid")
        self.history.append(self.alpha)

    # ------------------------------------------------------------------
    def update(self, epoch: EpochMeasurement) -> float:
        """Consume one epoch; return the alpha for the next epoch."""
        gap = epoch.decoupled_utilization - epoch.compute_utilization
        if abs(gap) > self.dead_band:
            self.alpha = float(min(self.alpha_max, max(
                self.alpha_min, self.alpha * math.exp(self.eta * gap))))
        self.history.append(self.alpha)
        return self.alpha

    def group_size(self) -> int:
        """Concrete decoupled-group size at the current alpha."""
        return max(1, min(self.nprocs - 1, round(self.alpha * self.nprocs)))

    @property
    def converged(self) -> bool:
        """Stable over the last three epochs (within the dead band)."""
        if len(self.history) < 3:
            return False
        a, b, c = self.history[-3:]
        ref = max(c, 1e-12)
        return abs(a - c) / ref < self.dead_band \
            and abs(b - c) / ref < self.dead_band


@dataclass
class GranularityController:
    """Epoch-to-epoch stream-granularity tuning via the Eq. 4 model.

    Fits the observable quantities (volume D, measured overhead o,
    current pipelining) and re-solves :func:`optimal_granularity`
    each epoch; recommendations move at most ``max_step``x per epoch
    to avoid oscillation.
    """

    granularity: float
    beta: BetaModel = field(default_factory=BetaModel)
    max_step: float = 4.0
    s_min: float = 64.0
    s_max: float = float(1 << 30)
    history: List[float] = field(default_factory=list)

    def __post_init__(self):
        if self.granularity <= 0:
            raise ValueError("granularity must be positive")
        if self.max_step <= 1.0:
            raise ValueError("max_step must exceed 1")
        self.history.append(self.granularity)

    def update(self, t_w0: float, t_sigma: float, t_w1_decoupled: float,
               alpha: float, volume_bytes: float,
               per_element_overhead: float) -> float:
        """Return the element size for the next epoch."""
        if volume_bytes <= 0:
            self.history.append(self.granularity)
            return self.granularity
        s_star, _ = optimal_granularity(
            t_w0, t_sigma, t_w1_decoupled, alpha, self.beta,
            D=volume_bytes, o=per_element_overhead,
        )
        lo = self.granularity / self.max_step
        hi = self.granularity * self.max_step
        self.granularity = float(min(self.s_max,
                                     max(self.s_min, min(hi, max(lo, s_star)))))
        self.history.append(self.granularity)
        return self.granularity


def epoch_from_trace(tracer, compute_ranks, decoupled_ranks,
                     t0: float, t1: float,
                     busy_categories=("compute", "io")) -> EpochMeasurement:
    """Build an :class:`EpochMeasurement` from a trace window.

    Busy = union measure of ``busy_categories`` intervals clipped to
    [t0, t1]; idle = the remainder of the window.  Uses the worst
    (busiest/idlest) rank of each group, matching the controllers'
    makespan view.
    """
    from ..trace.recorder import measure

    def group_stats(ranks):
        busy_max, idle_max = 0.0, 0.0
        horizon = t1 - t0
        for rank in ranks:
            spans = [
                (max(iv.t0, t0), min(iv.t1, t1))
                for iv in tracer.for_rank(rank)
                if iv.category in busy_categories and iv.t1 > t0 and iv.t0 < t1
            ]
            busy = measure(spans)
            busy_max = max(busy_max, busy)
            idle_max = max(idle_max, horizon - busy)
        return busy_max, idle_max

    cb, ci = group_stats(compute_ranks)
    db, di = group_stats(decoupled_ranks)
    return EpochMeasurement(compute_busy=cb, compute_idle=ci,
                            decoupled_busy=db, decoupled_idle=di)
