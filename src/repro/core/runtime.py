"""The decoupled-application runtime: wire a plan into running groups.

Given a validated :class:`~repro.core.groups.DecouplingPlan` and one
body function per group, :func:`run_decoupled` is the SPMD main that:

1. forms the plan's group communicators (communication-free: plan
   membership is deterministic on every rank),
2. creates one stream channel per declared flow (a collective over the
   *world* communicator, producers = src group, consumers = dst group),
3. invokes this rank's group body with a :class:`GroupContext`.

Bodies are generator functions ``body(ctx)``; their return value is the
rank's result.  This is the generic scaffolding Fig. 3's comparison and
the examples use; the case-study applications (MapReduce, CG, iPIC3D)
use the same pieces directly for finer control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

from ..mpistream.channel import StreamChannel, create_channel
from ..simmpi.comm import Comm
from .groups import DecouplingPlan, PlanError


@dataclass
class GroupContext:
    """Everything a group body needs."""

    plan: DecouplingPlan
    group: str                       # this rank's group name
    world: Comm                      # the full communicator
    comm: Comm                       # this group's communicator
    channels: Dict[str, StreamChannel] = field(default_factory=dict)
    #: every flow's channel, bystander ranks included — channel teardown
    #: (``free`` barriers) is collective over the world communicator, so
    #: runtimes that free channels automatically need them all
    all_channels: Dict[str, StreamChannel] = field(default_factory=dict)

    @property
    def alpha(self) -> float:
        return self.plan.alpha(self.group)

    def channel(self, flow_name: str) -> StreamChannel:
        ch = self.channels.get(flow_name)
        if ch is None:
            raise PlanError(
                f"flow {flow_name!r} does not touch group {self.group!r}"
            )
        return ch


def run_decoupled(world: Comm, plan: DecouplingPlan,
                  bodies: Dict[str, Callable[[GroupContext], Generator]],
                  ) -> Generator[Any, Any, Any]:
    """SPMD main implementing the plan on ``world``.

    ``bodies`` maps group name -> generator function.  Every group must
    have a body.  Returns this rank's body return value.
    """
    if world.size != plan.total_procs:
        raise PlanError(
            f"plan sized for {plan.total_procs} processes, communicator "
            f"has {world.size}"
        )
    missing = [g for g in plan.groups if g not in bodies]
    if missing:
        raise PlanError(f"no body for group(s): {missing}")

    # Group membership is a pure function of the plan (groups occupy
    # contiguous, deterministic rank blocks), so the group communicator
    # is formed without an agreement round — the MPI_Comm_create_group
    # path rather than MPI_Comm_split.
    my_group = plan.group_of(world.rank)
    group_comm = world.group_from_ranks(
        list(plan.groups[my_group].ranks), name=f"{world.name}/{my_group}")

    # channels are collective over the world communicator, in the
    # deterministic order flows were declared
    channels: Dict[str, StreamChannel] = {}
    all_channels: Dict[str, StreamChannel] = {}
    for flow in plan.flows:
        ch = yield from create_channel(
            world,
            is_producer=(my_group == flow.src),
            is_consumer=(my_group == flow.dst),
        )
        all_channels[flow.name] = ch
        if my_group in (flow.src, flow.dst):
            channels[flow.name] = ch

    ctx = GroupContext(plan=plan, group=my_group, world=world,
                       comm=group_comm, channels=channels,
                       all_channels=all_channels)
    result = yield from bodies[my_group](ctx)
    return result


def conventional_baseline(world: Comm,
                          operations: Dict[str, Callable[[Comm], Generator]],
                          ) -> Generator[Any, Any, Dict[str, Any]]:
    """The staged reference execution: every rank runs every operation
    in order, with a barrier closing each stage (Fig. 3a).

    Returns ``{operation: value}`` for this rank — handy for
    conventional-vs-decoupled comparisons with identical kernels.
    """
    results: Dict[str, Any] = {}
    for name, op in operations.items():
        results[name] = yield from op(world)
        yield from world.barrier()
    return results
