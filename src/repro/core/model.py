"""The Section II-D performance model (Eqs. 1-4) and its solvers.

Notation (matching the paper):

=========  ============================================================
``t_w0``   per-process time of the retained operation Op0, on P procs
``t_w1``   per-process time of the decoupled operation Op1, on P procs
``t_sigma``  expected synchronization/imbalance cost
``alpha``  fraction of processes dedicated to Op1  (0 < alpha < 1)
``beta``   fraction of Op0 *not* overlapped with Op1 (0 = perfect
           pipeline, 1 = no pipelining)
``D``      total bytes streamed between the groups
``S``      stream-element granularity in bytes
``o``      per-element overhead (construction + injection call)
``t_w1_decoupled``  Op1's time once it runs on alpha*P processes —
           the paper's T'_W1, supplied by the caller because it is
           operation-specific (e.g. a reduce tree shrinks with group
           size, I/O gains from buffering)
=========  ============================================================

Every equation returns *seconds of predicted execution time*; the
validation benchmark replays the same scenarios through the simulator
and compares.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence, Tuple


def conventional_time(t_w0: float, t_w1: float, t_sigma: float) -> float:
    """Eq. 1: ``Tc = T_W0 + T_sigma + T_W1`` — the staged bulk-synchronous
    execution where every process performs both operations."""
    _check_nonneg(t_w0=t_w0, t_w1=t_w1, t_sigma=t_sigma)
    return t_w0 + t_sigma + t_w1


def decoupled_time_overlap(t_w0: float, t_sigma: float,
                           t_w1_decoupled: float, alpha: float) -> float:
    """Eq. 2: perfect-pipelining bound.

    ``Td = max( T_W0 / (1-alpha) + T_sigma,  T'_W1 / alpha )`` — the two
    groups progress fully in parallel; whichever group is busier sets
    the makespan.  Note the workload re-scaling: the (1-alpha)P compute
    processes each carry 1/(1-alpha) of the per-process work, and the
    alpha*P decoupled processes carry 1/alpha of theirs.
    """
    _check_alpha(alpha)
    _check_nonneg(t_w0=t_w0, t_sigma=t_sigma, t_w1_decoupled=t_w1_decoupled)
    return max(t_w0 / (1.0 - alpha) + t_sigma, t_w1_decoupled / alpha)


def decoupled_time_beta(t_w0: float, t_sigma: float, t_w1_decoupled: float,
                        alpha: float, beta: float) -> float:
    """Eq. 3: partial pipelining under the paper's pessimistic assumption
    that Op1 always finishes after Op0.

    ``Td = beta * [T_W0/(1-alpha) + T_sigma] + T'_W1/alpha``:
    beta = 1 degenerates to the staged sum, beta = 0 to the decoupled
    operation alone.
    """
    _check_alpha(alpha)
    _check_beta(beta)
    _check_nonneg(t_w0=t_w0, t_sigma=t_sigma, t_w1_decoupled=t_w1_decoupled)
    return beta * (t_w0 / (1.0 - alpha) + t_sigma) + t_w1_decoupled / alpha


def decoupled_time_full(t_w0: float, t_sigma: float, t_w1_decoupled: float,
                        alpha: float, beta_of_s: Callable[[float], float],
                        D: float, S: float, o: float) -> float:
    """Eq. 4: Eq. 3 plus the stream overhead term ``(D/S) * o`` and
    granularity-dependent pipelining ``beta(S)``.

    Finer elements (small S) improve pipelining (lower beta) but pay
    more injection overhead — the central trade-off of the approach.
    """
    _check_alpha(alpha)
    _check_nonneg(t_w0=t_w0, t_sigma=t_sigma,
                  t_w1_decoupled=t_w1_decoupled, D=D, o=o)
    if S <= 0:
        raise ValueError("granularity S must be positive")
    beta = beta_of_s(S)
    _check_beta(beta)
    n_elements = D / S
    return beta * (t_w0 / (1.0 - alpha) + t_sigma + n_elements * o) \
        + t_w1_decoupled / alpha


def speedup(tc: float, td: float) -> float:
    """Conventional / decoupled — the paper's "Nx improvement"."""
    if td <= 0:
        raise ValueError("decoupled time must be positive")
    return tc / td


# ----------------------------------------------------------------------
# beta(S): pipelining efficiency as a function of granularity
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BetaModel:
    """A concrete ``beta(S)`` family.

    The paper states only that finer-grained elements pipeline better
    ("beta is a function of S; the finer grain the stream element is,
    the higher pipelining can be achieved").  We use the saturating form

        ``beta(S) = beta_min + (1 - beta_min) * S / (S + S_half)``

    - S -> 0:    beta -> beta_min  (best achievable overlap)
    - S = S_half: halfway between floor and 1
    - S -> inf:  beta -> 1         (one giant element = staged execution)

    ``beta_min`` captures the un-overlappable head of the pipeline (the
    consumer cannot start before the first element exists).
    """

    beta_min: float = 0.05
    s_half: float = 1 << 20  # 1 MiB

    def __post_init__(self):
        _check_beta(self.beta_min)
        if self.s_half <= 0:
            raise ValueError("s_half must be positive")

    def __call__(self, S: float) -> float:
        if S <= 0:
            raise ValueError("granularity S must be positive")
        return self.beta_min + (1.0 - self.beta_min) * S / (S + self.s_half)


# ----------------------------------------------------------------------
# solvers
# ----------------------------------------------------------------------

def optimal_alpha(t_w0: float, t_sigma: float,
                  t_w1_decoupled: Callable[[float], float],
                  lo: float = 1e-3, hi: float = 1.0 - 1e-3,
                  tol: float = 1e-6) -> float:
    """The alpha that balances the two groups in Eq. 2.

    ``t_w1_decoupled(alpha)`` gives T'_W1 for a group of alpha*P procs
    (supplied by the caller: shrinking a reduce tree, buffering I/O...).
    The compute branch ``T_W0/(1-a) + T_sigma`` increases in alpha while
    the decoupled branch ``T'_W1(a)/a`` decreases (for any sensible
    T'_W1), so the max is minimized where they cross; bisection finds
    the crossing, clamped to the search interval.
    """
    _check_nonneg(t_w0=t_w0, t_sigma=t_sigma)

    def gap(a: float) -> float:
        return (t_w0 / (1.0 - a) + t_sigma) - t_w1_decoupled(a) / a

    glo, ghi = gap(lo), gap(hi)
    if glo >= 0:     # compute branch dominates even at tiny alpha
        return lo
    if ghi <= 0:     # decoupled branch dominates even at huge alpha
        return hi
    a, b = lo, hi
    while b - a > tol:
        mid = 0.5 * (a + b)
        if gap(mid) < 0:
            a = mid
        else:
            b = mid
    return 0.5 * (a + b)


def optimal_granularity(t_w0: float, t_sigma: float, t_w1_decoupled: float,
                        alpha: float, beta_of_s: Callable[[float], float],
                        D: float, o: float,
                        s_grid: Optional[Sequence[float]] = None
                        ) -> Tuple[float, float]:
    """Minimize Eq. 4 over the granularity S.

    Returns ``(S*, Td(S*))``.  Default search grid: 64 log-spaced points
    from 64 B to D (one element).
    """
    if s_grid is None:
        if D <= 64:
            s_grid = [max(D, 1.0)]
        else:
            n = 64
            lo, hi = math.log(64.0), math.log(float(D))
            s_grid = [math.exp(lo + (hi - lo) * i / (n - 1)) for i in range(n)]
    best_s, best_t = None, float("inf")
    for S in s_grid:
        td = decoupled_time_full(t_w0, t_sigma, t_w1_decoupled, alpha,
                                 beta_of_s, D, S, o)
        if td < best_t:
            best_s, best_t = S, td
    return best_s, best_t


def predicted_sigma(per_op_time: float, nprocs: int,
                    persistent_skew: float, quantum_fraction: float) -> float:
    """Analytic T_sigma for a bulk-synchronous phase on ``nprocs`` ranks.

    The slowest of P lognormal(0, skew) ranks runs at approximately
    ``exp(skew * sqrt(2 ln P))`` of the median; transient noise adds
    ``quantum_fraction`` in expectation.  T_sigma is the *extra* time
    beyond the nominal phase length.
    """
    _check_nonneg(per_op_time=per_op_time)
    if nprocs <= 1:
        return per_op_time * quantum_fraction
    max_factor = math.exp(persistent_skew * math.sqrt(2.0 * math.log(nprocs)))
    return per_op_time * (max_factor * (1.0 + quantum_fraction) - 1.0)


# ----------------------------------------------------------------------
# validation helpers
# ----------------------------------------------------------------------

def _check_alpha(alpha: float) -> None:
    if not (0.0 < alpha < 1.0):
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")


def _check_beta(beta: float) -> None:
    if not (0.0 <= beta <= 1.0):
        raise ValueError(f"beta must be in [0, 1], got {beta}")


def _check_nonneg(**named: float) -> None:
    for name, value in named.items():
        if value < 0:
            raise ValueError(f"{name} must be non-negative, got {value}")
