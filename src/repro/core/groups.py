"""Group formation and operation-to-group mapping (Section II-C, Fig. 4).

A :class:`DecouplingPlan` is the declarative form of "form G groups of
P_i processes and map each of the N operations to exactly one group":

    plan = DecouplingPlan(total_procs=64)
    plan.add_group("compute", fraction=0.9375)
    plan.add_group("reduce", fraction=0.0625)      # alpha = 6.25%
    plan.map_operation("map_words", "compute")
    plan.map_operation("reduce_histogram", "reduce")
    plan.add_flow("intermediate", src="compute", dst="reduce")
    plan.validate()

The plan assigns concrete rank ranges deterministically (groups take
contiguous rank blocks in declaration order, remainders resolved
largest-fraction-first), so every rank can compute its group without
communication; :meth:`DecouplingPlan.group_of` is pure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class PlanError(ValueError):
    """An invalid decoupling plan (bad fractions, unmapped operations...)."""


@dataclass(frozen=True)
class Flow:
    """A directional dataflow between two groups."""

    name: str
    src: str
    dst: str


@dataclass
class GroupSpec:
    name: str
    fraction: float
    size: int = 0            # resolved by validate()
    first_rank: int = 0      # resolved by validate()

    @property
    def ranks(self) -> range:
        return range(self.first_rank, self.first_rank + self.size)


class DecouplingPlan:
    """Groups + operation mapping + inter-group flows for one application."""

    def __init__(self, total_procs: int):
        if total_procs <= 0:
            raise PlanError("total_procs must be positive")
        self.total_procs = total_procs
        self.groups: Dict[str, GroupSpec] = {}
        self._order: List[str] = []
        self.operations: Dict[str, str] = {}   # op name -> group name
        self.flows: List[Flow] = []
        self._validated = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_group(self, name: str, fraction: Optional[float] = None,
                  size: Optional[int] = None) -> "DecouplingPlan":
        """Declare a group by fraction of P or by absolute size."""
        if name in self.groups:
            raise PlanError(f"duplicate group {name!r}")
        if (fraction is None) == (size is None):
            raise PlanError("give exactly one of fraction / size")
        if size is not None:
            if not (0 < size <= self.total_procs):
                raise PlanError(f"group size {size} out of range")
            fraction = size / self.total_procs
        if not (0.0 < fraction <= 1.0):
            raise PlanError(f"fraction must be in (0, 1], got {fraction}")
        self.groups[name] = GroupSpec(name, fraction,
                                      size=size if size is not None else 0)
        self._order.append(name)
        self._validated = False
        return self

    def map_operation(self, op: str, group: str) -> "DecouplingPlan":
        """Map an operation to exactly one group (re-mapping is an error)."""
        if group not in self.groups:
            raise PlanError(f"unknown group {group!r}")
        if op in self.operations:
            raise PlanError(
                f"operation {op!r} already mapped to "
                f"{self.operations[op]!r}; each operation maps to exactly "
                "one group"
            )
        self.operations[op] = group
        return self

    def add_flow(self, name: str, src: str, dst: str) -> "DecouplingPlan":
        for g in (src, dst):
            if g not in self.groups:
                raise PlanError(f"unknown group {g!r} in flow {name!r}")
        if src == dst:
            raise PlanError(f"flow {name!r} must link two distinct groups")
        if any(f.name == name for f in self.flows):
            raise PlanError(f"duplicate flow {name!r}")
        self.flows.append(Flow(name, src, dst))
        return self

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def validate(self) -> "DecouplingPlan":
        """Resolve fractions to concrete disjoint rank ranges covering P.

        Sizes are ``round(fraction * P)`` floored at 1, with the
        remainder credited to / taken from the largest group; groups
        occupy contiguous blocks in declaration order.
        """
        if not self.groups:
            raise PlanError("plan has no groups")
        if not self.operations:
            raise PlanError("plan maps no operations")
        sizes: Dict[str, int] = {}
        for name in self._order:
            g = self.groups[name]
            sizes[name] = g.size if g.size > 0 else max(
                1, round(g.fraction * self.total_procs))
        drift = self.total_procs - sum(sizes.values())
        if drift != 0:
            largest = max(self._order, key=lambda n: sizes[n])
            sizes[largest] += drift
            if sizes[largest] < 1:
                raise PlanError(
                    f"group sizes {sizes} cannot cover {self.total_procs} "
                    "processes"
                )
        first = 0
        for name in self._order:
            g = self.groups[name]
            g.size = sizes[name]
            g.first_rank = first
            first += g.size
        self._validated = True
        return self

    def _require_validated(self) -> None:
        if not self._validated:
            raise PlanError("plan not validated; call validate() first")

    # ------------------------------------------------------------------
    # queries (pure, communication-free)
    # ------------------------------------------------------------------
    def group_of(self, rank: int) -> str:
        self._require_validated()
        if not (0 <= rank < self.total_procs):
            raise PlanError(f"rank {rank} out of range")
        for name in self._order:
            g = self.groups[name]
            if rank in g.ranks:
                return name
        raise AssertionError("unreachable: groups cover all ranks")

    def color_of(self, rank: int) -> int:
        """Split color (group index in declaration order)."""
        return self._order.index(self.group_of(rank))

    def alpha(self, group: str) -> float:
        """The decoupled fraction for ``group`` (Eq. 4's alpha)."""
        self._require_validated()
        if group not in self.groups:
            raise PlanError(f"unknown group {group!r}")
        return self.groups[group].size / self.total_procs

    def operations_of(self, group: str) -> List[str]:
        return [op for op, g in self.operations.items() if g == group]

    def flows_touching(self, group: str) -> List[Flow]:
        return [f for f in self.flows if group in (f.src, f.dst)]

    def summary(self) -> List[Tuple[str, int, float, List[str]]]:
        """(group, size, alpha, operations) rows for reports."""
        self._require_validated()
        return [
            (n, self.groups[n].size, self.alpha(n), self.operations_of(n))
            for n in self._order
        ]
