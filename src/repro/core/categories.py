"""Operation-suitability analysis (Section II-E).

The paper identifies five categories of operations that benefit from
decoupling.  This module turns that prose guideline into an executable
scorer: describe an operation with an :class:`OperationProfile` and get
back which categories it matches and an aggregate suitability score —
the "guideline to select operations" contribution, as code.

The five categories:

1. **Orthogonal** — little data dependency with the rest of the app.
2. **High complexity at scale** — cost grows superlinearly (or at least
   linearly) with the process count, so shrinking the group helps.
3. **High execution-time variance** — irregular operations whose
   imbalance the fine-grained dataflow absorbs.
4. **Continuous data flow** — produce data throughout execution rather
   than in an end-of-stage burst, so streaming evens out the network.
5. **Special-purpose hardware** — benefit from dedicated resources
   (large-memory nodes, burst buffers, I/O nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: complexity growth classes and their category-2 weight
COMPLEXITY_WEIGHT: Dict[str, float] = {
    "constant": 0.0,
    "log": 0.25,
    "linear": 0.7,
    "quadratic": 1.0,
}

CATEGORY_NAMES = (
    "orthogonal",
    "complexity_at_scale",
    "time_variance",
    "continuous_flow",
    "special_hardware",
)


@dataclass(frozen=True)
class OperationProfile:
    """A declarative description of one application operation."""

    name: str
    #: 0 = fully independent of other operations, 1 = tightly coupled
    data_dependency: float = 0.5
    #: how the operation's cost grows with the number of processes
    complexity_growth: str = "constant"
    #: coefficient of variation of per-process execution time
    time_variance_cv: float = 0.0
    #: fraction of the enclosing phase during which the operation emits
    #: data (1 = continuously, 0 = single end-of-phase burst)
    flow_continuity: float = 0.0
    #: would run better on dedicated/special hardware
    wants_special_hardware: bool = False

    def __post_init__(self):
        if not (0.0 <= self.data_dependency <= 1.0):
            raise ValueError("data_dependency must be in [0, 1]")
        if self.complexity_growth not in COMPLEXITY_WEIGHT:
            raise ValueError(
                f"complexity_growth must be one of {sorted(COMPLEXITY_WEIGHT)}"
            )
        if self.time_variance_cv < 0:
            raise ValueError("time_variance_cv must be non-negative")
        if not (0.0 <= self.flow_continuity <= 1.0):
            raise ValueError("flow_continuity must be in [0, 1]")


@dataclass
class SuitabilityReport:
    """Outcome of scoring one operation."""

    operation: str
    category_scores: Dict[str, float] = field(default_factory=dict)
    score: float = 0.0

    @property
    def matched_categories(self) -> List[str]:
        """Categories with a meaningful (>= 0.5) contribution."""
        return [c for c, s in self.category_scores.items() if s >= 0.5]

    @property
    def suitable(self) -> bool:
        """The paper's bar: at least one category clearly matched."""
        return bool(self.matched_categories)


def score_operation(profile: OperationProfile) -> SuitabilityReport:
    """Score ``profile`` against the five Section II-E categories.

    Each category contributes in [0, 1]; the aggregate is the max over
    categories (one strong reason suffices — the paper decouples the
    CG halo exchange on category 4 alone, for instance).
    """
    scores = {
        "orthogonal": 1.0 - profile.data_dependency,
        "complexity_at_scale": COMPLEXITY_WEIGHT[profile.complexity_growth],
        # CV of 0.5 already indicates heavy imbalance; saturate at 1
        "time_variance": min(1.0, profile.time_variance_cv / 0.5),
        "continuous_flow": profile.flow_continuity,
        "special_hardware": 1.0 if profile.wants_special_hardware else 0.0,
    }
    return SuitabilityReport(
        operation=profile.name,
        category_scores=scores,
        score=max(scores.values()),
    )


def rank_operations(profiles: List[OperationProfile]
                    ) -> List[Tuple[str, float]]:
    """Order operations by decoupling suitability, best first."""
    reports = [score_operation(p) for p in profiles]
    reports.sort(key=lambda r: r.score, reverse=True)
    return [(r.operation, r.score) for r in reports]


# ----------------------------------------------------------------------
# the paper's own case studies, as profiles (used in docs and tests)
# ----------------------------------------------------------------------

PAPER_PROFILES: Dict[str, OperationProfile] = {
    "mapreduce_reduce": OperationProfile(
        name="mapreduce_reduce",
        data_dependency=0.3,
        complexity_growth="log",
        time_variance_cv=0.6,     # natural-language skew
        flow_continuity=0.9,      # map emits throughout
    ),
    "cg_halo_exchange": OperationProfile(
        name="cg_halo_exchange",
        data_dependency=0.9,      # tight per-iteration dependency
        complexity_growth="constant",
        time_variance_cv=0.05,    # regular workload
        flow_continuity=0.7,      # boundaries stream out while inner
                                  # points compute
    ),
    "particle_communication": OperationProfile(
        name="particle_communication",
        data_dependency=0.4,
        complexity_growth="linear",   # forwarding steps grow with dims
        time_variance_cv=0.8,         # skewed particle distribution
        flow_continuity=0.8,          # exiting particles found all along
    ),
    "particle_io": OperationProfile(
        name="particle_io",
        data_dependency=0.1,
        complexity_growth="linear",   # collective I/O cost at scale
        time_variance_cv=0.8,
        flow_continuity=0.8,
        wants_special_hardware=True,  # burst buffers / I/O nodes
    ),
}
