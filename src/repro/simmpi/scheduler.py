"""The Scheduler seam: pluggable event-loop drivers for the engine.

:meth:`Engine.run` historically owned the heap-drain loop.  PR 9 lifts
that loop behind a one-method protocol so alternative drivers — the
conservative-lookahead :class:`repro.parallel.PartitionedScheduler`,
instrumented replay harnesses, test shims — can drive the same engine
without forking it:

``Scheduler.run(engine) -> float``
    Drain ``engine``'s pending events and return the final virtual
    time.  The driver owns the loop; the engine keeps owning process
    bookkeeping (``_step``, ``spawn``, ``set_flag``, ``kill``).

Contract every scheduler must honor (DESIGN.md §16):

* events fire in global ``(time, seq)`` order — equal-time events in
  insertion order, exactly like the serial heap;
* the clock never rewinds: ``engine.now`` is monotone non-decreasing
  and mirrors the time of the event being fired;
* ``engine.max_events`` is a hard budget — exceeding it raises
  ``RuntimeError`` with the livelock message;
* ``engine._events_fired`` is updated even when the loop raises (the
  serial loop's ``finally`` semantics), so post-mortem reports see the
  true event count;
* a drained heap with ``engine._live > 0`` raises
  :class:`~repro.simmpi.errors.DeadlockError` listing the stuck
  processes.

:class:`SerialScheduler` is the pre-seam loop moved verbatim;
:func:`legacy_run` is a second, frozen copy of the same loop kept as
the refactor oracle — the scheduler-seam property test drives both
(plus the seed :class:`~repro.simmpi.oracle.OracleEngine`) over
randomized workloads and asserts identical digests, so any future edit
to one copy that changes observable behavior trips the test.
"""

from __future__ import annotations

from heapq import heappop as _heappop

__all__ = ["Scheduler", "SerialScheduler", "legacy_run"]


class Scheduler:
    """Protocol: an event-loop driver the engine delegates ``run()`` to.

    Subclasses override :meth:`run`.  The base class raising keeps the
    protocol explicit (no silent no-op drivers).
    """

    def run(self, engine) -> float:
        """Drain ``engine``'s events; return the final virtual time."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement Scheduler.run")


class SerialScheduler(Scheduler):
    """The classic single-heap drain loop (the pre-seam ``Engine.run``
    body, preserved verbatim).  This is the default driver and the
    oracle every other scheduler is measured against."""

    def run(self, engine) -> float:
        from .errors import DeadlockError

        heap = engine._heap
        pop = _heappop
        budget = engine.max_events
        if budget is None:
            budget = float("inf")
        fired = engine._events_fired
        now = engine.now
        try:
            while heap:
                entry = pop(heap)
                fired += 1
                if fired > budget:
                    raise RuntimeError(
                        f"event budget exceeded ({engine.max_events} events); "
                        "likely a livelock in a simulated protocol"
                    )
                # callbacks never rewind the clock; `now` mirrors
                # engine.now so the compare is a local read
                time_ = entry[0]
                if time_ > now:
                    now = time_
                    engine.now = time_
                entry[2]()
        finally:
            engine._events_fired = fired
        if engine._live > 0:
            blocked = {
                p.handle.name: p.blocked_label()
                for p in engine._procs
                if not p.daemon
                and p.blocked_on not in ("done", "error", "killed")
            }
            raise DeadlockError(blocked)
        return engine.now


def legacy_run(engine) -> float:
    """The pre-refactor ``Engine.run`` loop, frozen as a free function.

    Kept verbatim (not aliased to :class:`SerialScheduler`) so the
    seam property test compares two independent copies: if a future
    edit changes one loop's observable behavior, the digests diverge
    and the test names the culprit.
    """
    from .errors import DeadlockError

    heap = engine._heap
    pop = _heappop
    budget = engine.max_events
    if budget is None:
        budget = float("inf")
    fired = engine._events_fired
    now = engine.now
    try:
        while heap:
            entry = pop(heap)
            fired += 1
            if fired > budget:
                raise RuntimeError(
                    f"event budget exceeded ({engine.max_events} events); "
                    "likely a livelock in a simulated protocol"
                )
            time_ = entry[0]
            if time_ > now:
                now = time_
                engine.now = time_
            entry[2]()
    finally:
        engine._events_fired = fired
    if engine._live > 0:
        blocked = {
            p.handle.name: p.blocked_label()
            for p in engine._procs
            if not p.daemon
            and p.blocked_on not in ("done", "error", "killed")
        }
        raise DeadlockError(blocked)
    return engine.now
