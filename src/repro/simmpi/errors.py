"""MPI-like error hierarchy for the simulated runtime.

The simulated runtime mirrors the error classes an MPI implementation
reports, so application code and tests can assert on specific failure
modes (truncation, invalid rank, communicator misuse) exactly as they
would against a real MPI library.
"""

from __future__ import annotations


class SimMPIError(Exception):
    """Base class for all errors raised by the simulated MPI runtime."""


class InvalidRankError(SimMPIError):
    """A point-to-point or collective call referenced a rank outside the
    communicator, or a negative rank other than the wildcards."""


class InvalidTagError(SimMPIError):
    """A tag was negative (other than ``ANY_TAG``) or exceeded ``TAG_UB``."""


class TruncationError(SimMPIError):
    """A receive posted a buffer smaller than the matched message.

    Mirrors ``MPI_ERR_TRUNCATE``: matching succeeds on (source, tag) only,
    and a too-small receive is an application error, not a silent clip.
    """


class CommunicatorError(SimMPIError):
    """Misuse of a communicator: operating on a freed communicator, a rank
    calling a collective on a communicator it does not belong to, etc."""


class RequestError(SimMPIError):
    """Misuse of a request object (double wait, waiting on a freed
    persistent request, starting an active persistent request...)."""


class DatatypeError(SimMPIError):
    """Malformed datatype definition (negative counts, zero-size base...)."""


class TopologyError(SimMPIError):
    """Invalid Cartesian topology construction or coordinate query."""


class PlacementError(SimMPIError):
    """Invalid rank→node placement: groups that overlap or leave ranks
    unplaced, unknown policy names, out-of-range lookups."""


class IOError_(SimMPIError):
    """MPI-IO failure (file not opened, bad view, write on read-only...)."""


class WindowError(SimMPIError):
    """Misuse of a one-sided window: out-of-range target rank or byte
    range, RMA access outside an epoch, unlock without lock, freeing a
    window with an open epoch (``MPI_ERR_WIN`` / ``MPI_ERR_RMA_SYNC``)."""


class ProcessFailedError(SimMPIError):
    """An operation could not complete because a peer process failed.

    Mirrors ULFM's ``MPI_ERR_PROC_FAILED``: raised inside the simulated
    rank at the blocked (or newly posted) operation, so application code
    can catch it and recover — uncaught, it aborts the simulation, the
    ``MPI_ERRORS_ARE_FATAL`` default.  Wildcard receives are interrupted
    too (the ``MPI_ERR_PROC_FAILED_PENDING`` case) until the failure is
    acknowledged via :meth:`~repro.simmpi.comm.Comm.failure_ack`.
    """

    def __init__(self, message: str, rank: int = -1):
        self.rank = rank
        super().__init__(message)


class RevokedError(SimMPIError):
    """An operation targeted a peer already known to have failed.

    Mirrors ULFM's ``MPI_ERR_REVOKED``: once a failure has been
    *detected*, new sends to (or exact receives from) the dead rank fail
    immediately instead of parking in a mailbox forever.
    """

    def __init__(self, message: str, rank: int = -1):
        self.rank = rank
        super().__init__(message)


class FaultSignal:
    """Poison payload carried by a cancelled :class:`EventFlag`.

    The fault controller resolves doomed waits by setting their flags
    with a ``FaultSignal`` as payload; fault-aware wait sites check the
    payload's class and raise ``.error`` inside the waiting generator.
    Fault-free runs never allocate one, so the check is a single pointer
    compare on the wait path.
    """

    __slots__ = ("error",)

    def __init__(self, error: SimMPIError):
        self.error = error

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultSignal({self.error!r})"


class DeadlockError(SimMPIError):
    """The event queue drained while one or more ranks were still blocked.

    A real MPI job would hang; the simulator detects the condition and
    reports every blocked rank together with the primitive it is stuck in,
    which makes communication-protocol bugs in applications immediately
    visible in tests.
    """

    def __init__(self, blocked: dict):
        self.blocked = dict(blocked)
        detail = ", ".join(
            f"rank {r}: {why}" for r, why in sorted(self.blocked.items())
        )
        super().__init__(f"simulation deadlock; blocked ranks: {detail}")
