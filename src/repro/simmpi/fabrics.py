"""Topology-aware fabrics: fat-tree and dragonfly interconnect models.

Both implement the :class:`~repro.simmpi.network.Fabric` contract
(DESIGN.md §9) and keep the flat-list, O(1)-per-message fast-path
discipline of the flat :class:`~repro.simmpi.network.Network`: every
timeline is a rank-, switch- or group-indexed list of floats, grown
lazily, and ``transfer`` walks a bounded handful of them per message.

Self-sends and intra-node messages behave exactly as on the flat
fabric (shared memory does not care about the cable plant); only
inter-node traffic is routed through the modeled topology.  Like the
flat model, both fabrics are first-order and deterministic — they are
calibrated to reproduce *contention shapes* (which placement wins, how
the gap moves with scale), not cycle-accurate hop counts.

``NetworkConfig.fabric_dilation`` is deliberately **not** applied
here: that factor is the flat model's *surrogate* for the extra hops
and adaptive-routing traffic of large allocations, and these fabrics
model exactly those effects explicitly (per-level climbs, per-group
global pipes).  Applying both would double-count; ``dilation()`` still
reports the factor for observability, but topology latencies come only
from the ``TopologyConfig`` knobs.
"""

from __future__ import annotations

from typing import Tuple

from .config import MachineConfig
from .network import Fabric, TransferTiming

__all__ = [
    "DragonflyFabric",
    "FatTreeFabric",
]

_tuple_new = tuple.__new__


class FatTreeFabric(Fabric):
    """Nodes are leaves of a ``radix``-ary tree with per-level uplinks.

    A message between different nodes climbs to the lowest common
    switch (level ``L``), pays ``2 * L * link_latency`` of hop latency,
    and — the contention model — serializes on the *uplink timeline* of
    each source-side switch it ascends through.  Uplink bandwidth
    tapers by ``taper`` per level, so a reduce funnel whose producers
    sit under many different top-level subtrees hammers the thin upper
    links while a colocated layout stays under one leaf switch.
    """

    def __init__(self, config: MachineConfig, nranks: int):
        super().__init__(config, nranks)
        topo = config.topology
        self._radix = topo.radix
        self._hop = topo.link_latency
        self._bw = config.network.bandwidth   # NIC injection/drain rate
        nnodes = (max(self._node) + 1) if self._node else 1
        levels = 1
        capacity = self._radix
        while capacity < nnodes:
            capacity *= self._radix
            levels += 1
        self._levels = levels
        #: _up_free[l-1][switch] = when the uplink out of level-l switch
        #: ``switch`` is free; bandwidth tapers per level
        self._up_free = [
            [0.0] * (nnodes // self._radix ** l + 1)
            for l in range(1, levels)
        ]
        self._up_bw = [
            topo.uplink_bandwidth / topo.taper ** (l - 1)
            for l in range(1, levels)
        ]

    # ------------------------------------------------------------------
    def _climb(self, src_node: int, dst_node: int) -> int:
        """Lowest tree level whose switch covers both nodes (>= 1)."""
        radix = self._radix
        level = 1
        s, d = src_node // radix, dst_node // radix
        while s != d:
            s //= radix
            d //= radix
            level += 1
        while level > self._levels:
            # lazily-grown node ids outgrew the tree: add a level
            self._up_free.append([0.0])
            self._up_bw.append(self._up_bw[-1] / self.config.topology.taper
                               if self._up_bw
                               else self.config.topology.uplink_bandwidth)
            self._levels += 1
        return level

    def _link(self, src: int, dst: int) -> Tuple[float, float]:
        if src < 0 or dst < 0:
            raise ValueError(f"negative rank in link lookup: {src}->{dst}")
        if src >= self._size or dst >= self._size:
            self._grow((src if src > dst else dst) + 1)
        if src == dst:
            return self._self_link
        node = self._node
        if node[src] == node[dst]:
            return self._intra_link
        level = self._climb(node[src], node[dst])
        return (2 * level * self._hop, self._bw)

    def transfer(self, src: int, dst: int, nbytes: int, ready: float
                 ) -> TransferTiming:
        if nbytes < 0:
            raise ValueError("negative message size")
        if src < 0 or dst < 0:
            raise ValueError(f"negative rank in transfer: {src}->{dst}")
        if src >= self._size or dst >= self._size:
            self._grow((src if src > dst else dst) + 1)
        node = self._node
        src_node, dst_node = node[src], node[dst]
        if src == dst or src_node == dst_node:
            latency, bandwidth = (self._self_link if src == dst
                                  else self._intra_link)
            return self._shortcut_transfer(src, dst, nbytes, ready,
                                           latency, bandwidth)
        # inter-node: inject at the NIC, ascend the uplink timelines
        serial = nbytes / self._bw
        tx_free = self._tx_free
        inject_start = tx_free[src]
        if ready > inject_start:
            inject_start = ready
        sender_free = inject_start + serial
        tx_free[src] = sender_free
        level = self._climb(src_node, dst_node)
        t = sender_free
        radix = self._radix
        sw = src_node                       # walked up incrementally:
        for l in range(1, level):           # sw == src_node // radix**l
            sw //= radix
            queue = self._up_free[l - 1]
            if sw >= len(queue):
                queue.extend([0.0] * (sw + 1 - len(queue)))
            start = queue[sw]
            if t > start:
                start = t
            t = start + nbytes / self._up_bw[l - 1]
            queue[sw] = t
        arrival = t + 2 * level * self._hop
        delivered = self._rx_free[dst]
        if arrival > delivered:
            delivered = arrival
        delivered += serial
        self._rx_free[dst] = delivered
        self.messages_sent += 1
        self.bytes_sent += nbytes
        return _tuple_new(TransferTiming,
                          (inject_start, sender_free, arrival, delivered))


class DragonflyFabric(Fabric):
    """Groups of nodes with cheap local links and one global pipe each.

    Nodes partition into groups of ``nodes_per_group``.  Group-local
    inter-node traffic pays ``local_latency``; cross-group traffic pays
    ``global_latency`` (plus two local hops to/from the gateway) and —
    the contention model — serializes on the *source group's* shared
    global-link timeline at ``global_bandwidth``.  A placement that
    keeps a producer/consumer pair inside one group streams on local
    links; a partitioned placement funnels every stream through the
    producers' global pipes.
    """

    def __init__(self, config: MachineConfig, nranks: int):
        super().__init__(config, nranks)
        topo = config.topology
        self._npg = topo.nodes_per_group
        self._bw = config.network.bandwidth   # NIC injection/drain rate
        self._local_latency = topo.local_latency
        self._global_latency = topo.global_latency
        self._global_bw = topo.global_bandwidth
        ngroups = ((max(self._node) if self._node else 0) // self._npg) + 1
        #: _global_free[group] = when the group's global pipe is free
        self._global_free = [0.0] * ngroups

    # ------------------------------------------------------------------
    def _link(self, src: int, dst: int) -> Tuple[float, float]:
        if src < 0 or dst < 0:
            raise ValueError(f"negative rank in link lookup: {src}->{dst}")
        if src >= self._size or dst >= self._size:
            self._grow((src if src > dst else dst) + 1)
        if src == dst:
            return self._self_link
        node = self._node
        src_node, dst_node = node[src], node[dst]
        if src_node == dst_node:
            return self._intra_link
        if src_node // self._npg == dst_node // self._npg:
            return (self._local_latency, self._bw)
        return (self._global_latency + 2 * self._local_latency, self._bw)

    def transfer(self, src: int, dst: int, nbytes: int, ready: float
                 ) -> TransferTiming:
        if nbytes < 0:
            raise ValueError("negative message size")
        if src < 0 or dst < 0:
            raise ValueError(f"negative rank in transfer: {src}->{dst}")
        if src >= self._size or dst >= self._size:
            self._grow((src if src > dst else dst) + 1)
        node = self._node
        src_node, dst_node = node[src], node[dst]
        if src == dst or src_node == dst_node:
            latency, bandwidth = (self._self_link if src == dst
                                  else self._intra_link)
            return self._shortcut_transfer(src, dst, nbytes, ready,
                                           latency, bandwidth)
        npg = self._npg
        if src_node // npg == dst_node // npg:
            # group-local: plain NIC discipline at the local latency
            return self._shortcut_transfer(
                src, dst, nbytes, ready, self._local_latency, self._bw)
        # cross-group: inject at the NIC, then the source group's pipe
        serial = nbytes / self._bw
        tx_free = self._tx_free
        inject_start = tx_free[src]
        if ready > inject_start:
            inject_start = ready
        sender_free = inject_start + serial
        tx_free[src] = sender_free
        group = src_node // npg
        pipes = self._global_free
        if group >= len(pipes):
            pipes.extend([0.0] * (group + 1 - len(pipes)))
        start = pipes[group]
        if sender_free > start:
            start = sender_free
        t = start + nbytes / self._global_bw
        pipes[group] = t
        arrival = t + self._global_latency + 2 * self._local_latency
        delivered = self._rx_free[dst]
        if arrival > delivered:
            delivered = arrival
        delivered += serial
        self._rx_free[dst] = delivered
        self.messages_sent += 1
        self.bytes_sent += nbytes
        return _tuple_new(TransferTiming,
                          (inject_start, sender_free, arrival, delivered))
