"""MPI-IO on a modeled parallel filesystem.

Implements the three write paths the paper's particle-I/O study
exercises (Section IV-D2):

``File.write_all``  (collective, two-phase)
    Real two-phase I/O: ranks agree on sizes (allgather), ship their
    buffers to a small set of aggregator ranks with *real simulated
    messages* (so the incast cost at scale is genuine), aggregators
    stream to the storage servers, and the collective completes with a
    barrier.  A changed file view charges ``view_setup_overhead`` —
    the cost iPIC3D pays every step because particle counts change.

``File.write_shared``  (independent, shared file pointer)
    Every write serializes through a global shared-pointer lock
    (``shared_pointer_overhead``) before streaming to the servers —
    cheap at low concurrency, a scaling sore at 8k ranks.

``File.write_at``  (independent, explicit offset)
    Just client overhead + server streaming; the primitive the
    decoupled I/O group uses underneath its aggressive buffering.

The storage backend is ``stripe_count`` servers of equal bandwidth
(summing to ``aggregate_bandwidth``); a write occupies the earliest-
free server, which yields contention under bursty collective dumps and
near-linear throughput for a few large buffered writes — exactly the
contrast Fig. 8 turns on.  Written bytes are retained in memory so
numeric-mode tests can assert on file contents.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from .comm import Comm, World
from .datatypes import payload_nbytes
from .engine import Delay
from .errors import IOError_


class _FileData:
    """Shared per-file state: content segments + shared pointer."""

    __slots__ = ("name", "segments", "shared_pointer", "open_count", "views")

    def __init__(self, name: str):
        self.name = name
        # list of (offset, payload, nbytes); offset None = append order
        self.segments: List[Tuple[Optional[int], Any, int]] = []
        self.shared_pointer = 0
        self.open_count = 0
        self.views: Dict[int, Tuple[int, Any]] = {}  # rank -> (disp, filetype)

    @property
    def nbytes(self) -> int:
        return sum(n for _, _, n in self.segments)


class FileSystem:
    """The modeled storage backend (one per :class:`World`)."""

    def __init__(self, world: World):
        self.world = world
        self.cfg = world.config.io
        self.files: Dict[str, _FileData] = {}
        self._backend_free = 0.0
        self._pointer_lock_free = 0.0
        # statistics
        self.write_calls = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    def get_file(self, name: str, create: bool) -> _FileData:
        fd = self.files.get(name)
        if fd is None:
            if not create:
                raise IOError_(f"file {name!r} does not exist")
            fd = _FileData(name)
            self.files[name] = fd
        return fd

    def server_write(self, nbytes: int, ready: float) -> float:
        """Commit ``nbytes`` to the striped backend; return completion.

        Large writes stripe across all OSTs, so a single write moves at
        ``min(per_client_bandwidth, aggregate_bandwidth)``; *concurrent*
        writers share the backend: each write occupies the aggregate
        timeline for ``nbytes / aggregate_bandwidth``, which serializes
        bursts (the collective-dump pile-up) while leaving a lone
        buffered writer client-bound.
        """
        occupancy = nbytes / self.cfg.aggregate_bandwidth
        start = max(ready, self._backend_free)
        self._backend_free = start + occupancy
        client_done = ready + nbytes / self.cfg.per_client_bandwidth
        end = max(start + occupancy, client_done)
        self.write_calls += 1
        self.bytes_written += nbytes
        return end

    def acquire_shared_pointer(self, ready: float) -> float:
        """Serialize through the shared-file-pointer lock; returns the
        time the pointer update completes."""
        start = max(ready, self._pointer_lock_free)
        end = start + self.cfg.shared_pointer_overhead
        self._pointer_lock_free = end
        return end


def _filesystem(world: World) -> FileSystem:
    if world.filesystem is None:
        world.filesystem = FileSystem(world)
    return world.filesystem


class File:
    """Per-rank handle to an open simulated file."""

    def __init__(self, comm: Comm, data: _FileData, mode: str):
        self.comm = comm
        self._data = data
        self.mode = mode
        self.closed = False
        self._view_disp = 0
        self._view_set = False

    # ------------------------------------------------------------------
    def _check_writable(self) -> None:
        if self.closed:
            raise IOError_(f"write on closed file {self._data.name!r}")
        if "w" not in self.mode and "a" not in self.mode:
            raise IOError_(f"file {self._data.name!r} not opened for writing")

    @property
    def fs(self) -> FileSystem:
        return _filesystem(self.comm.world)

    @property
    def name(self) -> str:
        return self._data.name

    # ------------------------------------------------------------------
    def set_view(self, displacement: int, filetype: Any = None
                 ) -> Generator[Any, Any, None]:
        """Collective view definition.

        Charges ``view_setup_overhead`` on every rank plus an allgather
        (displacement agreement) — the recurring cost of collective
        particle I/O with a changing layout."""
        self._check_writable()
        yield Delay(self.fs.cfg.view_setup_overhead)
        yield from self.comm.allgather(displacement)
        self._data.views[self.comm.rank] = (displacement, filetype)
        self._view_disp = displacement
        self._view_set = True

    def write_at(self, offset: int, data: Any, nbytes: Optional[int] = None
                 ) -> Generator[Any, Any, int]:
        """Independent write at an explicit offset; returns bytes written."""
        self._check_writable()
        n = payload_nbytes(data) if nbytes is None else int(nbytes)
        t0 = self.comm.world.engine.now
        yield Delay(self.fs.cfg.client_overhead)
        done = self.fs.server_write(n, self.comm.world.engine.now)
        yield Delay(max(0.0, done - self.comm.world.engine.now))
        self._data.segments.append((offset, data, n))
        self._record_io(t0)
        return n

    def write_shared(self, data: Any, nbytes: Optional[int] = None
                     ) -> Generator[Any, Any, int]:
        """Independent write at the shared file pointer.

        Serializes through the global pointer lock, then streams."""
        self._check_writable()
        n = payload_nbytes(data) if nbytes is None else int(nbytes)
        t0 = self.comm.world.engine.now
        yield Delay(self.fs.cfg.client_overhead)
        now = self.comm.world.engine.now
        pointer_done = self.fs.acquire_shared_pointer(now)
        offset = self._data.shared_pointer
        self._data.shared_pointer += n
        amplified = int(n * self.fs.cfg.shared_fragment_factor)
        done = self.fs.server_write(amplified, pointer_done)
        yield Delay(max(0.0, done - now))
        self._data.segments.append((offset, data, n))
        self._record_io(t0)
        return n

    def write_all(self, data: Any, nbytes: Optional[int] = None
                  ) -> Generator[Any, Any, int]:
        """Collective two-phase write (``MPI_File_write_all``).

        Every rank of the communicator must call.  Phase 1 allgathers
        sizes and ships buffers to ``min(stripe_count, P)`` aggregator
        ranks (real messages — incast is modeled, not assumed); phase 2
        has aggregators stream to the servers; a barrier closes the
        collective.
        """
        self._check_writable()
        comm = self.comm
        cfg = self.fs.cfg
        n = payload_nbytes(data) if nbytes is None else int(nbytes)
        t0 = comm.world.engine.now
        yield Delay(cfg.client_overhead)
        # collective bookkeeping cost grows linearly in P (two-phase
        # exchange metadata), paid by every rank
        yield Delay(cfg.collective_exchange_overhead * comm.size)
        sizes = yield from comm.allgather(n)
        naggr = max(1, min(cfg.stripe_count, comm.size))
        my_aggr = comm.rank % naggr
        is_aggr = comm.rank < naggr
        tag = comm._next_coll_tag()
        # displacement of this rank in the shared dump
        my_offset = self._view_disp + sum(sizes[:comm.rank])

        from .datatypes import SizedPayload
        if is_aggr:
            # collect from my clients (including myself, locally)
            chunks = [(my_offset, data, n)]
            clients = [r for r in range(comm.size)
                       if r % naggr == comm.rank and r != comm.rank]
            for _ in clients:
                (payload, _st) = yield from comm.wait(
                    comm.irecv(source=-1, tag=tag), label="write_all-gather"
                )
                chunks.append(payload.data)
            total = sum(c[2] for c in chunks)
            # dynamic-view collective writes hit stripe read-modify-write
            amplified = int(total * (cfg.collective_unaligned_factor
                                     if self._view_set else 1.0))
            done = self.fs.server_write(amplified, comm.world.engine.now)
            yield Delay(max(0.0, done - comm.world.engine.now))
            for off, payload, sz in chunks:
                if sz > 0:
                    self._data.segments.append((off, payload, sz))
        else:
            wire = SizedPayload((my_offset, data, n), n + 16)
            yield from comm.send(wire, dest=my_aggr, tag=tag)
        yield from comm.barrier()
        self._record_io(t0)
        return n

    def close(self) -> Generator[Any, Any, None]:
        """Collective close (barrier + handle invalidation)."""
        if self.closed:
            raise IOError_(f"double close of {self._data.name!r}")
        yield from self.comm.barrier()
        self.closed = True
        self._data.open_count -= 1

    # ------------------------------------------------------------------
    def _record_io(self, t0: float) -> None:
        """Trace the whole I/O call as one ``io`` interval."""
        tracer = self.comm.world.tracer
        if tracer is not None:
            tracer.record(self.comm.global_rank, "io", self._data.name,
                          t0, self.comm.world.engine.now)


def open_file(comm: Comm, name: str, mode: str = "w"
              ) -> Generator[Any, Any, File]:
    """Collective file open (``MPI_File_open``).

    All ranks of ``comm`` must call with the same name and mode."""
    fs = _filesystem(comm.world)
    yield Delay(fs.cfg.open_overhead)
    yield from comm.barrier()
    data = fs.get_file(name, create=("w" in mode or "a" in mode))
    data.open_count += 1
    return File(comm, data, mode)


def read_back(world: World, name: str) -> List[Tuple[Optional[int], Any, int]]:
    """Test helper: the (offset, payload, nbytes) segments written to
    ``name``, in commit order."""
    fs = _filesystem(world)
    if name not in fs.files:
        raise IOError_(f"file {name!r} does not exist")
    return list(fs.files[name].segments)
