"""Collective operations over the point-to-point layer.

Implemented with the textbook algorithms an MPI library would pick at
these sizes — binomial trees for rooted collectives, reduce+bcast for
``allreduce``, gather+bcast for ``allgather`` — so that their cost
*scales with the communicator size* exactly as the paper's complexity
arguments require (e.g. "the complexity of the reduce operation
naturally decreases when moving ... to a smaller subset of processes",
Section IV-B).

Non-blocking collectives (``ibarrier``, ``ireduce``, ``iallgatherv``)
run the blocking algorithm in a spawned progress coroutine, i.e. they
get *asynchronous progress* as if the MPI library had a progress
thread.  This errs generous toward the paper's reference
implementations (Hoefler-style non-blocking CG, Iallgatherv/Ireduce
MapReduce), which keeps our comparisons conservative.

Reduction ``op`` is any commutative+associative binary callable
(default: ``operator.add``, which also concatenates or sums NumPy
arrays elementwise).  ``op_cost(a, b) -> seconds`` optionally charges
compute time per merge — this is how the MapReduce case study accounts
for the real cost of merging histograms inside the reduction tree.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from .engine import Spawn, wait_flag
from .request import Request


def _vrank(rank: int, root: int, size: int) -> int:
    return (rank - root) % size


def _lrank(vrank: int, root: int, size: int) -> int:
    return (vrank + root) % size


def _resolve_op(op: Optional[Callable]) -> Callable:
    return operator.add if op is None else op


# ----------------------------------------------------------------------
# context-switched p2p helpers: collectives talk in the collective
# context so they can never match application point-to-point traffic.
# ----------------------------------------------------------------------

def _csend(comm, data: Any, dest: int, tag: int,
           nbytes: Optional[int] = None) -> Generator:
    req = yield from comm.isend(data, dest, tag, _ctx=comm.context_coll,
                                nbytes=nbytes)
    yield from comm.wait(req, label="coll-send")


def _crecv(comm, source: int, tag: int) -> Generator:
    req = comm.irecv(source, tag, _ctx=comm.context_coll)
    data, _ = yield from comm.wait(req, label="coll-recv")
    return data


# ----------------------------------------------------------------------
# rooted collectives
# ----------------------------------------------------------------------

def bcast(comm, data: Any, root: int = 0) -> Generator[Any, Any, Any]:
    """Binomial-tree broadcast; returns the broadcast value on every rank.

    The payload is sized exactly once (at the root) and the size rides
    along the tree, so broadcasting a P-element container costs O(P)
    sizing work in total instead of O(P^2)."""
    from .datatypes import payload_nbytes

    comm._check_rank(root)
    size, rank = comm.size, comm.rank
    tag = comm._next_coll_tag()
    if size == 1:
        return data
    vr = _vrank(rank, root, size)
    nb = payload_nbytes(data) if vr == 0 else 0
    mask = 1
    while mask < size:
        if vr & mask:
            src = _lrank(vr - mask, root, size)
            data, nb = yield from _crecv(comm, src, tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vr + mask < size and not (vr & mask):
            dst = _lrank(vr + mask, root, size)
            yield from _csend(comm, (data, nb), dst, tag, nbytes=nb + 8)
        mask >>= 1
    return data


def reduce(comm, value: Any, op: Optional[Callable] = None, root: int = 0,
           op_cost: Optional[Callable] = None) -> Generator[Any, Any, Any]:
    """Binomial-tree reduction to ``root``; returns the result on root,
    ``None`` elsewhere.  ``op`` must be commutative (tree order is not
    rank order)."""
    comm._check_rank(root)
    op = _resolve_op(op)
    size, rank = comm.size, comm.rank
    tag = comm._next_coll_tag()
    if size == 1:
        return value
    vr = _vrank(rank, root, size)
    acc = value
    mask = 1
    while mask < size:
        if vr & mask:
            dst = _lrank(vr - mask, root, size)
            yield from _csend(comm, acc, dst, tag)
            return None
        peer = vr + mask
        if peer < size:
            child = yield from _crecv(comm, _lrank(peer, root, size), tag)
            if op_cost is not None:
                yield from comm.compute(op_cost(acc, child), label="reduce-op")
            acc = op(acc, child)
        mask <<= 1
    return acc


def gather(comm, value: Any, root: int = 0) -> Generator[Any, Any, Optional[List]]:
    """Binomial-tree gather; root receives ``[v_0, ..., v_{P-1}]``.

    Sub-tree sizes are accumulated incrementally and sent as explicit
    wire sizes: each rank sizes only its own contribution once."""
    from .datatypes import payload_nbytes

    comm._check_rank(root)
    size, rank = comm.size, comm.rank
    tag = comm._next_coll_tag()
    if size == 1:
        return [value]
    vr = _vrank(rank, root, size)
    acc = {rank: value}
    acc_nb = payload_nbytes(value) + 8
    mask = 1
    while mask < size:
        if vr & mask:
            dst = _lrank(vr - mask, root, size)
            yield from _csend(comm, (acc, acc_nb), dst, tag, nbytes=acc_nb)
            return None
        peer = vr + mask
        if peer < size:
            child, child_nb = yield from _crecv(
                comm, _lrank(peer, root, size), tag)
            acc.update(child)
            acc_nb += child_nb
        mask <<= 1
    return [acc[r] for r in range(size)]


def scatter(comm, values: Optional[Sequence[Any]], root: int = 0
            ) -> Generator[Any, Any, Any]:
    """Binomial-tree scatter of ``values`` (length = comm.size) from root."""
    comm._check_rank(root)
    size, rank = comm.size, comm.rank
    tag = comm._next_coll_tag()
    if rank == root:
        if values is None or len(values) != size:
            raise ValueError("scatter root must supply comm.size values")
        bundle = {r: values[r] for r in range(size)}
    else:
        bundle = None
    if size == 1:
        return bundle[rank]
    vr = _vrank(rank, root, size)
    mask = 1
    while mask < size:
        if vr & mask:
            src = _lrank(vr - mask, root, size)
            bundle = yield from _crecv(comm, src, tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vr + mask < size and not (vr & mask):
            lo = vr + mask
            hi = min(vr + 2 * mask, size)
            sub = {
                _lrank(v, root, size): bundle.pop(_lrank(v, root, size))
                for v in range(lo, hi)
            }
            dst = _lrank(vr + mask, root, size)
            yield from _csend(comm, sub, dst, tag)
        mask >>= 1
    return bundle[rank]


# ----------------------------------------------------------------------
# symmetric collectives
# ----------------------------------------------------------------------

def barrier(comm) -> Generator[Any, Any, None]:
    """Tree barrier: binomial gather of tokens, then binomial release."""
    yield from reduce(comm, 0, op=lambda a, b: 0, root=0)
    yield from bcast(comm, None, root=0)


def allreduce(comm, value: Any, op: Optional[Callable] = None,
              op_cost: Optional[Callable] = None) -> Generator[Any, Any, Any]:
    """reduce-to-0 + bcast (the MPICH choice for medium payloads)."""
    result = yield from reduce(comm, value, op, root=0, op_cost=op_cost)
    result = yield from bcast(comm, result, root=0)
    return result


def allgather(comm, value: Any) -> Generator[Any, Any, List]:
    """gather-to-0 + bcast of the assembled vector."""
    vec = yield from gather(comm, value, root=0)
    vec = yield from bcast(comm, vec, root=0)
    return vec


def allgatherv(comm, value: Any) -> Generator[Any, Any, List]:
    """Variable-size allgather.

    With Python payloads the v-variant is semantically identical to
    :func:`allgather` (element sizes are free to differ); it exists so
    application code reads like its MPI original
    (``MPI_Iallgatherv`` in the paper's MapReduce reference).
    """
    result = yield from allgather(comm, value)
    return result


def alltoall(comm, values: Sequence[Any]) -> Generator[Any, Any, List]:
    """Ring-schedule personalized all-to-all.

    Step ``k`` sends to ``rank+k`` and receives from ``rank-k``; P-1
    steps, one in-flight exchange per step.  O(P^2) messages total —
    faithful to why the paper calls all-to-all patterns "difficult to
    optimize at large scale"."""
    size, rank = comm.size, comm.rank
    if len(values) != size:
        raise ValueError("alltoall requires comm.size values")
    tag = comm._next_coll_tag()
    out: List[Any] = [None] * size
    out[rank] = values[rank]
    for step in range(1, size):
        dst = (rank + step) % size
        src = (rank - step) % size
        rreq = comm.irecv(src, tag, _ctx=comm.context_coll)
        sreq = yield from comm.isend(values[dst], dst, tag,
                                     _ctx=comm.context_coll)
        yield from comm.wait(sreq, label="alltoall-send")
        data, _ = yield from comm.wait(rreq, label="alltoall-recv")
        out[src] = data
    return out


def alltoallv(comm, sends: Dict[int, Any], recv_from: Sequence[int],
              scan_seconds_per_peer: float = 2.0e-6
              ) -> Generator[Any, Any, Dict[int, Any]]:
    """Sparse personalized exchange (``MPI_Alltoallv`` with mostly-zero
    counts — the reference CG's halo exchange [17]).

    Every rank pays an O(P) argument-scan cost (the count/displacement
    vectors are P long even when only six entries are non-zero) — the
    well-known scalability tax of vector collectives, and the reason
    the blocking reference CG degrades at scale (Fig. 6).  Non-zero
    pairs then exchange real messages.

    ``sends`` maps destination local rank -> payload; ``recv_from``
    lists the local ranks this rank will receive from (the caller knows
    its recvcounts, as in MPI).  Returns ``{source: payload}``.
    """
    tag = comm._next_coll_tag()
    if scan_seconds_per_peer > 0 and comm.size > 1:
        yield from comm.compute(scan_seconds_per_peer * (comm.size - 1),
                                label="alltoallv-scan")
    rreqs = {src: comm.irecv(src, tag, _ctx=comm.context_coll)
             for src in recv_from}
    sreqs = []
    for dst, payload in sends.items():
        req = yield from comm.isend(payload, dst, tag,
                                    _ctx=comm.context_coll)
        sreqs.append(req)
    for req in sreqs:
        yield from comm.wait(req, label="alltoallv-send")
    out = {}
    for src, req in rreqs.items():
        data, _ = yield from comm.wait(req, label="alltoallv-recv")
        out[src] = data
    return out


def scan(comm, value: Any, op: Optional[Callable] = None
         ) -> Generator[Any, Any, Any]:
    """Inclusive prefix reduction (linear chain; not on any hot path)."""
    op = _resolve_op(op)
    size, rank = comm.size, comm.rank
    tag = comm._next_coll_tag()
    acc = value
    if rank > 0:
        prev = yield from _crecv(comm, rank - 1, tag)
        acc = op(prev, value)
    if rank < size - 1:
        yield from _csend(comm, acc, rank + 1, tag)
    return acc


# ----------------------------------------------------------------------
# non-blocking collectives: blocking algorithm in a progress coroutine
# ----------------------------------------------------------------------

def _spawn_collective(comm, algo_gen, label: str) -> Generator[Any, Any, Request]:
    req = Request(f"i{label}", label=f"i{label}@{comm.name}")

    def progress():
        result = yield from algo_gen
        comm.world.engine.set_flag(req.flag, result)

    yield Spawn(progress(), name=f"i{label}-r{comm.rank}", daemon=True)
    return req


def ibarrier(comm) -> Generator[Any, Any, Request]:
    """Non-blocking barrier; complete with ``comm.wait(req)``."""
    req = yield from _spawn_collective(comm, barrier(comm), "barrier")
    return req


def ireduce(comm, value: Any, op: Optional[Callable] = None, root: int = 0,
            op_cost: Optional[Callable] = None) -> Generator[Any, Any, Request]:
    """Non-blocking :func:`reduce`; the wait's payload is the result on
    root (None elsewhere)."""
    req = yield from _spawn_collective(
        comm, reduce(comm, value, op, root, op_cost=op_cost), "reduce"
    )
    return req


def iallgatherv(comm, value: Any) -> Generator[Any, Any, Request]:
    """Non-blocking :func:`allgatherv` (the paper's MapReduce reference
    builds its global key set with this)."""
    req = yield from _spawn_collective(comm, allgatherv(comm, value), "allgatherv")
    return req


def iallreduce(comm, value: Any, op: Optional[Callable] = None
               ) -> Generator[Any, Any, Request]:
    """Non-blocking :func:`allreduce`; every rank's wait returns the
    reduced value."""
    req = yield from _spawn_collective(comm, allreduce(comm, value, op), "allreduce")
    return req


def ialltoallv(comm, sends: Dict[int, Any], recv_from: Sequence[int],
               scan_seconds_per_peer: float = 2.0e-6
               ) -> Generator[Any, Any, Request]:
    """Non-blocking :func:`alltoallv`: the scan and exchange progress in
    a spawned coroutine, overlapping the caller's compute — the
    Hoefler-style non-blocking reference CG [17]."""
    req = yield from _spawn_collective(
        comm, alltoallv(comm, sends, recv_from, scan_seconds_per_peer),
        "alltoallv",
    )
    return req
