"""Machine configuration presets for the simulated runtime.

A :class:`MachineConfig` bundles the network, noise, I/O and compute
parameters that define a simulated platform.  The ``beskow()`` preset
approximates the paper's testbed — the Beskow Cray XC40 at PDC (Aries
dragonfly interconnect, two 16-core Haswell sockets per node, Lustre
storage) — at the level of fidelity the reproduction needs: per-message
latency, per-NIC bandwidth, intra-node shortcuts, filesystem aggregate
bandwidth and per-operation overheads.

All values are plain floats in SI units (seconds, bytes, bytes/second)
so experiments can sweep them directly.

Every config is JSON round-trippable (``to_json()`` /
``from_json()``): a platform is *data*, so :mod:`repro.study` job
specs can carry it to worker processes, hash it into cache keys and
persist it in scenario files.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional, Union

from .placement import (
    Placement,
    PlacementPolicy,
    block_node_of,
    placement_from_json,
    resolve_placement,
)


class _JsonConfig:
    """Shared JSON round-trip for the flat (all-scalar) config
    dataclasses; :class:`MachineConfig` overrides both ends to recurse
    into its nested configs."""

    def to_json(self) -> Dict[str, Any]:
        """This config as a JSON-serializable dict (field -> value)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "_JsonConfig":
        """Rebuild from :meth:`to_json` output; always validates."""
        try:
            obj = cls(**data)
        except TypeError as exc:
            raise ValueError(
                f"bad {cls.__name__} JSON (fields are "
                f"{[f.name for f in fields(cls)]}): {exc}") from exc
        obj.validate()
        return obj


@dataclass(frozen=True)
class TopologyConfig(_JsonConfig):
    """Which fabric the interconnect model uses, and its knobs.

    ``kind`` selects one of the fabric implementations (see
    :func:`repro.simmpi.network.build_network` and DESIGN.md §9):

    * ``"flat"`` — the two-level intra/inter-node LogGP model (default;
      bit-identical to the seed and to ``OracleNetwork``).
    * ``"fat_tree"`` — nodes are leaves of a ``radix``-ary tree; a
      message climbs to the lowest common switch, paying per-hop
      ``link_latency`` and queueing on the per-level uplink timelines,
      whose bandwidth tapers by ``taper`` per level (oversubscription).
    * ``"dragonfly"`` — nodes are partitioned into groups of
      ``nodes_per_group``; group-local traffic pays ``local_latency``,
      cross-group traffic pays ``global_latency`` and serializes on the
      source group's shared global-link timeline.

    ``NetworkConfig.fabric_dilation`` only affects the flat fabric: it
    is the flat model's stand-in for exactly the topology effects the
    fat-tree/dragonfly fabrics model explicitly (see
    :mod:`repro.simmpi.fabrics`).
    """

    kind: str = "flat"
    # --- fat-tree ---
    radix: int = 8                    # nodes/switches per switch
    link_latency: float = 0.3e-6      # per tree hop (s)
    uplink_bandwidth: float = 8.0e9   # level-1 uplink (B/s)
    taper: float = 2.0                # uplink bandwidth divisor per level
    # --- dragonfly ---
    nodes_per_group: int = 8
    local_latency: float = 0.5e-6     # intra-group, inter-node (s)
    global_latency: float = 2.0e-6    # inter-group (s)
    global_bandwidth: float = 5.0e9   # one shared global pipe per group

    KINDS = ("flat", "fat_tree", "dragonfly")

    def validate(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(
                f"unknown topology kind {self.kind!r}; "
                f"choose from {self.KINDS}")
        if self.radix < 2:
            raise ValueError("fat-tree radix must be >= 2")
        if self.taper < 1.0:
            raise ValueError("fat-tree taper must be >= 1")
        if self.link_latency < 0 or self.local_latency < 0 \
                or self.global_latency < 0:
            raise ValueError("topology latencies must be non-negative")
        if self.uplink_bandwidth <= 0 or self.global_bandwidth <= 0:
            raise ValueError("topology bandwidths must be positive")
        if self.nodes_per_group <= 0:
            raise ValueError("nodes_per_group must be positive")


def resolve_topology(spec: Union[None, str, TopologyConfig]
                     ) -> TopologyConfig:
    """Normalize a topology spec: None → flat, names → default configs.

    Always validates, so a bad spec fails where it is written, not at
    the first run."""
    if spec is None:
        return TopologyConfig()
    if isinstance(spec, TopologyConfig):
        spec.validate()
        return spec
    if isinstance(spec, str):
        kind = spec.replace("-", "_")
        cfg = TopologyConfig(kind=kind)
        cfg.validate()
        return cfg
    raise ValueError(
        f"topology must be None, a kind name or a TopologyConfig, "
        f"got {type(spec).__name__}")


@dataclass(frozen=True)
class NetworkConfig(_JsonConfig):
    """Latency/bandwidth/overhead parameters of the interconnect model.

    The model is LogGP-flavored: a message of ``n`` bytes costs the
    sender ``o_send`` CPU seconds, occupies its NIC for ``n / bandwidth``
    seconds, traverses the fabric in ``latency`` (plus an optional
    per-hop term scaled by job size), and costs the receiver ``o_recv``
    CPU seconds plus NIC occupancy on delivery.  Messages at or below
    ``eager_threshold`` complete locally at the sender as soon as they
    are injected (eager protocol); larger ones synchronize with the
    matching receive (rendezvous).
    """

    latency: float = 1.4e-6            # one-way fabric latency (s)
    bandwidth: float = 10.0e9          # per-NIC injection bandwidth (B/s)
    o_send: float = 0.4e-6             # sender CPU overhead per message (s)
    o_recv: float = 0.6e-6             # receiver CPU overhead per message (s)
    eager_threshold: int = 8192        # bytes; <= is eager, > is rendezvous
    intra_node_latency: float = 0.25e-6
    intra_node_bandwidth: float = 40.0e9
    # Mild fabric dilation with job size: latency *= 1 + fabric_dilation *
    # log2(P / dilation_base) for P > dilation_base.  Captures the extra
    # dragonfly hops / adaptive-routing cost of large allocations without
    # a flit-level model.
    fabric_dilation: float = 0.04
    dilation_base: int = 64

    def validate(self) -> None:
        if self.latency < 0 or self.intra_node_latency < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth <= 0 or self.intra_node_bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.eager_threshold < 0:
            raise ValueError("eager_threshold must be non-negative")


@dataclass(frozen=True)
class NoiseConfig(_JsonConfig):
    """System-noise and process-skew parameters.

    ``persistent_skew`` is the relative std-dev of a per-rank constant
    speed factor (thermal variance, core binning).  ``quantum`` /
    ``quantum_fraction`` model transient OS noise as in Petrini et al.
    (SC'03): while computing, a rank is interrupted on average every
    ``quantum`` seconds and loses ``quantum_fraction`` of that interval.
    ``seed`` makes the whole noise process reproducible.
    """

    persistent_skew: float = 0.02
    quantum: float = 0.010
    quantum_fraction: float = 0.01
    seed: int = 0xC0FFEE

    def validate(self) -> None:
        if self.persistent_skew < 0:
            raise ValueError("persistent_skew must be non-negative")
        if not (0.0 <= self.quantum_fraction < 1.0):
            raise ValueError("quantum_fraction must be in [0, 1)")
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")


@dataclass(frozen=True)
class IOConfig(_JsonConfig):
    """Parallel-filesystem model parameters (Lustre-flavored).

    ``aggregate_bandwidth`` is the total sustainable write bandwidth of
    the storage backend; concurrent writers share it.  ``client_overhead``
    is the fixed client-side cost of every I/O call (syscall + RPC).
    ``shared_pointer_overhead`` is the extra serialization cost each
    ``write_shared`` pays to atomically advance the shared file pointer.
    ``view_setup_overhead`` is the cost of (re)defining a file view —
    the paper's collective particle I/O pays it every step because the
    particle layout changes.  ``stripe_count`` bounds how many clients
    can stream concurrently at full speed.
    """

    aggregate_bandwidth: float = 8.0e9
    per_client_bandwidth: float = 1.2e9
    client_overhead: float = 60e-6
    shared_pointer_overhead: float = 250e-6
    view_setup_overhead: float = 450e-6
    collective_exchange_overhead: float = 3.0e-6  # per rank, per write_all
    stripe_count: int = 48
    open_overhead: float = 2.0e-3
    # Server-byte amplification factors (Lustre read-modify-write and
    # fragmentation pathologies; see DESIGN.md):
    # - collective writes through a *dynamic, unaligned* file view pay
    #   stripe RMW on nearly every extent;
    # - shared-pointer writes fragment across stripes but stay
    #   append-ordered.
    collective_unaligned_factor: float = 12.0
    shared_fragment_factor: float = 3.0

    def validate(self) -> None:
        if self.aggregate_bandwidth <= 0 or self.per_client_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.stripe_count <= 0:
            raise ValueError("stripe_count must be positive")
        if self.collective_unaligned_factor < 1 or self.shared_fragment_factor < 1:
            raise ValueError("amplification factors must be >= 1")


@dataclass(frozen=True)
class MachineConfig:
    """A complete simulated platform."""

    name: str = "generic"
    ranks_per_node: int = 32
    network: NetworkConfig = field(default_factory=NetworkConfig)
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    io: IOConfig = field(default_factory=IOConfig)
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    #: rank→node policy (None = block, the seed rule); see
    #: :mod:`repro.simmpi.placement`
    placement: Optional[PlacementPolicy] = None
    # Relative compute speed (1.0 = calibration baseline).  Lets tests
    # make compute free (speed -> inf is approximated by a large value).
    compute_speed: float = 1.0

    def validate(self) -> None:
        if self.ranks_per_node <= 0:
            raise ValueError("ranks_per_node must be positive")
        if self.compute_speed <= 0:
            raise ValueError("compute_speed must be positive")
        if self.placement is not None \
                and not isinstance(self.placement, PlacementPolicy):
            raise ValueError(
                f"placement must be a PlacementPolicy or None, "
                f"got {type(self.placement).__name__}")
        self.network.validate()
        self.noise.validate()
        self.io.validate()
        self.topology.validate()

    def placement_for(self, nranks: int) -> Placement:
        """Resolve this machine's placement policy for ``nranks``."""
        return resolve_placement(self.placement).resolve(
            nranks, self.ranks_per_node)

    def node_of(self, rank: int) -> int:
        """Node id of ``rank`` under *block* placement.

        .. deprecated:: PR 3
           Rank→node mapping is owned by :mod:`repro.simmpi.placement`;
           use :meth:`placement_for` (or the fabric's resolved node
           map).  Kept as a thin forwarding shim so seed-era callers —
           including :class:`repro.simmpi.oracle.OracleNetwork`, which
           must stay byte-identical — keep working unchanged.  This
           shim ignores any configured placement policy.
        """
        return block_node_of(rank, self.ranks_per_node)

    def with_(self, **kwargs) -> "MachineConfig":
        """Return a copy with the given top-level fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # JSON round-trip (nested, unlike the flat configs)
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """The whole platform as a JSON-serializable dict."""
        return {
            "name": self.name,
            "ranks_per_node": self.ranks_per_node,
            "network": self.network.to_json(),
            "noise": self.noise.to_json(),
            "io": self.io.to_json(),
            "topology": self.topology.to_json(),
            "placement": (self.placement.to_json()
                          if self.placement is not None else None),
            "compute_speed": self.compute_speed,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "MachineConfig":
        """Rebuild a platform from :meth:`to_json` output; validates."""
        known = {"name", "ranks_per_node", "network", "noise", "io",
                 "topology", "placement", "compute_speed"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"bad MachineConfig JSON: unknown fields {sorted(unknown)}")
        kwargs: Dict[str, Any] = {
            k: data[k] for k in ("name", "ranks_per_node", "compute_speed")
            if k in data
        }
        for key, sub in (("network", NetworkConfig), ("noise", NoiseConfig),
                         ("io", IOConfig), ("topology", TopologyConfig)):
            if key in data:
                kwargs[key] = sub.from_json(data[key])
        placement = data.get("placement")
        if placement is not None:
            kwargs["placement"] = placement_from_json(placement)
        cfg = cls(**kwargs)
        cfg.validate()
        return cfg


def beskow(noise_seed: Optional[int] = None) -> MachineConfig:
    """The paper's testbed: Beskow, a Cray XC40 with Aries interconnect.

    1,676 nodes x 2 x 16-core Xeon E5-2698v3; we model 32 ranks/node,
    Aries-class latency/bandwidth, and a Lustre-class filesystem.
    """
    noise = NoiseConfig()
    if noise_seed is not None:
        noise = replace(noise, seed=noise_seed)
    cfg = MachineConfig(
        name="beskow-xc40",
        ranks_per_node=32,
        network=NetworkConfig(),
        noise=noise,
        io=IOConfig(),
    )
    cfg.validate()
    return cfg


def quiet_testbed() -> MachineConfig:
    """A noise-free machine for unit tests needing exact timing."""
    cfg = MachineConfig(
        name="quiet",
        ranks_per_node=32,
        network=NetworkConfig(fabric_dilation=0.0),
        noise=NoiseConfig(persistent_skew=0.0, quantum_fraction=0.0),
        io=IOConfig(),
    )
    cfg.validate()
    return cfg


def ideal_network_testbed() -> MachineConfig:
    """Zero-latency, (near) infinite-bandwidth machine: isolates algorithmic
    structure from network cost in tests."""
    cfg = MachineConfig(
        name="ideal-net",
        ranks_per_node=10**9,
        network=NetworkConfig(
            latency=0.0,
            bandwidth=1e18,
            o_send=0.0,
            o_recv=0.0,
            eager_threshold=1 << 62,
            intra_node_latency=0.0,
            intra_node_bandwidth=1e18,
            fabric_dilation=0.0,
        ),
        noise=NoiseConfig(persistent_skew=0.0, quantum_fraction=0.0),
        io=IOConfig(),
    )
    cfg.validate()
    return cfg
