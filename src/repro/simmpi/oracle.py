"""The pre-optimization slow path, preserved verbatim as an oracle.

PR 2 rebuilt the simulator's hot loops (type-keyed syscall dispatch,
preallocated resumers, indexed mailboxes, flat NIC timelines).  The
optimizations are only admissible because they are *observationally
equivalent*: a simulation must produce bit-identical virtual-time
results — final times, message counts, per-rank values — on either
path.  This module keeps the original implementations alive so that
equivalence stays checkable forever:

:class:`OracleEngine`
    The seed engine loop: ``isinstance`` syscall chains, one closure
    per scheduled resumption, eagerly formatted ``blocked_on``
    diagnostics, and one heap event per woken waiter.

:class:`OracleNetwork`
    The seed network model: dict-based NIC timelines and per-call
    ``(latency, bandwidth)`` resolution through the config object.

:data:`LinearMailbox`
    Re-exported from :mod:`repro.simmpi.matching`: the linear-scan
    matching oracle.

``repro.bench.perf`` runs whole scenarios against this trio (via the
``engine_factory`` / ``mailbox_factory`` / ``network_factory``
injection points on :func:`repro.simmpi.launcher.run`) and asserts the
fast path reproduces the oracle's virtual-time results exactly; the
same pairing yields the before/after events-per-second comparison in
``BENCH_perf.json``.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Tuple

from .config import MachineConfig
from .engine import (
    Delay,
    Engine,
    EventFlag,
    ProcessHandle,
    Spawn,
    WaitFlag,
    _Process,
    format_label,
)
from .matching import LinearMailbox  # noqa: F401  (re-export)
from .network import TransferTiming


class OracleEngine(Engine):
    """The seed scheduler, kept cycle-for-cycle faithful.

    Every override below is the pre-optimization implementation
    (modulo the lazy-label formatting needed to coexist with the new
    :class:`~repro.simmpi.engine.EventFlag`).  Virtual-time behaviour
    is identical to :class:`~repro.simmpi.engine.Engine` — replay tests
    assert it — only the per-event Python cost differs.
    """

    def spawn(self, gen: Generator, name: str = "proc",
              daemon: bool = False) -> ProcessHandle:
        handle = ProcessHandle(name)
        proc = _Process(gen, handle, self, daemon=daemon)
        self._procs.append(proc)
        if not daemon:
            self._live += 1
        self.call_at(self.now, lambda: self._step(proc, None))
        return handle

    def set_flag(self, flag: EventFlag, payload: Any = None) -> None:
        """Seed behaviour: one heap event per waiter (the fast path
        wakes all waiters through a single callback)."""
        if flag.is_set:
            return
        flag.is_set = True
        flag.time = self.now
        flag.payload = payload
        waiters, flag._waiters = flag._waiters, []
        for proc in waiters:
            self.call_at(self.now, lambda p=proc, f=flag: self._step(p, f.payload))

    def _step(self, proc: _Process, sendval: Any) -> None:
        """Seed interpreter: isinstance chains and per-event closures."""
        while True:
            try:
                cmd = proc.gen.send(sendval)
            except StopIteration as stop:
                proc.handle.value = stop.value
                proc.blocked_on = "done"
                if not proc.daemon:
                    self._live -= 1
                self.set_flag(proc.handle.done_flag, stop.value)
                return
            except BaseException as exc:  # propagate to run()
                proc.handle.error = exc
                proc.blocked_on = "error"
                if not proc.daemon:
                    self._live -= 1
                self.set_flag(proc.handle.done_flag, None)
                raise
            if isinstance(cmd, Delay):
                # the seed formatted diagnostics eagerly on every block
                # — part of the cost this oracle preserves
                proc.blocked_on = f"delay({cmd.dt:.3g})"
                self.call_after(cmd.dt, lambda p=proc: self._step(p, None))
                return
            if isinstance(cmd, WaitFlag):
                flag = cmd.flag
                if flag.is_set:
                    sendval = flag.payload
                    continue
                proc.blocked_on = f"wait({format_label(flag.label)})"
                flag._waiters.append(proc)
                return
            if isinstance(cmd, Spawn):
                sendval = self.spawn(cmd.gen, cmd.name, daemon=cmd.daemon)
                continue
            raise TypeError(
                f"process {proc.handle.name!r} yielded unsupported syscall "
                f"{cmd!r}; expected Delay/WaitFlag/Spawn"
            )

    def run(self) -> float:
        """Seed drain loop (per-event attribute traffic and all)."""
        from .errors import DeadlockError

        import heapq
        heap = self._heap
        while heap:
            time_, _seq, callback = heapq.heappop(heap)
            self._events_fired += 1
            if self.max_events is not None and self._events_fired > self.max_events:
                raise RuntimeError(
                    f"event budget exceeded ({self.max_events} events); "
                    "likely a livelock in a simulated protocol"
                )
            if time_ > self.now:
                self.now = time_
            callback()
        if self._live > 0:
            blocked = {
                p.handle.name: p.blocked_label()
                for p in self._procs
                if not p.daemon and p.blocked_on not in ("done", "error")
            }
            raise DeadlockError(blocked)
        return self.now


class OracleNetwork:
    """The seed network model: dict NIC timelines, per-call config digs."""

    def __init__(self, config: MachineConfig, nranks: int):
        import math
        self.config = config
        self.nranks = nranks
        self._tx_free: Dict[int, float] = {}
        self._rx_free: Dict[int, float] = {}
        net = config.network
        if nranks > net.dilation_base and net.fabric_dilation > 0:
            dil = 1.0 + net.fabric_dilation * math.log2(nranks / net.dilation_base)
        else:
            dil = 1.0
        self._dilation = dil
        # statistics
        self.messages_sent = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    def _link(self, src: int, dst: int) -> Tuple[float, float]:
        """(latency, bandwidth) for the src->dst pair."""
        net = self.config.network
        if src == dst:
            # self-send: memcpy-like
            return (0.0, net.intra_node_bandwidth)
        if self.config.node_of(src) == self.config.node_of(dst):
            return (net.intra_node_latency, net.intra_node_bandwidth)
        return (net.latency * self._dilation, net.bandwidth)

    def transfer(self, src: int, dst: int, nbytes: int, ready: float) -> TransferTiming:
        """Seed timing computation, unchanged."""
        if nbytes < 0:
            raise ValueError("negative message size")
        latency, bandwidth = self._link(src, dst)
        serial = nbytes / bandwidth
        inject_start = max(ready, self._tx_free.get(src, 0.0))
        sender_free = inject_start + serial
        self._tx_free[src] = sender_free
        arrival = sender_free + latency
        delivered = max(arrival, self._rx_free.get(dst, 0.0)) + (
            serial if src != dst else 0.0
        )
        # rx occupancy only for the wire transfer; self-sends don't queue.
        if src != dst:
            self._rx_free[dst] = delivered
        self.messages_sent += 1
        self.bytes_sent += nbytes
        return TransferTiming(inject_start, sender_free, arrival, delivered)

    # ------------------------------------------------------------------
    def overheads(self) -> Tuple[float, float]:
        net = self.config.network
        return (net.o_send, net.o_recv)

    def is_eager(self, nbytes: int) -> bool:
        return nbytes <= self.config.network.eager_threshold

    def dilation(self) -> float:
        return self._dilation


#: the full slow-path trio, ready to unpack into launcher.run(...)
SLOW_PATH = dict(engine_factory=OracleEngine,
                 mailbox_factory=LinearMailbox,
                 network_factory=OracleNetwork)
