"""Message envelopes and (source, tag, context) matching.

MPI matching semantics, reproduced exactly because the paper's stream
library leans on them: messages between a given (sender, receiver,
context) pair match in FIFO order; receives may wildcard the source
(``ANY_SOURCE``) and/or tag (``ANY_TAG``); a posted receive matches the
*earliest-delivered* compatible unexpected message.

``ANY_SOURCE`` receives are what give MPIStream its first-come-first-
served, imbalance-absorbing behaviour (Section III-A step 3): the
consumer takes whichever producer's element arrives first.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

ANY_SOURCE = -1
ANY_TAG = -1
TAG_UB = 1 << 30


class Envelope:
    """A message (or rendezvous header) sitting in a mailbox."""

    __slots__ = (
        "src", "tag", "context", "nbytes", "payload",
        "eager", "delivered_time", "on_match",
    )

    def __init__(self, src: int, tag: int, context: int, nbytes: int,
                 payload: Any, eager: bool, delivered_time: float,
                 on_match: Optional[Callable] = None):
        self.src = src
        self.tag = tag
        self.context = context
        self.nbytes = nbytes
        self.payload = payload
        self.eager = eager
        self.delivered_time = delivered_time
        # rendezvous: called with the match time when a receive matches;
        # the transport then schedules the actual transfer.
        self.on_match = on_match

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "eager" if self.eager else "rndv"
        return (f"Envelope(src={self.src}, tag={self.tag}, ctx={self.context}, "
                f"n={self.nbytes}, {mode})")


class PostedRecv:
    """A receive waiting in the mailbox for a matching envelope."""

    __slots__ = ("source", "tag", "context", "max_nbytes", "on_match")

    def __init__(self, source: int, tag: int, context: int,
                 max_nbytes: Optional[int], on_match: Callable):
        self.source = source
        self.tag = tag
        self.context = context
        self.max_nbytes = max_nbytes
        # called with the matched Envelope
        self.on_match = on_match


def _compatible(post: PostedRecv, env: Envelope) -> bool:
    if post.context != env.context:
        return False
    if post.source != ANY_SOURCE and post.source != env.src:
        return False
    if post.tag != ANY_TAG and post.tag != env.tag:
        return False
    return True


class Mailbox:
    """Per-rank matching state: posted receives + unexpected messages."""

    __slots__ = ("posted", "unexpected")

    def __init__(self) -> None:
        self.posted: Deque[PostedRecv] = deque()
        self.unexpected: Deque[Envelope] = deque()

    # ------------------------------------------------------------------
    def deliver(self, env: Envelope) -> Optional[PostedRecv]:
        """An envelope arrives: match the oldest compatible posted receive,
        else queue as unexpected.  Returns the matched receive, if any."""
        for i, post in enumerate(self.posted):
            if _compatible(post, env):
                del self.posted[i]
                post.on_match(env)
                return post
        self.unexpected.append(env)
        return None

    def post(self, post: PostedRecv) -> Optional[Envelope]:
        """A receive is posted: match the oldest compatible unexpected
        envelope, else queue.  Returns the matched envelope, if any."""
        for i, env in enumerate(self.unexpected):
            if _compatible(post, env):
                del self.unexpected[i]
                post.on_match(env)
                return env
        self.posted.append(post)
        return None

    def probe(self, source: int, tag: int, context: int) -> Optional[Envelope]:
        """Non-destructive check for a matching unexpected message."""
        fake = PostedRecv(source, tag, context, None, lambda e: None)
        for env in self.unexpected:
            if _compatible(fake, env):
                return env
        return None

    def pending_counts(self) -> tuple:
        return (len(self.posted), len(self.unexpected))
