"""Message envelopes and (source, tag, context) matching.

MPI matching semantics, reproduced exactly because the paper's stream
library leans on them: messages between a given (sender, receiver,
context) pair match in FIFO order; receives may wildcard the source
(``ANY_SOURCE``) and/or tag (``ANY_TAG``); a posted receive matches the
*earliest-delivered* compatible unexpected message.

``ANY_SOURCE`` receives are what give MPIStream its first-come-first-
served, imbalance-absorbing behaviour (Section III-A step 3): the
consumer takes whichever producer's element arrives first.

Two implementations share this contract:

:class:`Mailbox`
    The production fast path.  Queues are *indexed* by
    ``(context, source, tag)`` with wildcard buckets (``ANY_SOURCE`` /
    ``ANY_TAG`` stored literally in the key), so the common exact-match
    case is an O(1) dict hit while wildcard receives stay
    earliest-delivered FIFO.  See DESIGN.md §8.

:class:`LinearMailbox`
    The original linear-scan implementation, kept verbatim as the
    semantic *oracle*: property tests drive both mailboxes through
    random wildcard/FIFO/unexpected-queue interleavings and assert
    identical match sequences, and the ``bench perf`` slow path runs
    whole simulations on it to pin bit-identical virtual-time results.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

ANY_SOURCE = -1
ANY_TAG = -1
TAG_UB = 1 << 30


class Envelope:
    """A message (or rendezvous header) sitting in a mailbox."""

    __slots__ = (
        "src", "tag", "context", "nbytes", "payload",
        "eager", "delivered_time", "on_match", "sender_req",
    )

    def __init__(self, src: int, tag: int, context: int, nbytes: int,
                 payload: Any, eager: bool, delivered_time: float,
                 on_match: Optional[Callable] = None):
        self.src = src
        self.tag = tag
        self.context = context
        self.nbytes = nbytes
        self.payload = payload
        self.eager = eager
        self.delivered_time = delivered_time
        # rendezvous: called with the match time when a receive matches;
        # the transport then schedules the actual transfer.
        self.on_match = on_match
        # rendezvous: the sender-side request, so a failure of the
        # *receiver* can poison the parked sender (fault sweep).  Eager
        # envelopes (built via __new__ on the hot path) leave the slot
        # unset; readers use getattr(..., None).
        self.sender_req = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "eager" if self.eager else "rndv"
        return (f"Envelope(src={self.src}, tag={self.tag}, ctx={self.context}, "
                f"n={self.nbytes}, {mode})")


class PostedRecv:
    """A receive waiting in the mailbox for a matching envelope."""

    __slots__ = ("source", "tag", "context", "max_nbytes", "on_match")

    def __init__(self, source: int, tag: int, context: int,
                 max_nbytes: Optional[int], on_match: Callable):
        self.source = source
        self.tag = tag
        self.context = context
        self.max_nbytes = max_nbytes
        # called with the matched Envelope
        self.on_match = on_match


def _compatible(source: int, tag: int, context: int, env: Envelope) -> bool:
    """Does a receive pattern given by raw ``(source, tag, context)``
    match ``env``?  Raw arguments so probes need no throwaway
    :class:`PostedRecv`."""
    if context != env.context:
        return False
    if source != ANY_SOURCE and source != env.src:
        return False
    if tag != ANY_TAG and tag != env.tag:
        return False
    return True


#: prune tombstoned unexpected entries once they outnumber live ones
#: (and a floor so tiny mailboxes never bother)
_PRUNE_MIN = 64


class Mailbox:
    """Per-rank matching state: posted receives + unexpected messages.

    Indexed fast path.  Posted receives live in exactly one bucket —
    keyed by their own pattern ``(context, source, tag)`` with the
    wildcard constants stored literally — so an arriving envelope only
    has to compare the heads of its four candidate pattern buckets
    (exact, source-wildcard, tag-wildcard, both-wildcard) and take the
    earliest-posted.  Unexpected envelopes are inserted under all four
    key variants they could be matched by, so a posted receive does a
    single dict lookup; the three shadow entries are tombstoned on
    match and pruned in bulk.  Every operation is amortized O(1) while
    preserving the oracle's exact match order (FIFO per pattern,
    earliest-delivered across wildcards, post order across posted
    receives).
    """

    __slots__ = ("_posted", "_unexpected", "_seq", "_nposted", "_nunexpected",
                 "_dead", "_anysrc_on", "_anytag_on", "_anyany_on",
                 "_np_exact", "_np_anysrc", "_np_anytag", "_np_anyany",
                 "peak_posted", "peak_unexpected")

    def __init__(self) -> None:
        # pattern key -> deque of (seq, PostedRecv)
        self._posted: Dict[Tuple[int, int, int], Deque] = {}
        # candidate key -> deque of [seq, Envelope, alive, ncopies]
        self._unexpected: Dict[Tuple[int, int, int], Deque] = {}
        self._seq = 0
        self._nposted = 0
        self._nunexpected = 0
        self._dead = 0
        # wildcard index classes are maintained lazily: shadow copies
        # for a pattern class are only written once a receive (or
        # probe) of that class has been seen on this mailbox — the
        # common stream mailbox only ever pays the exact + ANY_SOURCE
        # inserts.  First use of a class backfills its buckets from the
        # always-maintained exact buckets (see _activate).
        self._anysrc_on = False
        self._anytag_on = False
        self._anyany_on = False
        # per-pattern-class posted counts: deliver only looks up the
        # candidate buckets of classes that actually have receives
        # pending (a stream consumer only ever populates ANY_SOURCE)
        self._np_exact = 0
        self._np_anysrc = 0
        self._np_anytag = 0
        self._np_anyany = 0
        self.peak_posted = 0
        self.peak_unexpected = 0

    # ------------------------------------------------------------------
    def deliver(self, env: Envelope) -> Optional[PostedRecv]:
        """An envelope arrives: match the oldest compatible posted receive,
        else queue as unexpected.  Returns the matched receive, if any."""
        ctx, src, tag = env.context, env.src, env.tag
        if self._nposted:
            posted = self._posted
            best_bucket = None
            best_seq = -1
            best_kind = 0
            if self._np_exact:
                bucket = posted.get((ctx, src, tag))
                if bucket:
                    best_bucket = bucket
                    best_seq = bucket[0][0]
                    best_kind = 1
            if self._np_anysrc:
                bucket = posted.get((ctx, ANY_SOURCE, tag))
                if bucket:
                    seq = bucket[0][0]
                    if best_bucket is None or seq < best_seq:
                        best_bucket, best_seq, best_kind = bucket, seq, 2
            if self._np_anytag:
                bucket = posted.get((ctx, src, ANY_TAG))
                if bucket:
                    seq = bucket[0][0]
                    if best_bucket is None or seq < best_seq:
                        best_bucket, best_seq, best_kind = bucket, seq, 3
            if self._np_anyany:
                bucket = posted.get((ctx, ANY_SOURCE, ANY_TAG))
                if bucket:
                    seq = bucket[0][0]
                    if best_bucket is None or seq < best_seq:
                        best_bucket, best_seq, best_kind = bucket, seq, 4
            if best_bucket is not None:
                _seq, post = best_bucket.popleft()
                self._nposted -= 1
                if best_kind == 1:
                    self._np_exact -= 1
                    if not best_bucket:
                        del posted[(ctx, src, tag)]
                elif best_kind == 2:
                    self._np_anysrc -= 1
                    if not best_bucket:
                        del posted[(ctx, ANY_SOURCE, tag)]
                elif best_kind == 3:
                    self._np_anytag -= 1
                    if not best_bucket:
                        del posted[(ctx, src, ANY_TAG)]
                else:
                    self._np_anyany -= 1
                    if not best_bucket:
                        del posted[(ctx, ANY_SOURCE, ANY_TAG)]
                post.on_match(env)
                return post
        self._seq += 1
        keys = [(ctx, src, tag)]
        if self._anysrc_on:
            keys.append((ctx, ANY_SOURCE, tag))
        if self._anytag_on:
            keys.append((ctx, src, ANY_TAG))
        if self._anyany_on:
            keys.append((ctx, ANY_SOURCE, ANY_TAG))
        entry = [self._seq, env, True, len(keys)]
        unexpected = self._unexpected
        dead = self._dead
        for key in keys:
            bucket = unexpected.get(key)
            if bucket is None:
                unexpected[key] = deque((entry,))
            else:
                # opportunistic head cleaning keeps shadow tombstones
                # from accumulating in busy buckets (the global prune
                # is only the backstop for idle ones)
                while bucket and not bucket[0][2]:
                    bucket.popleft()
                    dead -= 1
                bucket.append(entry)
        self._dead = dead
        n = self._nunexpected + 1
        self._nunexpected = n
        if n > self.peak_unexpected:
            self.peak_unexpected = n
        return None

    def _activate(self, source_wild: bool, tag_wild: bool) -> None:
        """First receive/probe of a wildcard pattern class: build its
        buckets by replaying the alive exact-bucket entries in seq
        order.  Runs at most three times over a mailbox's lifetime."""
        if source_wild and tag_wild:
            self._anyany_on = True
        elif source_wild:
            self._anysrc_on = True
        else:
            self._anytag_on = True
        unexpected = self._unexpected
        alive = []
        seen = set()
        for key, bucket in unexpected.items():
            if key[1] == ANY_SOURCE or key[2] == ANY_TAG:
                continue  # shadow bucket, not a home bucket
            for entry in bucket:
                if entry[2] and id(entry) not in seen:
                    seen.add(id(entry))
                    alive.append(entry)
        alive.sort(key=lambda e: e[0])
        for entry in alive:
            env = entry[1]
            if source_wild and tag_wild:
                key = (env.context, ANY_SOURCE, ANY_TAG)
            elif source_wild:
                key = (env.context, ANY_SOURCE, env.tag)
            else:
                key = (env.context, env.src, ANY_TAG)
            bucket = unexpected.get(key)
            if bucket is None:
                unexpected[key] = deque((entry,))
            else:
                bucket.append(entry)
            entry[3] += 1

    def post(self, post: PostedRecv) -> Optional[Envelope]:
        """A receive is posted: match the oldest compatible unexpected
        envelope, else queue.  Returns the matched envelope, if any."""
        source, tag = post.source, post.tag
        source_wild = source == ANY_SOURCE
        tag_wild = tag == ANY_TAG
        if (source_wild or tag_wild) and not (
                self._anyany_on if source_wild and tag_wild
                else self._anysrc_on if source_wild
                else self._anytag_on):
            self._activate(source_wild, tag_wild)
        bucket = (self._unexpected.get((post.context, source, tag))
                  if self._nunexpected else None)
        if bucket:
            while bucket:
                entry = bucket[0]
                if entry[2]:
                    bucket.popleft()
                    if not bucket:
                        del self._unexpected[(post.context, source, tag)]
                    entry[2] = False
                    self._dead += entry[3] - 1  # its shadow-bucket copies
                    self._nunexpected -= 1
                    if self._dead > _PRUNE_MIN and self._dead > self._nunexpected:
                        self._prune()
                    env = entry[1]
                    post.on_match(env)
                    return env
                bucket.popleft()
                self._dead -= 1
        self._seq += 1
        pbucket = self._posted.get((post.context, source, tag))
        if pbucket is None:
            self._posted[(post.context, source, tag)] = \
                deque(((self._seq, post),))
        else:
            pbucket.append((self._seq, post))
        if source_wild:
            if tag_wild:
                self._np_anyany += 1
            else:
                self._np_anysrc += 1
        elif tag_wild:
            self._np_anytag += 1
        else:
            self._np_exact += 1
        n = self._nposted + 1
        self._nposted = n
        if n > self.peak_posted:
            self.peak_posted = n
        return None

    def probe(self, source: int, tag: int, context: int) -> Optional[Envelope]:
        """Non-destructive check for a matching unexpected message.

        A single bucket peek: no scan, no throwaway ``PostedRecv``."""
        source_wild = source == ANY_SOURCE
        tag_wild = tag == ANY_TAG
        if (source_wild or tag_wild) and not (
                self._anyany_on if source_wild and tag_wild
                else self._anysrc_on if source_wild
                else self._anytag_on):
            self._activate(source_wild, tag_wild)
        bucket = self._unexpected.get((context, source, tag))
        if bucket:
            while bucket:
                entry = bucket[0]
                if entry[2]:
                    return entry[1]
                bucket.popleft()
                self._dead -= 1
        return None

    def pending_counts(self) -> tuple:
        return (self._nposted, self._nunexpected)

    # ------------------------------------------------------------------
    # fault support (cold path: runs once per detected failure)
    # ------------------------------------------------------------------
    def cancel_posted(self, contexts,
                      dead_source: Optional[int]) -> List[PostedRecv]:
        """Remove every posted receive a peer failure dooms or interrupts:
        exact receives from ``dead_source`` and wildcard-source receives
        (ULFM's *pending* case), in the given ``contexts`` —
        ``dead_source=None`` cancels *every* receive there (communicator
        revocation).  Returns the cancelled receives in post order, so
        the fault controller can poison their completion flags
        deterministically.
        """
        victims = []
        posted = self._posted
        for key in list(posted):
            ctx, src, tag = key
            if ctx not in contexts:
                continue
            if dead_source is not None \
                    and src != dead_source and src != ANY_SOURCE:
                continue
            bucket = posted.pop(key)
            src_wild = src == ANY_SOURCE
            tag_wild = tag == ANY_TAG
            for seq, post in bucket:
                victims.append((seq, post))
                self._nposted -= 1
                if src_wild:
                    if tag_wild:
                        self._np_anyany -= 1
                    else:
                        self._np_anysrc -= 1
                elif tag_wild:
                    self._np_anytag -= 1
                else:
                    self._np_exact -= 1
        victims.sort(key=lambda sp: sp[0])
        return [post for _seq, post in victims]

    def unexpected_envelopes(self) -> List[Envelope]:
        """The alive unexpected envelopes in delivery order (fault sweep:
        rendezvous headers parked in a dead rank's mailbox carry the
        sender request that must be poisoned)."""
        out = []
        seen = set()
        for key, bucket in self._unexpected.items():
            if key[1] == ANY_SOURCE or key[2] == ANY_TAG:
                continue  # shadow bucket, not a home bucket
            for entry in bucket:
                if entry[2] and id(entry) not in seen:
                    seen.add(id(entry))
                    out.append(entry)
        out.sort(key=lambda e: e[0])
        return [entry[1] for entry in out]

    # ------------------------------------------------------------------
    def _prune(self) -> None:
        """Drop tombstoned unexpected entries in bulk (amortized O(1))."""
        unexpected = self._unexpected
        for key in list(unexpected):
            bucket = unexpected[key]
            alive = deque(e for e in bucket if e[2])
            if alive:
                unexpected[key] = alive
            else:
                del unexpected[key]
        self._dead = 0


class LinearMailbox:
    """The original linear-scan mailbox, kept as the semantic oracle.

    Per-rank matching state: posted receives + unexpected messages,
    scanned front-to-back exactly as the pre-optimization implementation
    did.  Property tests assert :class:`Mailbox` reproduces its match
    sequences; the ``bench perf`` slow path runs on it wholesale.
    """

    __slots__ = ("posted", "unexpected", "peak_posted", "peak_unexpected")

    def __init__(self) -> None:
        self.posted: Deque[PostedRecv] = deque()
        self.unexpected: Deque[Envelope] = deque()
        self.peak_posted = 0
        self.peak_unexpected = 0

    # ------------------------------------------------------------------
    def deliver(self, env: Envelope) -> Optional[PostedRecv]:
        """An envelope arrives: match the oldest compatible posted receive,
        else queue as unexpected.  Returns the matched receive, if any."""
        for i, post in enumerate(self.posted):
            if _compatible(post.source, post.tag, post.context, env):
                del self.posted[i]
                post.on_match(env)
                return post
        self.unexpected.append(env)
        if len(self.unexpected) > self.peak_unexpected:
            self.peak_unexpected = len(self.unexpected)
        return None

    def post(self, post: PostedRecv) -> Optional[Envelope]:
        """A receive is posted: match the oldest compatible unexpected
        envelope, else queue.  Returns the matched envelope, if any."""
        for i, env in enumerate(self.unexpected):
            if _compatible(post.source, post.tag, post.context, env):
                del self.unexpected[i]
                post.on_match(env)
                return env
        self.posted.append(post)
        if len(self.posted) > self.peak_posted:
            self.peak_posted = len(self.posted)
        return None

    def probe(self, source: int, tag: int, context: int) -> Optional[Envelope]:
        """Non-destructive check for a matching unexpected message."""
        for env in self.unexpected:
            if _compatible(source, tag, context, env):
                return env
        return None

    def pending_counts(self) -> tuple:
        return (len(self.posted), len(self.unexpected))

    # ------------------------------------------------------------------
    # fault support (same contract as Mailbox.cancel_posted)
    # ------------------------------------------------------------------
    def cancel_posted(self, contexts,
                      dead_source: Optional[int]) -> List[PostedRecv]:
        victims = [
            post for post in self.posted
            if post.context in contexts
            and (dead_source is None or post.source == dead_source
                 or post.source == ANY_SOURCE)
        ]
        if victims:
            doomed = set(map(id, victims))
            self.posted = deque(
                p for p in self.posted if id(p) not in doomed)
        return victims

    def unexpected_envelopes(self) -> List[Envelope]:
        return list(self.unexpected)
