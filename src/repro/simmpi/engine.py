"""Discrete-event simulation core.

The engine provides *virtual time* and cooperative processes.  Each
simulated MPI rank (and each internal progress coroutine, e.g. a
non-blocking collective) is a Python generator driven by the engine.
Processes yield *syscalls* — small command objects — and the engine
resumes them when the corresponding virtual-time event fires.

Only three syscalls exist at this level; everything else (message
matching, collectives, streams, I/O) is composed on top of them in
higher layers with ``yield from``:

``Delay(dt)``
    Resume the process ``dt`` virtual seconds from now.

``WaitFlag(flag)``
    Block until :class:`EventFlag` ``flag`` is set; resume at the set
    time (or immediately if already set).

``Spawn(gen)``
    Start a child process running generator ``gen`` concurrently; the
    yielding process resumes immediately with the child's
    :class:`ProcessHandle` as the value of the ``yield`` expression.

The design follows the classic event-heap pattern: a single
``(time, seq)``-ordered heap of callbacks guarantees deterministic
replay for a fixed seed and fixed process program order, which the
benchmark harness relies on.

Hot-path design (see DESIGN.md §8): syscall dispatch is keyed on the
exact class object rather than ``isinstance`` chains; every process
carries one preallocated resumer callback so Delay wake-ups allocate
nothing; ``blocked_on`` stores the blocking syscall object and is only
formatted into a human-readable string when a
:class:`~repro.simmpi.errors.DeadlockError` actually fires.  The
pre-optimization engine is preserved verbatim as
:class:`repro.simmpi.oracle.OracleEngine`; replay tests assert both
drain identical event sequences.
"""

from __future__ import annotations

from functools import partial
from heapq import heappush as _heappush
from typing import Any, Callable, Generator, List, Optional, Tuple


class Delay:
    """Syscall: resume the calling process after ``dt`` virtual seconds."""

    __slots__ = ("dt",)

    def __init__(self, dt: float):
        if dt < 0:
            raise ValueError(f"negative delay: {dt}")
        self.dt = float(dt)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Delay({self.dt:.6g})"


class EventFlag:
    """A one-shot level-triggered flag processes can block on.

    ``set()`` records the virtual time of the event and wakes every
    waiter.  Waiters that arrive after the flag is set resume without
    blocking.  A payload can be attached for the waker to communicate a
    value (e.g. a matched message) to the waiter.

    ``label`` may be a string or a tuple of parts; tuples are joined
    lazily by :func:`format_label` so hot paths never pay for a
    diagnostic f-string that is only read when something deadlocks.
    """

    __slots__ = ("is_set", "time", "payload", "_waiters", "label")

    def __init__(self, label: Any = ""):
        self.is_set = False
        self.time: float = 0.0
        self.payload: Any = None
        self._waiters: List["_Process"] = []
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "set" if self.is_set else "unset"
        return f"EventFlag({format_label(self.label)!r}, {state})"


def format_label(label: Any) -> str:
    """Render a lazy label (string, or tuple of stringifiable parts)."""
    if type(label) is tuple:
        return "".join(map(str, label))
    return str(label)


class WaitFlag:
    """Syscall: block the calling process until ``flag`` is set."""

    __slots__ = ("flag",)

    def __init__(self, flag: EventFlag):
        self.flag = flag


class Spawn:
    """Syscall: start ``gen`` as a concurrent child process.

    ``daemon`` children do not keep the simulation alive and are not
    reported as deadlocked if still blocked when the heap drains (used
    for helper coroutines like ``waitany`` watchers).
    """

    __slots__ = ("gen", "name", "daemon")

    def __init__(self, gen: Generator, name: str = "child", daemon: bool = False):
        self.gen = gen
        self.name = name
        self.daemon = daemon


class Segment:
    """Syscall: hand the process's next events to a precompiled schedule
    cursor (the engine's batch-drain mode, see DESIGN.md §15).

    ``start(engine, proc)`` is installed by the issuer (a schedule
    cursor from :mod:`repro.compile.schedule`).  It may push events
    whose callbacks advance the cursor directly — each still one heap
    event, fired and counted exactly like every other event, but
    serviced without re-entering the process generator or the syscall
    dispatcher.  Return True to leave the process suspended (the cursor
    resumes it via ``engine._step(proc, None)`` when the segment
    completes) or False to continue the process synchronously.

    The contract that keeps runs bit-identical: a segment must push the
    same events, at the same times, at the same points in the event
    sequence, as the generator syscalls it replaces would have.
    """

    __slots__ = ("start",)

    def __init__(self, start: Callable[["Engine", "_Process"], bool]):
        self.start = start

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Segment({self.start!r})"


# Heap entries are plain (time, seq, callback) tuples: the unique ``seq``
# tiebreaker guarantees the callback is never compared, and C-level tuple
# comparison is ~3x faster than a dataclass __lt__ in the hot heappop path.
_HeapEntry = Tuple[float, int, Callable[[], None]]


class ProcessHandle:
    """Public view of a spawned process: completion flag + return value."""

    __slots__ = ("name", "done_flag", "value", "error")

    def __init__(self, name: str):
        self.name = name
        self.done_flag = EventFlag(label=("done:", name))
        self.value: Any = None
        self.error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self.done_flag.is_set


class _Process:
    """Internal per-generator bookkeeping.

    ``resume`` is the preallocated no-payload resumer: one
    ``partial(engine._step, proc, None)`` created at spawn time and
    reused by every Delay wake-up and the initial step, so the hot path
    never allocates a closure — and the partial dispatches at C level,
    without an intermediate Python frame.
    """

    __slots__ = ("gen", "handle", "blocked_on", "engine", "daemon", "resume")

    def __init__(self, gen: Generator, handle: ProcessHandle, engine: "Engine",
                 daemon: bool = False):
        self.gen = gen
        self.handle = handle
        self.blocked_on: Any = "start"
        self.engine = engine
        self.daemon = daemon
        self.resume = partial(engine._step, self, None)

    def blocked_label(self) -> str:
        """Human-readable description of what this process is blocked in.

        ``blocked_on`` holds the blocking syscall object (or one of the
        sentinel strings ``start``/``done``/``error``); formatting is
        deferred to here so the scheduling hot path never builds
        diagnostic strings.
        """
        b = self.blocked_on
        cls = b.__class__
        if cls is Delay:
            return f"delay({b.dt:.3g})"
        if cls is WaitFlag:
            return f"wait({format_label(b.flag.label)})"
        return str(b)


class Engine:
    """Deterministic discrete-event scheduler with a virtual clock.

    Determinism: events at equal times fire in insertion order (the
    ``seq`` tiebreaker), and process wakeups go through the same heap,
    so a run is a pure function of the process programs and their RNG
    seeds.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[_HeapEntry] = []
        self._seq: int = 0
        self._live: int = 0
        self._procs: List[_Process] = []
        #: handle -> process index (identity-keyed; ProcessHandle has no
        #: __eq__) so kill() is O(1) instead of a scan over every rank
        self._proc_of_handle: dict = {}
        self.max_events: Optional[int] = None
        self._events_fired: int = 0
        #: pluggable event-loop driver (the Scheduler seam, DESIGN.md
        #: §16).  None resolves lazily to SerialScheduler on the first
        #: run() — the common case pays one None check per run, not an
        #: import at engine construction.
        self.scheduler: Optional["object"] = None

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def call_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at virtual ``time``.

        Times in the past are clamped to *now*: an event can never
        rewind the clock (this arises when e.g. a message's modeled
        arrival precedes the receiver's current time after contention).
        """
        if time < self.now:
            time = self.now
        self._seq += 1
        _heappush(self._heap, (time, self._seq, callback))

    def call_after(self, dt: float, callback: Callable[[], None]) -> None:
        self.call_at(self.now + dt, callback)

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def spawn(self, gen: Generator, name: str = "proc",
              daemon: bool = False) -> ProcessHandle:
        """Register ``gen`` as a process; it takes its first step at the
        current virtual time (via the heap, preserving global ordering)."""
        handle = ProcessHandle(name)
        proc = _Process(gen, handle, self, daemon=daemon)
        self._procs.append(proc)
        self._proc_of_handle[handle] = proc
        if not daemon:
            self._live += 1
        self._seq += 1
        _heappush(self._heap, (self.now, self._seq, proc.resume))
        return handle

    def kill(self, handle: ProcessHandle, error: Optional[BaseException] = None
             ) -> bool:
        """Terminate the process behind ``handle`` at the current virtual
        time (the fault injector's crash primitive).

        The generator is closed (its ``finally`` blocks run), the process
        stops counting toward liveness, and its done flag is set *now* so
        ``finish_times`` records the crash time.  ``handle.error`` carries
        ``error`` (e.g. a :class:`~repro.simmpi.errors.ProcessFailedError`)
        for post-mortem inspection.  Returns False if the process had
        already finished.  Stale wake-ups of a killed process (a Delay
        still in the heap, a flag it was waiting on) are absorbed by the
        interpreter: resuming a closed generator raises ``StopIteration``,
        which ``_step`` recognizes via the ``"killed"`` marker and drops
        without touching the bookkeeping a second time.
        """
        proc = self._proc_of_handle.get(handle)
        if proc is None:
            # subclasses with their own spawn (the oracle engine) miss
            # the index; fall back to the scan rather than mis-kill
            for proc in self._procs:
                if proc.handle is handle:
                    break
            else:
                raise ValueError(
                    f"kill: unknown process handle {handle.name!r}")
        if proc.blocked_on in ("done", "error", "killed"):
            return False
        proc.gen.close()
        proc.blocked_on = "killed"
        handle.error = error
        if not proc.daemon:
            self._live -= 1
        # purge the process's scheduled resumptions (a pending Delay
        # wake-up would otherwise drag the clock out to its fire time).
        # In place: run() holds a local reference to the heap list.
        # heapify preserves the (time, seq) total order.
        heap = self._heap
        filtered = [e for e in heap if e[2] is not proc.resume]
        if len(filtered) != len(heap):
            from heapq import heapify
            heap[:] = filtered
            heapify(heap)
        self.set_flag(handle.done_flag, None)
        return True

    def set_flag(self, flag: EventFlag, payload: Any = None) -> None:
        """Set ``flag`` at the current virtual time and wake all waiters.

        All waiters are woken by a *single* scheduled callback that
        steps them in FIFO (wait-arrival) order.  This is
        observationally identical to the one-event-per-waiter scheme —
        the per-waiter events were pushed with consecutive heap
        sequence numbers, so nothing could ever interleave between
        them — but costs one heap event instead of N.
        """
        if flag.is_set:
            return
        flag.is_set = True
        flag.time = self.now
        flag.payload = payload
        waiters = flag._waiters
        if not waiters:
            return
        flag._waiters = []
        if len(waiters) == 1:
            if payload is None:
                # identical to partial(_step, proc, None): reuse the
                # process's preallocated resumer
                callback = waiters[0].resume
            else:
                callback = partial(self._step, waiters[0], payload)
        elif payload is None:
            # `resume()` is `_step(proc, None)` for a process, and the
            # advance method for a schedule cursor — either may wait
            def callback() -> None:
                for proc in waiters:
                    proc.resume()
        else:
            def callback() -> None:
                step = self._step
                for proc in waiters:
                    step(proc, payload)
        self._seq += 1
        _heappush(self._heap, (self.now, self._seq, callback))

    # ------------------------------------------------------------------
    # the interpreter loop
    # ------------------------------------------------------------------
    def _step(self, proc: _Process, sendval: Any) -> None:
        """Advance one process by one syscall.

        Dispatch is keyed on the syscall's exact class (no ``isinstance``
        chain); Delay resumptions reuse ``proc.resume`` instead of
        allocating a fresh closure per event.
        """
        send = proc.gen.send
        heap = self._heap
        while True:
            try:
                cmd = send(sendval)
            except StopIteration as stop:
                if proc.blocked_on == "killed":
                    # stale wake-up of a crashed process (its generator
                    # is closed); kill() already did the bookkeeping
                    return
                proc.handle.value = stop.value
                proc.blocked_on = "done"
                if not proc.daemon:
                    self._live -= 1
                self.set_flag(proc.handle.done_flag, stop.value)
                return
            except BaseException as exc:  # propagate to run()
                proc.handle.error = exc
                proc.blocked_on = "error"
                if not proc.daemon:
                    self._live -= 1
                self.set_flag(proc.handle.done_flag, None)
                raise
            cls = cmd.__class__
            if cls is Delay:
                proc.blocked_on = cmd
                self._seq += 1
                _heappush(heap, (self.now + cmd.dt, self._seq, proc.resume))
                return
            if cls is WaitFlag:
                flag = cmd.flag
                if flag.is_set:
                    # already satisfied: continue synchronously at `now`
                    sendval = flag.payload
                    continue
                proc.blocked_on = cmd
                flag._waiters.append(proc)
                return
            if cls is Segment:
                # batch-drain hand-off: the cursor services the
                # segment's events without generator round-trips
                if cmd.start(self, proc):
                    proc.blocked_on = cmd
                    return
                sendval = None
                continue
            if cls is Spawn:
                sendval = self.spawn(cmd.gen, cmd.name, daemon=cmd.daemon)
                continue
            # slow path: tolerate syscall subclasses before rejecting
            if isinstance(cmd, Delay):
                proc.blocked_on = cmd
                self.call_after(cmd.dt, proc.resume)
                return
            if isinstance(cmd, WaitFlag):
                flag = cmd.flag
                if flag.is_set:
                    sendval = flag.payload
                    continue
                proc.blocked_on = cmd
                flag._waiters.append(proc)
                return
            if isinstance(cmd, Spawn):
                sendval = self.spawn(cmd.gen, cmd.name, daemon=cmd.daemon)
                continue
            raise TypeError(
                f"process {proc.handle.name!r} yielded unsupported syscall "
                f"{cmd!r}; expected Delay/WaitFlag/Spawn"
            )

    def run(self) -> float:
        """Drain the event heap; return the final virtual time.

        Delegates to the installed :class:`~repro.simmpi.scheduler.
        Scheduler` (lazily the serial heap-drain loop).  Raises
        :class:`~repro.simmpi.errors.DeadlockError` when processes
        remain blocked after the heap empties, listing each stuck
        process and the primitive it is blocked in.
        """
        sched = self.scheduler
        if sched is None:
            from .scheduler import SerialScheduler
            sched = self.scheduler = SerialScheduler()
        return sched.run(self)

    @property
    def events_fired(self) -> int:
        return self._events_fired


def delay(dt: float) -> Generator[Delay, None, None]:
    """Convenience coroutine: ``yield from delay(dt)``."""
    yield Delay(dt)


def wait_flag(flag: EventFlag) -> Generator[WaitFlag, None, Any]:
    """Convenience coroutine: block on ``flag`` and return its payload."""
    payload = yield WaitFlag(flag)
    return payload
