"""The transport (:class:`World`) and the :class:`Comm` communicator API.

``World`` owns the global simulation state — engine, network model,
noise model, one mailbox per rank — and implements the eager/rendezvous
point-to-point protocol on top of the engine's three syscalls.

``Comm`` is the per-rank handle application code programs against.  Its
methods are generator coroutines used with ``yield from`` inside a
simulated rank::

    def rank_main(comm):
        yield from comm.compute(0.5, label="mover")
        data = yield from comm.recv(source=ANY_SOURCE, tag=7)
        yield from comm.send(result, dest=0, tag=8)

The API mirrors mpi4py's lowercase object interface (send/recv move
Python payloads; sizes come from :func:`~repro.simmpi.datatypes.
payload_nbytes` or explicit datatypes), with collectives delegated to
:mod:`~repro.simmpi.collectives`.
"""

from __future__ import annotations

from functools import partial
from heapq import heappush as _heappush
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from .config import MachineConfig
from .datatypes import Datatype, payload_nbytes
from .engine import Delay, Engine, EventFlag, Spawn, WaitFlag, wait_flag
from .errors import (
    CommunicatorError,
    FaultSignal,
    InvalidRankError,
    InvalidTagError,
    TruncationError,
)
from .matching import ANY_SOURCE, ANY_TAG, TAG_UB, Envelope, Mailbox
from .network import build_network
from .noise import NoiseModel
from .request import PersistentRequest, Request, Status
from . import collectives

_env_new = Envelope.__new__


class ComputeCharge(tuple):
    """The iterable :meth:`Comm.compute` returns on its allocation-free
    fast path: a tuple of syscalls, distinguishable by type so stream
    operators that *return* a compute charge (instead of ``yield
    from``-ing it) are still driven — exactly as when compute returned
    a generator."""

    __slots__ = ()


class RecvRequest(Request):
    """A receive request that is also its own mailbox entry.

    The transport used to allocate two closures (``complete`` +
    ``on_match``) plus a :class:`PostedRecv` per receive; folding the
    completion state *and* the matching pattern into the request object
    (which already *is* the completion flag) makes a receive a single
    allocation.  The mailboxes duck-type posted receives through
    ``source``/``tag``/``context``/``max_nbytes``/``on_match``, which
    this class provides directly.
    """

    __slots__ = ("engine", "source", "tag", "context", "max_nbytes",
                 "o_recv")

    def __init__(self, engine: Engine, label: Any, source: int, tag: int,
                 context: int, max_nbytes: Optional[int], o_recv: float):
        # Request/EventFlag init inlined (one call frame per receive)
        self.is_set = False
        self.time = 0.0
        self.payload = None
        self._waiters = []
        self.label = label
        self.kind = "recv"
        self._waited = False
        self.engine = engine
        self.source = source
        self.tag = tag
        self.context = context
        self.max_nbytes = max_nbytes
        self.o_recv = o_recv

    def complete(self, env: Envelope, data_ready_time: float) -> None:
        max_nbytes = self.max_nbytes
        if max_nbytes is not None and env.nbytes > max_nbytes:
            raise TruncationError(
                f"message of {env.nbytes} B matched receive with "
                f"buffer of {max_nbytes} B (source={env.src}, tag={env.tag})"
            )
        engine = self.engine
        status = Status(env.src, env.tag, env.nbytes)
        now = engine.now
        done = (now if now > data_ready_time else data_ready_time) + self.o_recv
        engine._seq += 1
        _heappush(engine._heap,
                  (done, engine._seq,
                   partial(engine.set_flag, self,
                           (env.payload, status))))

    def on_match(self, env: Envelope) -> None:
        if env.eager:
            self.complete(env, env.delivered_time)
        else:
            env.on_match(env, partial(self.complete, env))


class World:
    """Global simulation state shared by every rank."""

    def __init__(self, engine: Engine, config: MachineConfig, nranks: int,
                 tracer=None, mailbox_factory=None, network_factory=None):
        """``mailbox_factory`` / ``network_factory`` inject alternative
        implementations — the ``bench perf`` slow path passes the
        :mod:`repro.simmpi.oracle` classes to reproduce pre-optimization
        behaviour; everything else uses the fast-path defaults."""
        config.validate()
        self.engine = engine
        self.config = config
        self.nranks = nranks
        if network_factory is None:
            # the machine's TopologyConfig picks the fabric (flat /
            # fat-tree / dragonfly), its placement policy the node map
            self.network = build_network(config, nranks)
        else:
            self.network = network_factory(config, nranks)
        self.noise = NoiseModel(config.noise, nranks)
        if mailbox_factory is None:
            mailbox_factory = Mailbox
        self.mailboxes = [mailbox_factory() for _ in range(nranks)]
        # placement-resolved rank→node lookup; injected seed-era
        # networks (OracleNetwork) predate the fabric contract and fall
        # back to the config's block-placement shim
        self.node_of = getattr(self.network, "node_of", config.node_of)
        self.tracer = tracer
        self._context_counter = 16  # low ids reserved for COMM_WORLD
        self._subcomm_cache: Dict[tuple, tuple] = {}
        self._group_cache: Dict[tuple, tuple] = {}
        self._split_exchange: Dict[tuple, dict] = {}
        self.filesystem = None  # attached lazily by iolib
        # hot-path constants (MachineConfig is frozen); the o_send Delay
        # is immutable to the engine, so one shared instance serves
        # every isend instead of an allocation per message
        self._o_send = config.network.o_send
        self._o_recv = config.network.o_recv
        self._compute_speed = config.compute_speed
        self._o_send_delay = Delay(self._o_send) if self._o_send > 0 else None
        self._eager_threshold = config.network.eager_threshold
        # noise-free machines skip the NoiseModel call entirely: the
        # persistent factor is exactly 1.0 and no transient draws exist
        self._noise_free = (config.noise.persistent_skew == 0.0
                            and config.noise.quantum_fraction == 0.0)
        # fault injection (repro.faults): None on every fault-free run,
        # so the gates below stay single pointer compares.  The launcher
        # installs a FaultController and clears _compute_fast when the
        # plan carries Slowdown windows.
        self._fault_ctl = None
        self._compute_fast = self._noise_free and tracer is None
        # plan-compiler hooks (repro.compile): the launcher installs the
        # resolved CompileOptions and the stream-schedule binder when a
        # run opts into compiled mode; None keeps every path interpreted
        self._compile_opts = None
        self._stream_compiler = None
        # parallel execution (repro.parallel): rank -> lane map when the
        # launcher shards the engine; None on every serial run, so the
        # cross-rank routing gates below stay single pointer compares
        self._lane_of_rank = None
        # compute charges are immutable to the engine; deterministic
        # compute() durations repeat heavily (per-file map costs,
        # per-element merge costs), so share them
        self._delay_cache: Dict[float, "ComputeCharge"] = {}
        # one-sided windows: shared _WinState per collective allocation,
        # keyed (comm context, "win", per-comm allocation seq) — the
        # same first-arrival agreement scheme as _subcomm_cache
        self._win_cache: Dict[tuple, Any] = {}

    # ------------------------------------------------------------------
    # context management (communicator creation must agree across ranks)
    # ------------------------------------------------------------------
    def get_or_create_contexts(self, key: tuple) -> Tuple[int, int]:
        """(p2p_context, collective_context) for a derived communicator.

        The first member rank to reach the creation point allocates the
        pair; later ranks find it in the cache.  ``key`` is derived from
        (parent context, creation sequence number, color), which all
        member ranks compute identically, mirroring how real MPI agrees
        on context ids during ``MPI_Comm_split``.
        """
        ids = self._subcomm_cache.get(key)
        if ids is None:
            p2p = self._context_counter
            self._context_counter += 2
            ids = (p2p, p2p + 1)
            self._subcomm_cache[key] = ids
        return ids

    # ------------------------------------------------------------------
    # point-to-point transport
    # ------------------------------------------------------------------
    def post_send(self, gsrc: int, gdst: int, lsrc: int, tag: int,
                  context: int, payload: Any, nbytes: int,
                  synchronous: bool = False,
                  force_eager: bool = False) -> Request:
        """Initiate a transfer; returns the sender-side request.

        Called at the sender's current virtual time (CPU overhead has
        already been charged by the caller).  Eager messages commit the
        NIC transfer immediately and complete the sender as soon as the
        payload has left its NIC; rendezvous messages ship a header and
        only transfer once a matching receive exists.
        """
        ctl = self._fault_ctl
        if ctl is not None:
            ctl.check_send(gdst, context)
        engine = self.engine
        now = engine.now
        req = Request("send", label=("send->", gdst, "#", tag))
        eager = (force_eager or nbytes <= self._eager_threshold) \
            and not synchronous

        if eager:
            timing = self.network.transfer(gsrc, gdst, nbytes, ready=now)
            delivered = timing.delivered
            # Envelope.__init__ bypassed: one envelope per message makes
            # even the constructor's call frame measurable
            env = _env_new(Envelope)
            env.src = lsrc
            env.tag = tag
            env.context = context
            env.nbytes = nbytes
            env.payload = payload
            env.eager = True
            env.delivered_time = delivered
            env.on_match = None
            if self._lane_of_rank is not None:
                # sharded engine: the delivery is a boundary message
                # routed to the destination rank's lane; the sender-free
                # wake stays on the active (sender's) lane
                engine.deliver_at(gdst, delivered,
                                  partial(self.mailboxes[gdst].deliver, env))
                engine.call_at(timing.sender_free,
                               partial(engine.set_flag, req))
                return req
            # both event times are provably >= now (the transfer starts
            # at `ready=now`), so the call_at clamp is skipped and the
            # two pushes are inlined
            heap = engine._heap
            seq = engine._seq + 1
            _heappush(heap, (delivered, seq,
                             partial(self.mailboxes[gdst].deliver, env)))
            seq += 1
            _heappush(heap, (timing.sender_free, seq,
                             partial(engine.set_flag, req)))
            engine._seq = seq
            return req

        # rendezvous: header (latency-only) then transfer on match
        def on_match(env_: Envelope, recv_done) -> None:
            match_time = engine.now
            ready = max(match_time, now)
            timing = self.network.transfer(gsrc, gdst, nbytes, ready=ready)
            if self._lane_of_rank is not None:
                # on_match runs on the receiver's lane; the sender-free
                # wake belongs to the sender's.  This is the protocol's
                # zero-lookahead reverse edge — sender_free may precede
                # now + lookahead — so it routes as a wake, exempt from
                # the window invariant (DESIGN.md §16)
                engine.wake_at(gsrc, timing.sender_free,
                               partial(engine.set_flag, req))
            else:
                engine.call_at(timing.sender_free,
                               partial(engine.set_flag, req))
            recv_done(timing.delivered)

        env = Envelope(lsrc, tag, context, nbytes, payload,
                       eager=False, delivered_time=now)
        env.on_match = on_match
        env.sender_req = req  # lets a receiver failure poison the sender
        header_latency, _ = self.network._link(gsrc, gdst)
        if self._lane_of_rank is not None:
            engine.deliver_at(gdst, now + header_latency,
                              partial(self.mailboxes[gdst].deliver, env))
        else:
            engine.call_at(now + header_latency,
                           partial(self.mailboxes[gdst].deliver, env))
        return req

    def post_recv(self, gdst: int, source: int, tag: int, context: int,
                  max_nbytes: Optional[int] = None,
                  label: Any = None) -> Request:
        """Post a receive; the request completes with ``(data, Status)``.

        ``label`` overrides the default lazy diagnostic label (callers
        on per-element hot paths pass a static string)."""
        req = RecvRequest(self.engine,
                          label if label is not None
                          else ("recv<-", source, "#", tag),
                          source, tag, context, max_nbytes, self._o_recv)
        self.mailboxes[gdst].post(req)
        return req


class Comm:
    """Per-rank communicator handle (mirrors the mpi4py object API)."""

    #: intracommunicators address their own members; :class:`Intercomm`
    #: overrides this (fault gates and streams branch on it cheaply)
    is_inter = False

    def __init__(self, world: World, ranks: Sequence[int], my_global: int,
                 context_p2p: int, context_coll: int, name: str = "comm",
                 my_local: Optional[int] = None):
        self.world = world
        # `tuple()` of a tuple is the same object: the launcher shares one
        # ranks tuple across all 8k+ Comm instances instead of copying.
        self.ranks: Tuple[int, ...] = tuple(ranks)
        self._global = my_global
        self._rank = (self.ranks.index(my_global)
                      if my_local is None else my_local)
        self.context = context_p2p
        self.context_coll = context_coll
        self.name = name
        self._coll_seq = 0
        self._create_seq = 0
        self._freed = False
        # introspection as plain attributes: rank/size sit on every
        # hot path (validation, collectives) and property dispatch is
        # measurable at 200k+ events/s
        self.rank = self._rank
        self.size = len(self.ranks)
        self.global_rank = my_global
        # populated by group_from_ranks when a node-layout hint is given
        self.node_hint: Optional[str] = None
        self.node_hint_ok: Optional[bool] = None
        # fault mode only: register for failure notification and track
        # which detection epoch this communicator has acknowledged
        ctl = world._fault_ctl
        if ctl is not None:
            self._fault_acked = 0
            ctl.register_comm(self)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def global_of(self, local: int) -> int:
        self._check_rank(local)
        return self.ranks[local]

    def node_of(self, local: Optional[int] = None) -> int:
        """Node id of a member rank (default: the calling rank) under
        the machine's placement policy."""
        r = self._rank if local is None else local
        self._check_rank(r)
        return self.world.node_of(self.ranks[r])

    def nodes(self) -> Tuple[int, ...]:
        """Sorted distinct node ids the members occupy."""
        node_of = self.world.node_of
        return tuple(sorted({node_of(g) for g in self.ranks}))

    def node_span(self) -> int:
        """How many distinct nodes the members occupy: 1 means fully
        colocated (every stream rides the intra-node shortcut)."""
        return len(self.nodes())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Comm({self.name!r}, rank={self._rank}/{self.size})"

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    def _check_rank(self, r: int, wildcard: bool = False) -> None:
        if self._freed:
            raise CommunicatorError(f"operation on freed communicator {self.name!r}")
        if 0 <= r < self.size:
            return
        if wildcard and r == ANY_SOURCE:
            return
        raise InvalidRankError(
            f"rank {r} out of range for {self.name!r} of size {self.size}"
        )

    @staticmethod
    def _check_tag(tag: int, wildcard: bool = False) -> None:
        if wildcard and tag == ANY_TAG:
            return
        if not (0 <= tag <= TAG_UB):
            raise InvalidTagError(f"tag {tag} outside [0, {TAG_UB}]")

    # ------------------------------------------------------------------
    # local time
    # ------------------------------------------------------------------
    def compute(self, seconds: float, label: str = "compute"):
        """Charge ``seconds`` of nominal compute time (noise-inflated).

        Returns an iterable to drive with ``yield from``.  On a
        noise-free machine with no tracer that iterable is a one-Delay
        tuple — C-level iteration, no generator frame — built from the
        world's shared Delay cache; otherwise it is the full generator
        with noise inflation and trace recording.
        """
        if seconds < 0:
            raise ValueError("negative compute duration")
        world = self.world
        if world._compute_fast:
            nominal = seconds / world._compute_speed
            cache = world._delay_cache
            charge = cache.get(nominal)
            if charge is None:
                if len(cache) >= 4096:
                    cache.clear()
                charge = cache[nominal] = ComputeCharge((Delay(nominal),))
            return charge
        return self._compute_gen(seconds, label)

    def _compute_gen(self, seconds: float, label: str
                     ) -> Generator[Any, Any, None]:
        world = self.world
        nominal = seconds / world._compute_speed
        if world._noise_free:
            actual = nominal
        else:
            actual = world.noise.inflate(self._global, nominal)
        t0 = world.engine.now
        ctl = world._fault_ctl
        if ctl is not None and ctl.has_slowdowns:
            # straggler windows compose multiplicatively with the noise
            # model: the charge is stretched piecewise over the windows
            # it overlaps
            actual = ctl.stretch(self._global, t0, actual)
        yield Delay(actual)
        if world.tracer is not None:
            world.tracer.record(self._global, "compute", label, t0,
                                world.engine.now)

    def sleep(self, seconds: float) -> Generator[Any, Any, None]:
        """Raw virtual-time delay, no noise, no trace (harness use)."""
        yield Delay(seconds)

    @property
    def time(self) -> float:
        """Current virtual time (``MPI_Wtime``)."""
        return self.world.engine.now

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def isend(self, data: Any, dest: int, tag: int = 0,
              datatype: Optional[Datatype] = None, count: Optional[int] = None,
              _ctx: Optional[int] = None,
              nbytes: Optional[int] = None,
              force_eager: bool = False) -> Generator[Any, Any, Request]:
        if self._freed or dest < 0 or dest >= self.size:
            self._check_rank(dest)
        if tag < 0 or tag > TAG_UB:
            self._check_tag(tag)
        if nbytes is None:
            nbytes = payload_nbytes(data, datatype, count)
        world = self.world
        delay = world._o_send_delay
        if delay is not None:
            yield delay
        return world.post_send(
            self._global, self.ranks[dest], self._rank, tag,
            self.context if _ctx is None else _ctx, data, nbytes,
            force_eager=force_eager,
        )

    def issend(self, data: Any, dest: int, tag: int = 0,
               datatype: Optional[Datatype] = None, count: Optional[int] = None,
               _ctx: Optional[int] = None) -> Generator[Any, Any, Request]:
        self._check_rank(dest)
        self._check_tag(tag)
        nbytes = payload_nbytes(data, datatype, count)
        o_send = self.world._o_send
        if o_send > 0:
            yield Delay(o_send)
        return self.world.post_send(
            self._global, self.ranks[dest], self._rank, tag,
            self.context if _ctx is None else _ctx, data, nbytes,
            synchronous=True,
        )

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              max_nbytes: Optional[int] = None,
              _ctx: Optional[int] = None) -> Request:
        """Post a non-blocking receive (no CPU cost until completion)."""
        if self._freed or source < ANY_SOURCE or source >= self.size:
            self._check_rank(source, wildcard=True)
        if tag > TAG_UB or tag < ANY_TAG:
            self._check_tag(tag, wildcard=True)
        ctl = self.world._fault_ctl
        if ctl is not None:
            ctl.check_recv(self, source)
        lsource = source  # local rank or wildcard; envelopes carry local src
        return self.world.post_recv(
            self._global, lsource, tag,
            self.context if _ctx is None else _ctx, max_nbytes,
        )

    def failure_ack(self) -> None:
        """Acknowledge every failure detected so far (ULFM's
        ``MPI_Comm_failure_ack``): wildcard receives on this communicator
        stop raising :class:`~repro.simmpi.errors.ProcessFailedError`
        for the acknowledged dead members.  No-op on fault-free runs."""
        ctl = self.world._fault_ctl
        if ctl is not None:
            self._fault_acked = ctl.version

    def revoke(self) -> None:
        """Revoke this communicator (ULFM's ``MPI_Comm_revoke``): every
        member's pending receive on it resolves to
        :class:`~repro.simmpi.errors.RevokedError` and new operations
        fail immediately — how survivors break out of a collective that
        a failure left half-completed.  Only meaningful on
        fault-injection runs."""
        ctl = self.world._fault_ctl
        if ctl is None:
            raise CommunicatorError(
                "revoke is part of the fault-injection surface; this "
                "run has no fault plan")
        ctl.revoke(self)

    def failed_members(self) -> Tuple[int, ...]:
        """Local ranks of members whose failure has been detected
        (empty on fault-free runs)."""
        ctl = self.world._fault_ctl
        if ctl is None:
            return ()
        detected = ctl.detected
        return tuple(i for i, g in enumerate(self.ranks) if g in detected)

    def wait(self, req: Request, label: str = "wait") -> Generator[Any, Any, Any]:
        """Block until ``req`` completes; returns its payload.

        For receive requests the payload is ``(data, Status)``."""
        if req._waited:
            req._mark_waited()  # raises the double-wait diagnostic
        req._waited = True
        flag = req  # a Request is its own EventFlag
        if flag.is_set:
            # already complete: continue synchronously at `now`, exactly
            # as the engine's WaitFlag fast path would, minus the
            # syscall allocation and dispatch
            payload = flag.payload
            if payload.__class__ is FaultSignal:
                raise payload.error
            return payload
        world = self.world
        engine = world.engine
        t0 = engine.now
        payload = yield WaitFlag(flag)
        if payload.__class__ is FaultSignal:
            raise payload.error
        if world.tracer is not None and engine.now > t0:
            world.tracer.record(self._global, "wait", label, t0,
                                engine.now)
        return payload

    def waitall(self, reqs: Sequence[Request], label: str = "waitall"
                ) -> Generator[Any, Any, List[Any]]:
        out = []
        for req in reqs:
            out.append((yield from self.wait(req, label=label)))
        return out

    def waitany(self, reqs: Sequence[Request], label: str = "waitany"
                ) -> Generator[Any, Any, Tuple[int, Any]]:
        """Block until the first of ``reqs`` completes.

        Returns ``(index, payload)``.  This is the primitive behind
        first-come-first-served stream consumption."""
        if not reqs:
            raise ValueError("waitany on empty request list")
        for i, req in enumerate(reqs):
            if req.done:
                req._mark_waited()
                payload = req.flag.payload
                if payload.__class__ is FaultSignal:
                    raise payload.error
                return i, payload
        world = self.world
        t0 = world.engine.now
        any_flag = EventFlag(label="waitany")
        for i, req in enumerate(reqs):
            def waiter(idx=i, r=req):
                payload = yield from wait_flag(r.flag)
                if not any_flag.is_set:
                    world.engine.set_flag(any_flag, (idx, payload))
            yield Spawn(waiter(), name="waitany-helper")
        idx, payload = yield from wait_flag(any_flag)
        if payload.__class__ is FaultSignal:
            raise payload.error
        reqs[idx]._mark_waited()
        if world.tracer is not None and world.engine.now > t0:
            world.tracer.record(self._global, "wait", label, t0,
                                world.engine.now)
        return idx, payload

    def send(self, data: Any, dest: int, tag: int = 0,
             datatype: Optional[Datatype] = None, count: Optional[int] = None,
             ) -> Generator[Any, Any, None]:
        req = yield from self.isend(data, dest, tag, datatype, count)
        yield from self.wait(req, label="send")

    def ssend(self, data: Any, dest: int, tag: int = 0,
              datatype: Optional[Datatype] = None, count: Optional[int] = None,
              ) -> Generator[Any, Any, None]:
        req = yield from self.issend(data, dest, tag, datatype, count)
        yield from self.wait(req, label="ssend")

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: bool = False, max_nbytes: Optional[int] = None,
             ) -> Generator[Any, Any, Any]:
        req = self.irecv(source, tag, max_nbytes)
        data, st = yield from self.wait(req, label="recv")
        return (data, st) if status else data

    def sendrecv(self, data: Any, dest: int, source: int,
                 sendtag: int = 0, recvtag: int = ANY_TAG,
                 ) -> Generator[Any, Any, Any]:
        """Simultaneous send+recv (deadlock-free halo-exchange primitive)."""
        rreq = self.irecv(source, recvtag)
        sreq = yield from self.isend(data, dest, sendtag)
        yield from self.wait(sreq, label="sendrecv")
        rdata, _ = yield from self.wait(rreq, label="sendrecv")
        return rdata

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG
               ) -> Optional[Status]:
        """Non-blocking probe of the unexpected queue."""
        self._check_rank(source, wildcard=True)
        self._check_tag(tag, wildcard=True)
        env = self.world.mailboxes[self._global].probe(source, tag, self.context)
        if env is None:
            return None
        return Status(env.src, env.tag, env.nbytes)

    # ------------------------------------------------------------------
    # persistent communication (MPIStream is built on these)
    # ------------------------------------------------------------------
    def send_init(self, dest: int, tag: int = 0) -> PersistentRequest:
        self._check_rank(dest)
        self._check_tag(tag)
        return PersistentRequest("send", self, dest, tag)

    def recv_init(self, source: int = ANY_SOURCE, tag: int = ANY_TAG
                  ) -> PersistentRequest:
        self._check_rank(source, wildcard=True)
        self._check_tag(tag, wildcard=True)
        return PersistentRequest("recv", self, source, tag)

    def start(self, preq: PersistentRequest, data: Any = None
              ) -> Generator[Any, Any, Request]:
        """Activate a persistent request (``MPI_Start``).

        For send-type requests ``data`` is the payload of this round."""
        preq._check_startable()
        if preq.kind == "send":
            req = yield from self.isend(data, preq.peer, preq.tag)
        else:
            req = preq.comm.irecv(preq.peer, preq.tag)
        preq.active = req
        return req

    # ------------------------------------------------------------------
    # collectives (implemented in collectives.py)
    # ------------------------------------------------------------------
    def _next_coll_tag(self, nsteps_reserved: int = 64) -> int:
        seq = self._coll_seq
        self._coll_seq += 1
        base = (seq * nsteps_reserved) % (TAG_UB - nsteps_reserved)
        return base

    def barrier(self):
        return collectives.barrier(self)

    def bcast(self, data: Any, root: int = 0):
        return collectives.bcast(self, data, root)

    def reduce(self, value: Any, op=None, root: int = 0, op_cost=None):
        return collectives.reduce(self, value, op, root, op_cost=op_cost)

    def allreduce(self, value: Any, op=None, op_cost=None):
        return collectives.allreduce(self, value, op, op_cost=op_cost)

    def gather(self, value: Any, root: int = 0):
        return collectives.gather(self, value, root)

    def allgather(self, value: Any):
        return collectives.allgather(self, value)

    def allgatherv(self, value: Any):
        return collectives.allgatherv(self, value)

    def alltoall(self, values: Sequence[Any]):
        return collectives.alltoall(self, values)

    def scatter(self, values: Optional[Sequence[Any]], root: int = 0):
        return collectives.scatter(self, values, root)

    def scan(self, value: Any, op=None):
        return collectives.scan(self, value, op)

    def ibarrier(self):
        return collectives.ibarrier(self)

    def ireduce(self, value: Any, op=None, root: int = 0, op_cost=None):
        return collectives.ireduce(self, value, op, root, op_cost=op_cost)

    def iallgatherv(self, value: Any):
        return collectives.iallgatherv(self, value)

    def iallreduce(self, value: Any, op=None):
        return collectives.iallreduce(self, value, op)

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------
    def split(self, color: Optional[int], key: int = 0
              ) -> Generator[Any, Any, Optional["Comm"]]:
        """Collective split (``MPI_Comm_split``); color=None opts out.

        The member list is agreed via a real allgather (so the call has
        realistic cost); context ids come from the world's first-creator
        cache keyed identically on every rank.
        """
        seq = self._create_seq
        self._create_seq += 1
        entries = yield from collectives.allgather(
            self, (color, key, self._rank)
        )
        if color is None:
            return None
        members = sorted(
            (k, r) for c, k, r in entries if c == color
        )
        locals_ = [r for _, r in members]
        globals_ = [self.ranks[r] for r in locals_]
        ctx_key = (self.context, "split", seq, color)
        p2p, coll = self.world.get_or_create_contexts(ctx_key)
        return Comm(self.world, globals_, self._global, p2p, coll,
                    name=f"{self.name}/split{seq}c{color}")

    def group_from_ranks(self, local_ranks: Sequence[int],
                         name: Optional[str] = None,
                         node_hint: Optional[str] = None) -> "Comm":
        """Create a sub-communicator from a locally-known member list
        *without communication* (cf. ``MPI_Comm_create_group``).

        Every member rank must call this with the identical
        ``local_ranks`` list at the same point in its communicator-
        creation sequence.  Context ids come from the world's first-
        creator cache exactly as :meth:`split` agrees on them, but no
        agreement round is paid because the membership is already known
        deterministically on every rank (e.g. derived from a validated
        :class:`~repro.core.groups.DecouplingPlan`).

        ``node_hint`` declares the layout the caller *expects* under
        the machine's placement — ``"colocated"`` (members share one
        node) or ``"spread"`` (members span several).  The hint is
        checked once against the resolved placement and exposed as
        ``comm.node_hint`` / ``comm.node_hint_ok`` so runtimes and
        reports can flag placement/plan mismatches (a "colocated"
        reduce group that the placement actually scattered) without
        paying a per-message check.
        """
        if self._freed:
            raise CommunicatorError(
                f"operation on freed communicator {self.name!r}")
        members = tuple(local_ranks)  # materialize once (iterables welcome)
        seq = self._create_seq
        ctx_key = (self.context, "group", seq, members)
        cached = self.world._group_cache.get(ctx_key)
        if cached is None:
            # first member rank to arrive validates and builds the
            # shared member structures; every other rank (the calls are
            # identical by contract, like real MPI_Comm_create_group)
            # reuses them — O(members) total instead of per rank
            if not members:
                raise CommunicatorError(
                    f"group_from_ranks on {self.name!r} (size {self.size}) "
                    "needs at least one member rank, got an empty list")
            if len(set(members)) != len(members):
                seen: set = set()
                dupes = sorted({r for r in members
                                if r in seen or seen.add(r)})
                raise CommunicatorError(
                    f"group_from_ranks on {self.name!r} members must be "
                    f"duplicate-free: rank(s) {dupes} appear more than "
                    f"once in {len(members)} requested members")
            for r in members:
                self._check_rank(r)
            globals_ = tuple(self.ranks[r] for r in members)
            index_of = {r: i for i, r in enumerate(members)}
            # node span computed once per group (not per member rank):
            # the first arrival resolves it against the placement
            node_of = self.world.node_of
            span = len({node_of(g) for g in globals_})
            cached = (globals_, index_of, span)
            self.world._group_cache[ctx_key] = cached
        globals_, index_of, span = cached
        my_local = index_of.get(self._rank)
        if my_local is None:
            preview = (list(members) if len(members) <= 16
                       else list(members[:16]) + ["..."])
            raise CommunicatorError(
                f"rank {self._rank} of {self.name!r} is not in the "
                f"requested group of {len(members)} member(s) {preview}; "
                "only members may call group_from_ranks")
        if node_hint is not None and node_hint not in ("colocated", "spread"):
            raise CommunicatorError(
                f"unknown node_hint {node_hint!r}; use 'colocated', "
                "'spread' or None")
        # all validation passed: only now consume this rank's creation
        # sequence number and (first arrival) the context ids, so an
        # error above leaves the creation sequence untouched, exactly
        # as before the shared-structure cache
        self._create_seq += 1
        p2p, coll = self.world.get_or_create_contexts(ctx_key)
        comm = Comm(self.world, globals_, self._global, p2p, coll,
                    name=name or f"{self.name}/group{seq}",
                    my_local=my_local)
        comm.node_hint = node_hint
        comm.node_hint_ok = (
            None if node_hint is None
            else (span == 1) == (node_hint == "colocated"))
        return comm

    def create_intercomm(self, local_ranks: Sequence[int],
                         remote_ranks: Sequence[int], tag: int = 0,
                         name: Optional[str] = None) -> "Intercomm":
        """Create an intercommunicator between two disjoint groups of
        this communicator's members *without communication* (the
        connect/accept analogue of :meth:`group_from_ranks`; cf.
        ``MPI_Intercomm_create``).

        Members of *both* groups call this at the same logical point:
        each side passes its own group as ``local_ranks`` and the peer
        group as ``remote_ranks`` (so the two sides' argument lists are
        mirrors of each other).  The context pair is agreed through the
        world's first-creator cache under a key derived from the *pair*
        of member tuples (order-normalized), so both sides resolve the
        identical contexts — the analogue of the bridge-communicator
        tag agreement in ``MPI_Intercomm_create``.  ``tag``
        disambiguates repeated intercommunicators between the same two
        groups, exactly like the MPI bridge tag.

        On the returned :class:`Intercomm`, ``dest``/``source`` ranks
        address the **remote** group; collectives and communicator
        derivation are not modeled and raise
        :class:`~repro.simmpi.errors.CommunicatorError`.
        """
        if self._freed:
            raise CommunicatorError(
                f"operation on freed communicator {self.name!r}")
        self._check_tag(tag)
        local = tuple(local_ranks)
        remote = tuple(remote_ranks)
        for side, group in (("local", local), ("remote", remote)):
            if not group:
                raise CommunicatorError(
                    f"create_intercomm on {self.name!r}: the {side} group "
                    f"is empty (local has {len(local)} member(s), remote "
                    f"has {len(remote)}); both groups need at least one "
                    "rank")
            if len(set(group)) != len(group):
                raise CommunicatorError(
                    f"create_intercomm on {self.name!r}: the {side} group "
                    f"{list(group)} has duplicate ranks")
            for r in group:
                self._check_rank(r)
        overlap = sorted(set(local) & set(remote))
        if overlap:
            raise CommunicatorError(
                f"create_intercomm on {self.name!r}: groups must be "
                f"disjoint; rank(s) {overlap} appear on both sides")
        if self._rank not in local:
            raise CommunicatorError(
                f"rank {self._rank} of {self.name!r} is not in its own "
                f"local group {list(local)}; each side passes its own "
                "group as local_ranks")
        local_glob = tuple(self.ranks[r] for r in local)
        remote_glob = tuple(self.ranks[r] for r in remote)
        # both sides must compute one key: normalize the pair by the
        # smaller leading member (the groups are disjoint, so the
        # ordering is total and communication-free)
        lo, hi = ((local_glob, remote_glob)
                  if local_glob[0] < remote_glob[0]
                  else (remote_glob, local_glob))
        ctx_key = (self.context, "intercomm", tag, lo, hi)
        p2p, coll = self.world.get_or_create_contexts(ctx_key)
        return Intercomm(
            self.world, local_glob, remote_glob, self._global, p2p, coll,
            name=name or f"{self.name}/inter{tag}",
            my_local=local.index(self._rank))

    def dup(self) -> Generator[Any, Any, "Comm"]:
        """Duplicate the communicator with fresh contexts (collective)."""
        seq = self._create_seq
        self._create_seq += 1
        yield from collectives.barrier(self)
        ctx_key = (self.context, "dup", seq)
        p2p, coll = self.world.get_or_create_contexts(ctx_key)
        return Comm(self.world, self.ranks, self._global, p2p, coll,
                    name=f"{self.name}/dup{seq}")

    def free(self) -> None:
        self._freed = True


class Intercomm(Comm):
    """An intercommunicator: a local group exchanging point-to-point
    traffic with a disjoint remote group (``MPI_Comm_test_inter`` true).

    ``rank``/``size`` describe the **local** group (as in MPI);
    ``dest``/``source`` arguments of every point-to-point operation
    address the **remote** group.  Envelopes carry the sender's rank in
    *its own* group, which is exactly the remote-rank coordinate the
    receiver matches on — so the shared mailboxes need no new matching
    machinery, only the dedicated context pair.

    Intercommunicator collectives and communicator derivation (split /
    dup / merge) are not part of the modeled surface and raise
    :class:`~repro.simmpi.errors.CommunicatorError`.

    Fault semantics (fault-injection runs): a detected failure in the
    remote group poisons exact receives from the dead remote rank and
    interrupts wildcard receives on this intercommunicator
    (``PROC_FAILED_PENDING``) until :meth:`failure_ack`;
    :meth:`failed_members` reports dead **remote** ranks, since only
    remote peers carry intercomm traffic.
    """

    is_inter = True

    def __init__(self, world: World, ranks: Sequence[int],
                 remote_ranks: Sequence[int], my_global: int,
                 context_p2p: int, context_coll: int, name: str = "intercomm",
                 my_local: Optional[int] = None):
        # set before Comm.__init__: the fault controller's register_comm
        # (called from there) distinguishes intercomms by this attribute
        self.remote_ranks: Tuple[int, ...] = tuple(remote_ranks)
        self.remote_size = len(self.remote_ranks)
        super().__init__(world, ranks, my_global, context_p2p, context_coll,
                         name=name, my_local=my_local)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def remote_global_of(self, remote: int) -> int:
        """Global rank behind a remote-group rank."""
        self._check_remote_rank(remote)
        return self.remote_ranks[remote]

    @property
    def all_member_ranks(self) -> Tuple[int, ...]:
        """Global ranks of both groups (local first) — the revocation
        sweep cancels pending receives on every one of them."""
        return self.ranks + self.remote_ranks

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Intercomm({self.name!r}, rank={self._rank}/{self.size}, "
                f"remote={self.remote_size})")

    # ------------------------------------------------------------------
    # validation (dest/source live in the remote group)
    # ------------------------------------------------------------------
    def _check_remote_rank(self, r: int, wildcard: bool = False) -> None:
        if self._freed:
            raise CommunicatorError(
                f"operation on freed intercommunicator {self.name!r}")
        if 0 <= r < self.remote_size:
            return
        if wildcard and r == ANY_SOURCE:
            return
        raise InvalidRankError(
            f"remote rank {r} out of range for intercommunicator "
            f"{self.name!r} with a remote group of size {self.remote_size} "
            f"(local size {self.size})")

    # ------------------------------------------------------------------
    # point-to-point, remote-rank addressed
    # ------------------------------------------------------------------
    def isend(self, data: Any, dest: int, tag: int = 0,
              datatype: Optional[Datatype] = None, count: Optional[int] = None,
              _ctx: Optional[int] = None,
              nbytes: Optional[int] = None,
              force_eager: bool = False) -> Generator[Any, Any, Request]:
        if self._freed or dest < 0 or dest >= self.remote_size:
            self._check_remote_rank(dest)
        if tag < 0 or tag > TAG_UB:
            self._check_tag(tag)
        if nbytes is None:
            nbytes = payload_nbytes(data, datatype, count)
        world = self.world
        delay = world._o_send_delay
        if delay is not None:
            yield delay
        # lsrc is this rank's coordinate in its OWN group: that is the
        # remote-rank value the receiving side matches against
        return world.post_send(
            self._global, self.remote_ranks[dest], self._rank, tag,
            self.context if _ctx is None else _ctx, data, nbytes,
            force_eager=force_eager,
        )

    def issend(self, data: Any, dest: int, tag: int = 0,
               datatype: Optional[Datatype] = None, count: Optional[int] = None,
               _ctx: Optional[int] = None) -> Generator[Any, Any, Request]:
        self._check_remote_rank(dest)
        self._check_tag(tag)
        nbytes = payload_nbytes(data, datatype, count)
        o_send = self.world._o_send
        if o_send > 0:
            yield Delay(o_send)
        return self.world.post_send(
            self._global, self.remote_ranks[dest], self._rank, tag,
            self.context if _ctx is None else _ctx, data, nbytes,
            synchronous=True,
        )

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              max_nbytes: Optional[int] = None,
              _ctx: Optional[int] = None) -> Request:
        if self._freed or source < ANY_SOURCE or source >= self.remote_size:
            self._check_remote_rank(source, wildcard=True)
        if tag > TAG_UB or tag < ANY_TAG:
            self._check_tag(tag, wildcard=True)
        ctl = self.world._fault_ctl
        if ctl is not None:
            ctl.check_recv(self, source)
        return self.world.post_recv(
            self._global, source, tag,
            self.context if _ctx is None else _ctx, max_nbytes,
        )

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG
               ) -> Optional[Status]:
        self._check_remote_rank(source, wildcard=True)
        self._check_tag(tag, wildcard=True)
        env = self.world.mailboxes[self._global].probe(
            source, tag, self.context)
        if env is None:
            return None
        return Status(env.src, env.tag, env.nbytes)

    def send_init(self, dest: int, tag: int = 0) -> PersistentRequest:
        self._check_remote_rank(dest)
        self._check_tag(tag)
        return PersistentRequest("send", self, dest, tag)

    def recv_init(self, source: int = ANY_SOURCE, tag: int = ANY_TAG
                  ) -> PersistentRequest:
        self._check_remote_rank(source, wildcard=True)
        self._check_tag(tag, wildcard=True)
        return PersistentRequest("recv", self, source, tag)

    # ------------------------------------------------------------------
    # fault surface (remote group carries the traffic)
    # ------------------------------------------------------------------
    def failed_members(self) -> Tuple[int, ...]:
        """Remote-group ranks whose failure has been detected."""
        ctl = self.world._fault_ctl
        if ctl is None:
            return ()
        detected = ctl.detected
        return tuple(i for i, g in enumerate(self.remote_ranks)
                     if g in detected)

    # ------------------------------------------------------------------
    # the unmodeled surface
    # ------------------------------------------------------------------
    def _no_intercomm(self, op: str):
        raise CommunicatorError(
            f"{op} is not modeled on intercommunicators "
            f"({self.name!r}); merge the groups into an "
            "intracommunicator first")

    def barrier(self):
        self._no_intercomm("barrier")

    def bcast(self, data: Any, root: int = 0):
        self._no_intercomm("bcast")

    def reduce(self, value: Any, op=None, root: int = 0, op_cost=None):
        self._no_intercomm("reduce")

    def allreduce(self, value: Any, op=None, op_cost=None):
        self._no_intercomm("allreduce")

    def gather(self, value: Any, root: int = 0):
        self._no_intercomm("gather")

    def allgather(self, value: Any):
        self._no_intercomm("allgather")

    def allgatherv(self, value: Any):
        self._no_intercomm("allgatherv")

    def alltoall(self, values: Sequence[Any]):
        self._no_intercomm("alltoall")

    def scatter(self, values: Optional[Sequence[Any]], root: int = 0):
        self._no_intercomm("scatter")

    def scan(self, value: Any, op=None):
        self._no_intercomm("scan")

    def ibarrier(self):
        self._no_intercomm("ibarrier")

    def ireduce(self, value: Any, op=None, root: int = 0, op_cost=None):
        self._no_intercomm("ireduce")

    def iallgatherv(self, value: Any):
        self._no_intercomm("iallgatherv")

    def iallreduce(self, value: Any, op=None):
        self._no_intercomm("iallreduce")

    def split(self, color: Optional[int], key: int = 0):
        self._no_intercomm("split")

    def dup(self):
        self._no_intercomm("dup")

    def group_from_ranks(self, local_ranks: Sequence[int],
                         name: Optional[str] = None,
                         node_hint: Optional[str] = None) -> "Comm":
        self._no_intercomm("group_from_ranks")

    def create_intercomm(self, local_ranks: Sequence[int],
                         remote_ranks: Sequence[int], tag: int = 0,
                         name: Optional[str] = None) -> "Intercomm":
        self._no_intercomm("create_intercomm")
