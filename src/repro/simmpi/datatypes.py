"""Datatype descriptors and payload sizing.

Real MPI types drive two things the simulation cares about: the *wire
size* of a message (which sets its transfer time) and the *layout*
contract between sender and receiver (which the paper's MPIStream uses
to define stream elements with non-contiguous, zero-copy layouts).

We keep the MPI shape — named base types, ``contiguous`` / ``vector`` /
``struct`` constructors with size and extent — and add a sizing helper
for arbitrary Python payloads so application code can send real data
(numeric mode) or explicit byte counts (scale mode) through one API.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Sequence, Tuple

import numpy as np

from .errors import DatatypeError


@dataclass(frozen=True)
class Datatype:
    """A (possibly derived) datatype: wire size and memory extent in bytes.

    ``size`` is the number of bytes actually transferred per element;
    ``extent`` is the span the element occupies in memory (>= size for
    strided/vector types).  The distinction matters for MPIStream's
    zero-copy, non-contiguous stream elements: the wire cost uses
    ``size``, buffer accounting uses ``extent``.
    """

    name: str
    size: int
    extent: int

    def __post_init__(self):
        if self.size < 0 or self.extent < 0:
            raise DatatypeError(f"negative size/extent in {self.name}")
        if self.extent < self.size:
            raise DatatypeError(
                f"extent ({self.extent}) < size ({self.size}) in {self.name}"
            )


# MPI base types (sizes per the usual C ABI on the paper's testbed)
CHAR = Datatype("CHAR", 1, 1)
INT = Datatype("INT", 4, 4)
LONG = Datatype("LONG", 8, 8)
FLOAT = Datatype("FLOAT", 4, 4)
DOUBLE = Datatype("DOUBLE", 8, 8)
BYTE = Datatype("BYTE", 1, 1)


def contiguous(count: int, base: Datatype, name: str = "") -> Datatype:
    """``MPI_Type_contiguous``: ``count`` adjacent copies of ``base``."""
    if count < 0:
        raise DatatypeError("contiguous count must be non-negative")
    return Datatype(
        name or f"contig({count},{base.name})",
        count * base.size,
        count * base.extent,
    )


def vector(count: int, blocklength: int, stride: int, base: Datatype,
           name: str = "") -> Datatype:
    """``MPI_Type_vector``: ``count`` blocks of ``blocklength`` elements,
    ``stride`` elements apart.  Non-contiguous when stride > blocklength —
    the layout the paper uses for zero-copy stream elements."""
    if count < 0 or blocklength < 0:
        raise DatatypeError("vector count/blocklength must be non-negative")
    if count > 0 and stride < blocklength:
        raise DatatypeError("vector stride must be >= blocklength")
    size = count * blocklength * base.size
    if count == 0:
        extent = 0
    else:
        extent = ((count - 1) * stride + blocklength) * base.extent
    return Datatype(name or f"vector({count},{blocklength},{stride},{base.name})",
                    size, extent)


def struct(fields: Sequence[Tuple[int, Datatype]], name: str = "") -> Datatype:
    """``MPI_Type_create_struct``: heterogeneous packed record."""
    size = 0
    extent = 0
    for count, base in fields:
        if count < 0:
            raise DatatypeError("struct field count must be non-negative")
        size += count * base.size
        extent += count * base.extent
    return Datatype(name or f"struct({len(fields)} fields)", size, extent)


# ----------------------------------------------------------------------
# payload sizing
# ----------------------------------------------------------------------

class SizedPayload:
    """Wrapper carrying an explicit wire size for scale-mode payloads.

    In scale mode applications ship summaries (counts, digests) instead
    of full data but must still pay the full transfer cost; wrapping the
    summary in ``SizedPayload(summary, nbytes)`` does exactly that.
    """

    __slots__ = ("data", "nbytes")

    def __init__(self, data: Any, nbytes: int):
        if nbytes < 0:
            raise DatatypeError("SizedPayload nbytes must be non-negative")
        self.data = data
        self.nbytes = int(nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SizedPayload({self.data!r}, nbytes={self.nbytes})"


def payload_nbytes(obj: Any, datatype: Datatype = None, count: int = None) -> int:
    """Wire size in bytes of an arbitrary payload.

    Priority: explicit (datatype, count) -> SizedPayload ->
    ``__wire_nbytes__`` protocol (application payload types declare
    their own wire size) -> buffer protocol (NumPy) -> bytes/str ->
    containers (recursive) -> scalars.
    The container estimate is intentionally cheap and deterministic; it
    exists so tests can send small Python structures without declaring
    types, while performance-sensitive paths use arrays or SizedPayload.
    """
    if datatype is not None:
        n = count if count is not None else 1
        return n * datatype.size
    if isinstance(obj, SizedPayload):
        return obj.nbytes
    wire = getattr(obj, "__wire_nbytes__", None)
    if wire is not None:
        return int(wire() if callable(wire) else wire)
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return 8
    if isinstance(obj, float):
        return 8
    if isinstance(obj, complex):
        return 16
    if obj is None:
        return 0
    if isinstance(obj, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, (np.integer, np.floating)):
        return obj.nbytes
    # fallback: in-memory footprint, better than crashing on exotic types
    return sys.getsizeof(obj)
