"""Noise and imbalance models.

The paper's decoupling strategy claims two benefits: pipelining and
*imbalance absorption*.  To measure absorption we need imbalance to
exist in the simulation; this module produces it deterministically.

Two effects are modeled, matching Section I of the paper ("interference
from system noises is unavoidable", "higher temperature variance ...
vary the speed of processors"):

* a **persistent per-rank speed factor** — each rank draws a constant
  multiplicative slowdown from a lognormal distribution, representing
  core-to-core frequency / thermal variance;
* **transient noise** — while computing, a rank loses a random fraction
  of each noise quantum, representing OS daemons and interrupts
  (Petrini et al., SC'03).  Over an interval of nominal length ``t`` the
  expected inflation is ``quantum_fraction``; the realized inflation is
  sampled per compute call so long phases smooth out and short phases
  jitter, as on a real machine.

Both draws come from per-rank ``numpy`` generators seeded from the
config seed and the rank id, so a simulation is reproducible and two
runs that only differ elsewhere see identical noise.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from .config import NoiseConfig


class NoiseModel:
    """Deterministic per-rank compute-time inflation."""

    def __init__(self, config: NoiseConfig, nranks: int):
        config.validate()
        self.config = config
        self.nranks = nranks
        self._skew: Dict[int, float] = {}
        self._rngs: Dict[int, np.random.Generator] = {}

    def _rng(self, rank: int) -> np.random.Generator:
        rng = self._rngs.get(rank)
        if rng is None:
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=self.config.seed, spawn_key=(rank,))
            )
            self._rngs[rank] = rng
        return rng

    def persistent_factor(self, rank: int) -> float:
        """Constant speed factor (>= ~1) for ``rank``.

        Lognormal with median 1 and sigma = ``persistent_skew``; floored
        at 1.0 so the *fastest* ranks define the baseline — what matters
        for synchronization cost is the spread, and flooring keeps
        calibrated absolute times stable under noise sweeps.
        """
        factor = self._skew.get(rank)
        if factor is None:
            sigma = self.config.persistent_skew
            if sigma <= 0:
                factor = 1.0
            else:
                factor = max(1.0, float(self._rng(rank).lognormal(0.0, sigma)))
            self._skew[rank] = factor
        return factor

    def inflate(self, rank: int, duration: float) -> float:
        """Actual virtual-time cost of ``duration`` nominal compute seconds."""
        if duration <= 0:
            return 0.0
        skew = self._skew.get(rank)
        if skew is None:
            skew = self.persistent_factor(rank)
        actual = duration * skew
        config = self.config
        frac = config.quantum_fraction
        if frac > 0.0:
            # Number of noise quanta this interval spans; each quantum
            # contributes an exponentially-distributed detour with mean
            # `frac * quantum`.  For intervals much longer than a quantum
            # the total concentrates around `frac * duration` (LLN); for
            # short intervals it is bursty.
            rng = self._rngs.get(rank)
            if rng is None:
                rng = self._rng(rank)
            quanta = duration / config.quantum
            n_events = int(rng.poisson(quanta if quanta > 1e-12 else 1e-12))
            if n_events > 0:
                detours = rng.exponential(
                    frac * config.quantum, size=n_events
                )
                actual += float(detours.sum())
        return actual

    def expected_inflation(self, duration: float) -> float:
        """Mean cost of ``duration`` under transient noise only (analytic).

        Used by the performance model (Eq. 1's ``T_sigma``) to predict
        imbalance cost without running the simulation.
        """
        return duration * (1.0 + self.config.quantum_fraction)

    def expected_max_factor(self, nranks: int) -> float:
        """Approximate E[max of nranks persistent factors].

        For a lognormal(0, sigma) sample of size n the maximum
        concentrates near ``exp(sigma * sqrt(2 ln n))``; this is the
        analytic counterpart of the synchronization penalty a bulk-
        synchronous code pays at each barrier, and grows with scale —
        the paper's core motivation for absorbing imbalance.
        """
        sigma = self.config.persistent_skew
        if sigma <= 0 or nranks <= 1:
            return 1.0
        return math.exp(sigma * math.sqrt(2.0 * math.log(nranks)))
