"""Request objects for non-blocking and persistent operations.

A :class:`Request` wraps an :class:`~repro.simmpi.engine.EventFlag`; the
transport sets the flag when the operation completes (for receives, the
flag payload is ``(data, Status)``).  ``Comm.wait`` / ``Comm.waitall`` /
``Comm.waitany`` block on these flags; ``test`` polls them.

Persistent requests (``send_init`` / ``recv_init`` + ``start``) mirror
MPI persistent communication, which the paper's MPIStream library is
built on: the argument set is frozen once and each ``start`` spawns a
fresh transfer with those arguments.
"""

from __future__ import annotations

from typing import Any, Optional

from .engine import EventFlag, format_label
from .errors import RequestError


class Status:
    """Completion status of a receive: source, tag, and message size."""

    __slots__ = ("source", "tag", "nbytes")

    def __init__(self, source: int, tag: int, nbytes: int):
        self.source = source
        self.tag = tag
        self.nbytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Status(source={self.source}, tag={self.tag}, nbytes={self.nbytes})"


class Request(EventFlag):
    """Handle for an in-flight non-blocking operation.

    A request *is* its completion flag: ``Request`` subclasses
    :class:`~repro.simmpi.engine.EventFlag` and ``req.flag`` returns
    ``self``, so the transport allocates one object per operation where
    it used to allocate two (requests are created twice per message on
    the hot path).  All call sites keep reading ``req.flag``.
    """

    __slots__ = ("kind", "_waited")

    def __init__(self, kind: str, label: Any = ""):
        # inlined EventFlag.__init__ (saves a call per request)
        self.is_set = False
        self.time = 0.0
        self.payload = None
        self._waiters = []
        self.label = label or kind
        self.kind = kind
        self._waited = False

    @property
    def flag(self) -> EventFlag:
        return self

    @property
    def done(self) -> bool:
        return self.is_set

    def test(self) -> bool:
        """Non-blocking completion check (``MPI_Test`` without the wait)."""
        return self.is_set

    def result(self) -> Any:
        """Value delivered at completion; raises if not complete yet."""
        if not self.is_set:
            raise RequestError(
                f"request {format_label(self.label)!r} not complete")
        return self.payload

    def _mark_waited(self) -> None:
        if self._waited:
            raise RequestError(
                f"request {format_label(self.label)!r} waited on twice; "
                "requests are "
                "single-completion objects (use persistent requests to reuse)"
            )
        self._waited = True


def completed_request(kind: str, payload: Any = None) -> Request:
    """A request that is already complete (zero-size sends, self-matches)."""
    req = Request(kind)
    req.flag.is_set = True
    req.flag.payload = payload
    return req


class PersistentRequest:
    """Frozen argument set for repeated point-to-point operations.

    Created by ``Comm.send_init`` / ``Comm.recv_init``; each
    ``Comm.start`` launches one transfer with these arguments and
    returns a fresh :class:`Request`.  At most one started transfer may
    be active at a time, per MPI semantics.
    """

    __slots__ = ("kind", "comm", "peer", "tag", "data_factory", "active", "freed")

    def __init__(self, kind: str, comm, peer: int, tag: int, data_factory=None):
        self.kind = kind            # "send" or "recv"
        self.comm = comm
        self.peer = peer
        self.tag = tag
        self.data_factory = data_factory  # callable -> payload (send side)
        self.active: Optional[Request] = None
        self.freed = False

    def _check_startable(self) -> None:
        if self.freed:
            raise RequestError("start on a freed persistent request")
        if self.active is not None and not self.active.done:
            raise RequestError(
                "persistent request started while a previous start is active"
            )

    def free(self) -> None:
        if self.active is not None and not self.active.done:
            raise RequestError("free on an active persistent request")
        self.freed = True
