"""One-sided communication: simulated MPI-3 RMA windows.

A :class:`Win` exposes a per-rank region of ``nbytes`` addressable
bytes over an intracommunicator.  ``put``/``get`` move data without the
target posting a receive; the transfer itself is costed through the
machine's :class:`~repro.simmpi.fabrics.Fabric` exactly like a
point-to-point message (same latency/bandwidth/contention model), so
one-sided and two-sided traffic share a single timing story.

Synchronization follows the two MPI modes the co-simulation hub needs:

``fence()``
    Active target.  Drains every RMA operation this rank has issued
    (a put is drained once its bytes are *delivered*, not merely once
    the origin buffer is free), then barriers on the communicator.
    The first fence opens an access epoch; each later fence closes the
    previous epoch and opens the next.

``lock(target)`` / ``unlock(target)``
    Passive target, exclusive.  The lock lives at the target: an
    uncontended acquire costs a request/grant round trip
    (``2 x link latency``); contended acquires queue FIFO at the target
    and are granted by the releaser.  ``unlock`` drains the epoch's
    operations before releasing, giving the usual
    lock-put-unlock-becomes-visible contract.

Misuse — out-of-range targets or byte ranges, access outside an epoch,
overlapping epochs, unlock without lock — raises
:class:`~repro.simmpi.errors.WindowError` (``MPI_ERR_WIN`` /
``MPI_ERR_RMA_SYNC``).  Windows over intercommunicators are rejected,
as in MPI.

Window memory is modeled as a sparse ``{offset: value}`` store per
rank: the simulator tracks *which* bytes move and *when* they become
visible, not their bit patterns.  A put's value lands at the target at
the fabric's ``delivered`` time; a get snapshots the target's value at
issue time and completes at the origin one request latency plus one
transfer later.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Any, Deque, Dict, Generator, List, Optional, Tuple

from .datatypes import payload_nbytes
from .engine import Delay, EventFlag, WaitFlag
from .errors import WindowError
from .request import Request

__all__ = [
    "Win",
]


class _WinState:
    """Shared (all-ranks) state behind one window allocation.

    The first member rank to reach :meth:`Win.allocate` creates the
    state under a key every member computes identically — the same
    first-arrival scheme communicator creation uses for context ids.
    """

    __slots__ = ("sizes", "mem", "lock_owner", "lock_queue")

    def __init__(self) -> None:
        #: per-rank window size in bytes (filled as members arrive)
        self.sizes: Dict[int, int] = {}
        #: per-rank sparse memory {offset: value}
        self.mem: Dict[int, Dict[int, Any]] = {}
        #: per-target current exclusive-lock holder (local rank)
        self.lock_owner: Dict[int, Optional[int]] = {}
        #: per-target FIFO of (waiter rank, grant flag, grant latency)
        self.lock_queue: Dict[int, Deque[Tuple[int, EventFlag, float]]] = {}


class Win:
    """A one-sided window over an intracommunicator.

    Construct collectively with ``yield from Win.allocate(comm, nbytes)``
    — every member must call it, in the same program order relative to
    other allocations on the same communicator.
    """

    def __init__(self, comm, state: _WinState, nbytes: int):
        self.comm = comm
        self._state = state
        self.nbytes = nbytes
        self.name = f"win@{comm.name}"
        #: "none" | "fence" | ("lock", target)
        self._epoch: Any = "none"
        #: flags set when an issued operation has fully settled at the
        #: target (put: bytes delivered; get: value returned)
        self._pending: List[EventFlag] = []
        self._freed = False

    # ------------------------------------------------------------------
    # allocation / teardown (collective)
    # ------------------------------------------------------------------
    @classmethod
    def allocate(cls, comm, nbytes: int) -> Generator[Any, Any, "Win"]:
        """Collectively allocate a window exposing ``nbytes`` local bytes.

        Per-rank sizes may differ (``MPI_Win_allocate`` semantics); a
        zero-size exposure is legal — such a rank can originate RMA but
        offers no target memory.
        """
        if getattr(comm, "is_inter", False):
            raise WindowError(
                f"cannot allocate a window over intercommunicator "
                f"{comm.name!r}: one-sided windows require an "
                "intracommunicator (merge the groups first)")
        if not isinstance(nbytes, int) or nbytes < 0:
            raise WindowError(
                f"window size must be a non-negative integer byte count, "
                f"got {nbytes!r}")
        # every member executes window allocations on a communicator in
        # the same order, so a per-rank sequence number names the same
        # allocation on every rank
        seq = getattr(comm, "_win_seq", 0)
        comm._win_seq = seq + 1
        key = (comm.context, "win", seq)
        cache = comm.world._win_cache
        state = cache.get(key)
        if state is None:
            state = cache[key] = _WinState()
        state.sizes[comm.rank] = nbytes
        state.mem[comm.rank] = {}
        win = cls(comm, state, nbytes)
        yield from comm.barrier()
        return win

    def free(self) -> Generator[Any, Any, None]:
        """Collectively free the window.

        Freeing with an open passive-target epoch is an error; a fence
        epoch is implicitly closed by draining the outstanding
        operations before the closing barrier.
        """
        self._check_live("free")
        if type(self._epoch) is tuple:
            raise WindowError(
                f"free of {self.name} with an open lock epoch on target "
                f"rank {self._epoch[1]}: unlock first")
        yield from self._drain()
        yield from self.comm.barrier()
        self._freed = True

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------
    def put(self, value: Any, target: int, offset: int = 0,
            nbytes: Optional[int] = None) -> Generator[Any, Any, Request]:
        """Write ``value`` into ``target``'s window at ``offset``.

        Returns a request that completes when the origin buffer is
        reusable (``sender_free``); the value becomes visible at the
        target at the fabric's ``delivered`` time, and the enclosing
        epoch close waits for that.
        """
        self._check_access("put", target)
        if nbytes is None:
            nbytes = payload_nbytes(value, None, None)
        self._check_range("put", target, offset, nbytes)
        comm = self.comm
        world = comm.world
        ctl = world._fault_ctl
        if ctl is not None:
            ctl.check_send(comm.ranks[target], comm.context)
        if world._o_send > 0:
            yield Delay(world._o_send)
        engine = world.engine
        timing = world.network.transfer(
            comm._global, comm.ranks[target], nbytes, ready=engine.now)
        req = Request("put", label=("put->", target, "@", offset))
        engine.call_at(timing.sender_free, partial(engine.set_flag, req))
        settle = EventFlag(label=("put-settle->", target))
        mem = self._state.mem[target]
        set_flag = engine.set_flag

        def _land() -> None:
            mem[offset] = value
            set_flag(settle)

        if world._lane_of_rank is not None:
            # sharded engine: the landing mutates the target's window
            # memory — a boundary message into the target's lane
            engine.deliver_at(comm.ranks[target], timing.delivered, _land)
        else:
            engine.call_at(timing.delivered, _land)
        self._pending.append(settle)
        return req

    def get(self, target: int, offset: int = 0,
            nbytes: int = 8) -> Generator[Any, Any, Request]:
        """Read ``nbytes`` at ``offset`` from ``target``'s window.

        The value is snapshotted at issue time at the target and
        returned as the request's payload after one request latency
        plus the data transfer back to the origin.
        """
        self._check_access("get", target)
        self._check_range("get", target, offset, nbytes)
        comm = self.comm
        world = comm.world
        ctl = world._fault_ctl
        if ctl is not None:
            ctl.check_send(comm.ranks[target], comm.context)
        if world._o_send > 0:
            yield Delay(world._o_send)
        engine = world.engine
        latency, _ = world.network._link(comm._global, comm.ranks[target])
        timing = world.network.transfer(
            comm.ranks[target], comm._global, nbytes,
            ready=engine.now + latency)
        value = self._state.mem[target].get(offset)
        req = Request("get", label=("get<-", target, "@", offset))
        engine.call_at(timing.delivered,
                       partial(engine.set_flag, req, value))
        self._pending.append(req)
        return req

    def local(self) -> Dict[int, Any]:
        """Snapshot of this rank's own window memory ``{offset: value}``.

        Local loads need no epoch (the unified-model guarantee a
        recovery successor relies on when it reads the state a dead
        peer mirrored into it).
        """
        self._check_live("local load")
        return dict(self._state.mem[self.comm.rank])

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def fence(self, end: bool = False) -> Generator[Any, Any, None]:
        """Active-target epoch boundary: drain, barrier, open the next.

        ``end=True`` is the ``MPI_MODE_NOSUCCEED`` analogue — the fence
        closes the current epoch without opening another, so the window
        can switch to passive-target (lock) synchronization afterwards.
        """
        self._check_live("fence")
        if type(self._epoch) is tuple:
            raise WindowError(
                f"overlapping synchronization epochs on {self.name}: "
                f"fence while a lock epoch on target rank "
                f"{self._epoch[1]} is open")
        yield from self._drain()
        yield from self.comm.barrier()
        self._epoch = "none" if end else "fence"

    def lock(self, target: int) -> Generator[Any, Any, None]:
        """Acquire the exclusive passive-target lock at ``target``."""
        self._check_live("lock")
        self._check_target("lock", target)
        ep = self._epoch
        if ep == "fence":
            raise WindowError(
                f"overlapping synchronization epochs on {self.name}: "
                f"lock({target}) while a fence epoch is open")
        if type(ep) is tuple:
            raise WindowError(
                f"lock({target}) on {self.name} while already holding "
                f"the lock on target rank {ep[1]}")
        comm = self.comm
        world = comm.world
        ctl = world._fault_ctl
        if ctl is not None:
            ctl.check_send(comm.ranks[target], comm.context)
        state = self._state
        latency, _ = world.network._link(comm._global, comm.ranks[target])
        if state.lock_owner.get(target) is None:
            state.lock_owner[target] = comm.rank
            if latency > 0:
                yield Delay(2 * latency)  # request + grant round trip
        else:
            flag = EventFlag(label=("win-lock:", target))
            state.lock_queue.setdefault(target, deque()).append(
                (comm.rank, flag, latency))
            if latency > 0:
                yield Delay(latency)  # lock request reaches the target
            yield WaitFlag(flag)      # grant arrives from the releaser
        self._epoch = ("lock", target)

    def unlock(self, target: int) -> Generator[Any, Any, None]:
        """Drain the epoch's operations and release the lock."""
        self._check_live("unlock")
        if self._epoch != ("lock", target):
            held = (f"the lock held is on target rank {self._epoch[1]}"
                    if type(self._epoch) is tuple
                    else "no lock is held")
            raise WindowError(
                f"unlock({target}) on {self.name} without a matching "
                f"lock: {held}")
        yield from self._drain()
        state = self._state
        engine = self.comm.world.engine
        queue = state.lock_queue.get(target)
        if queue:
            nxt, flag, grant_latency = queue.popleft()
            state.lock_owner[target] = nxt
            world = self.comm.world
            if world._lane_of_rank is not None:
                # the grant wakes the next holder, a different rank:
                # route it to that rank's lane (invariant-exempt — a
                # same-node grant can undercut the lookahead bound)
                engine.wake_at(self.comm.ranks[nxt],
                               engine.now + grant_latency,
                               partial(engine.set_flag, flag))
            else:
                engine.call_at(engine.now + grant_latency,
                               partial(engine.set_flag, flag))
        else:
            state.lock_owner[target] = None
        self._epoch = "none"

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _drain(self) -> Generator[Any, Any, None]:
        pending = self._pending
        while pending:
            flag = pending.pop()
            if not flag.is_set:
                yield WaitFlag(flag)

    def _check_live(self, op: str) -> None:
        if self._freed:
            raise WindowError(f"{op} on freed window {self.name}")

    def _check_target(self, op: str, target: int) -> None:
        if not 0 <= target < self.comm.size:
            raise WindowError(
                f"{op} target rank {target} out of range for {self.name} "
                f"over {self.comm.name!r} of size {self.comm.size}")

    def _check_access(self, op: str, target: int) -> None:
        self._check_live(op)
        self._check_target(op, target)
        ep = self._epoch
        if ep == "fence":
            return
        if type(ep) is tuple:
            if ep[1] == target:
                return
            raise WindowError(
                f"{op} on target rank {target} of {self.name} but the "
                f"open passive-target epoch locks target rank {ep[1]}")
        raise WindowError(
            f"{op} on {self.name} outside any synchronization epoch: "
            f"open one with fence() or lock({target}) first")

    def _check_range(self, op: str, target: int, offset: int,
                     nbytes: int) -> None:
        size = self._state.sizes[target]
        if offset < 0 or nbytes < 0 or offset + nbytes > size:
            raise WindowError(
                f"{op} byte range [{offset}, {offset + nbytes}) does not "
                f"fit the window at target rank {target}, which exposes "
                f"{size} byte(s)")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Win({self.name!r}, nbytes={self.nbytes})"
