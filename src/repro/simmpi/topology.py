"""Cartesian process topologies.

iPIC3D and the CG solver decompose a 3-D domain over a Cartesian grid
of processes; the reference particle exchange forwards along the
topology's six direct neighbours with a worst case of
``DimX + DimY + DimZ`` steps (Section IV-D1).  This module provides
``dims_create`` (the MPI balanced factorization), a :class:`CartComm`
wrapper with ``coords``/``shift``/``neighbors``, and periodic wrap.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Generator, List, Optional, Sequence, Tuple

from .comm import Comm
from .errors import TopologyError


def dims_create(nnodes: int, ndims: int) -> List[int]:
    """Balanced factorization of ``nnodes`` into ``ndims`` dimensions,
    mirroring ``MPI_Dims_create``: dims sorted non-increasing and as
    close as possible.

    "As close as possible" is exact, not greedy: the result is the
    factorization whose sorted-descending tuple is lexicographically
    smallest — equivalently, the minimal largest dimension with ties
    broken toward balance (the seed's largest-prime-factor greedy gave
    e.g. ``72 → [12, 6]`` where ``[9, 8]`` exists).  Exactness matters
    now that placement studies sweep arbitrary group sizes through
    Cartesian grids.
    """
    if nnodes <= 0 or ndims <= 0:
        raise TopologyError("nnodes and ndims must be positive")
    dims = _best_dims(nnodes, ndims)
    if dims is None or _prod(dims) != nnodes:
        raise TopologyError(
            f"cannot factor {nnodes} into {ndims} dims (internal error)"
        )
    return list(dims)


@lru_cache(maxsize=4096)
def _best_dims(n: int, k: int, cap: Optional[int] = None
               ) -> Optional[Tuple[int, ...]]:
    """Lexicographically-smallest non-increasing ``k``-tuple of factors
    of ``n``, each ``<= cap``; None if impossible.  Memoized — the SPMD
    apps call dims_create once per rank."""
    if k == 1:
        return (n,) if (cap is None or n <= cap) else None
    # divisors ascend and tuples compare elementwise, so the first
    # feasible leading dim is the lexicographic optimum
    for d in _divisors(n):
        if cap is not None and d > cap:
            break
        if d ** k < n:
            continue  # d is the largest dim; k factors <= d can't reach n
        rest = _best_dims(n // d, k - 1, d)
        if rest is not None:
            return (d,) + rest
    return None


@lru_cache(maxsize=4096)
def _divisors(n: int) -> Tuple[int, ...]:
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return tuple(small + large[::-1])


def _prod(xs: Sequence[int]) -> int:
    p = 1
    for x in xs:
        p *= x
    return p


class CartComm:
    """A communicator with Cartesian coordinates attached.

    Wraps (does not subclass) a :class:`~repro.simmpi.comm.Comm`: the
    underlying communicator stays usable, and the wrapper adds
    coordinate queries and neighbour shifts.  Ranks are row-major in
    coordinate order, as in MPI with reorder=false.
    """

    def __init__(self, comm: Comm, dims: Sequence[int],
                 periods: Optional[Sequence[bool]] = None):
        dims = list(dims)
        if _prod(dims) != comm.size:
            raise TopologyError(
                f"dims {dims} do not cover communicator size {comm.size}"
            )
        if any(d <= 0 for d in dims):
            raise TopologyError(f"non-positive dimension in {dims}")
        self.comm = comm
        self.dims = tuple(dims)
        self.periods = tuple(bool(p) for p in (periods or [False] * len(dims)))
        if len(self.periods) != len(self.dims):
            raise TopologyError("periods length must match dims")

    # ------------------------------------------------------------------
    @property
    def ndims(self) -> int:
        return len(self.dims)

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    def coords(self, rank: Optional[int] = None) -> Tuple[int, ...]:
        """Coordinates of ``rank`` (default: the calling rank)."""
        r = self.comm.rank if rank is None else rank
        if not (0 <= r < self.comm.size):
            raise TopologyError(f"rank {r} out of range")
        out = []
        for d in reversed(self.dims):
            out.append(r % d)
            r //= d
        return tuple(reversed(out))

    def rank_of(self, coords: Sequence[int]) -> Optional[int]:
        """Rank at ``coords`` with periodic wrap; None if off-grid."""
        if len(coords) != self.ndims:
            raise TopologyError("coords length must match ndims")
        fixed = []
        for c, d, p in zip(coords, self.dims, self.periods):
            if 0 <= c < d:
                fixed.append(c)
            elif p:
                fixed.append(c % d)
            else:
                return None
        r = 0
        for c, d in zip(fixed, self.dims):
            r = r * d + c
        return r

    def shift(self, dim: int, disp: int = 1) -> Tuple[Optional[int], Optional[int]]:
        """(source, dest) ranks for a shift along ``dim`` by ``disp``,
        as in ``MPI_Cart_shift`` (None plays MPI_PROC_NULL)."""
        if not (0 <= dim < self.ndims):
            raise TopologyError(f"dim {dim} out of range")
        me = list(self.coords())
        up = list(me)
        up[dim] += disp
        down = list(me)
        down[dim] -= disp
        return self.rank_of(down), self.rank_of(up)

    def neighbors(self) -> List[int]:
        """The (up to) ``2*ndims`` direct neighbours, de-duplicated,
        order: (-x,+x,-y,+y,...)."""
        out: List[int] = []
        for dim in range(self.ndims):
            src, dst = self.shift(dim, 1)
            for r in (src, dst):
                if r is not None and r != self.rank and r not in out:
                    out.append(r)
        return out

    def max_forwarding_steps(self) -> int:
        """Upper bound of the paper's neighbour-forwarding particle
        exchange: DimX + DimY + DimZ steps (Section IV-D1)."""
        return sum(self.dims)


def cart_create(comm: Comm, dims: Optional[Sequence[int]] = None,
                periods: Optional[Sequence[bool]] = None, ndims: int = 3
                ) -> Generator:
    """Collective Cartesian-communicator creation.

    Synchronizes like ``MPI_Cart_create`` (a barrier) and returns a
    :class:`CartComm` over a dup of ``comm``.
    """
    if dims is None:
        dims = dims_create(comm.size, ndims)
    sub = yield from comm.dup()
    return CartComm(sub, dims, periods)
