"""``repro.simmpi`` — a deterministic, simulated MPI runtime.

This package substitutes for the paper's Cray XC40 + Cray MPICH stack
(see DESIGN.md §2): ranks are generator coroutines over a discrete-
event engine with virtual time; the network is a calibrated LogGP-style
model with per-NIC serialization; collectives use real tree/ring
algorithms so costs scale with the communicator size; noise and
imbalance are explicit, seedable models.

Quickstart::

    from repro.simmpi import run, beskow, ANY_SOURCE

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(b"x" * 1024, dest=1)
        elif comm.rank == 1:
            data = yield from comm.recv(source=0)
        yield from comm.barrier()

    result = run(program, nprocs=2, machine=beskow())
    print(result.elapsed)
"""

from .config import (
    IOConfig,
    MachineConfig,
    NetworkConfig,
    NoiseConfig,
    TopologyConfig,
    beskow,
    ideal_network_testbed,
    quiet_testbed,
    resolve_topology,
)
from .comm import Comm, Intercomm, World
from .fabrics import DragonflyFabric, FatTreeFabric
from .placement import (
    BlockPlacement,
    ColocatedPlacement,
    PartitionedPlacement,
    Placement,
    PlacementPolicy,
    RoundRobinPlacement,
    resolve_placement,
)
from .datatypes import (
    BYTE,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    Datatype,
    SizedPayload,
    contiguous,
    payload_nbytes,
    struct,
    vector,
)
from .engine import Delay, Engine, EventFlag, Spawn, WaitFlag
from .iolib import File, FileSystem, open_file, read_back
from .errors import (
    CommunicatorError,
    DeadlockError,
    InvalidRankError,
    InvalidTagError,
    PlacementError,
    ProcessFailedError,
    RequestError,
    RevokedError,
    SimMPIError,
    TopologyError,
    TruncationError,
    WindowError,
)
from .launcher import SimResult, run
from .matching import ANY_SOURCE, ANY_TAG, TAG_UB
from .noise import NoiseModel
from .network import Fabric, Network, TransferTiming, build_network
from .request import PersistentRequest, Request, Status
from .rma import Win
from .scheduler import Scheduler, SerialScheduler
from .topology import CartComm, cart_create, dims_create

__all__ = [
    "ANY_SOURCE", "ANY_TAG", "BYTE", "BlockPlacement", "CHAR", "CartComm",
    "ColocatedPlacement", "Comm", "CommunicatorError", "DOUBLE", "Datatype",
    "DeadlockError", "Delay", "DragonflyFabric", "Engine", "EventFlag",
    "FLOAT", "Fabric", "FatTreeFabric", "File", "FileSystem", "INT",
    "IOConfig", "Intercomm", "InvalidRankError", "InvalidTagError", "LONG",
    "MachineConfig", "Network", "NetworkConfig", "NoiseConfig",
    "NoiseModel", "PartitionedPlacement", "PersistentRequest", "Placement",
    "PlacementError", "PlacementPolicy", "ProcessFailedError", "Request",
    "RequestError", "RevokedError",
    "RoundRobinPlacement", "Scheduler", "SerialScheduler", "SimMPIError",
    "SimResult", "SizedPayload",
    "Spawn", "Status", "TAG_UB", "TopologyConfig", "TopologyError",
    "TransferTiming", "TruncationError", "WaitFlag", "Win", "WindowError",
    "beskow",
    "build_network", "cart_create", "contiguous", "dims_create",
    "ideal_network_testbed", "open_file", "payload_nbytes",
    "quiet_testbed", "read_back", "resolve_placement", "resolve_topology",
    "run", "struct", "vector",
]
