"""Rank→node placement: which node each simulated rank occupies.

The paper's decoupling strategy is fundamentally a *placement*
question: whether the data/helper groups share nodes with their
producers (streams ride the intra-node shortcut) or sit on a disjoint
node set (streams cross the fabric and contend) decides how much of
the decoupled work is actually hidden.  The seed hard-coded
``node_of(rank) = rank // ranks_per_node`` inside ``MachineConfig``;
this module owns that mapping as a first-class, pluggable policy.

A :class:`PlacementPolicy` is a frozen, declarative spec that lives on
:class:`~repro.simmpi.config.MachineConfig`; resolving it against a
process count yields a :class:`Placement` — a flat ``nodes`` tuple
(rank-indexed, the fabric fast path reads it once) plus a deterministic
rule for ranks beyond the resolved prefix (the network model tolerates
out-of-range rank ids and grows lazily).

Policies
--------

``block``
    The seed rule: ranks fill nodes contiguously,
    ``node = rank // ranks_per_node``.  The default; the flat fabric
    under block placement is bit-identical to the committed goldens and
    to :class:`~repro.simmpi.oracle.OracleNetwork`.

``round_robin``
    Ranks deal cyclically across the same node count a block placement
    would use: ``node = rank % nnodes``.  Consecutive ranks never
    share a node — the adversarial layout for nearest-neighbour codes.

``colocated``
    Group-aware: the largest (*primary*) group packs nodes block-wise
    and every helper group spreads evenly across the primary's nodes,
    so each helper shares a node with the producers it serves.
    Oversubscribes nodes by design — that is the point.

``partitioned``
    Group-aware: each group packs block-wise onto its own disjoint
    node range, in declaration order.  Decoupled groups never share a
    node with their producers; every stream crosses the fabric.

Group-aware policies take ``(name, first_rank, size)`` triples — the
contiguous blocks a validated :class:`~repro.core.groups.
DecouplingPlan` assigns — as plain data, so this layer stays free of
upward imports; :class:`repro.api.Simulation` builds them from a
compiled graph automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, Union

from .errors import PlacementError

__all__ = [
    "BlockPlacement",
    "ColocatedPlacement",
    "PartitionedPlacement",
    "Placement",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "block_node_of",
    "placement_from_json",
    "resolve_placement",
]

#: one contiguous group block: (name, first_rank, size)
GroupBlock = Tuple[str, int, int]


def block_node_of(rank: int, ranks_per_node: int) -> int:
    """The seed rule, kept callable on its own: contiguous fill."""
    return rank // ranks_per_node


class Placement:
    """A resolved rank→node map.

    ``nodes[rank]`` is the node id of every rank in the resolved
    prefix; ``node_of`` extends the map deterministically beyond it
    (policies define the continuation — block placement keeps the seed
    ``rank // ranks_per_node`` exactly, so lazily-grown flat fabrics
    stay oracle-identical).
    """

    __slots__ = ("policy_name", "nodes", "ranks_per_node", "_beyond")

    def __init__(self, policy_name: str, nodes: Sequence[int],
                 ranks_per_node: int,
                 beyond: Optional[Callable[[int], int]] = None):
        self.policy_name = policy_name
        self.nodes = tuple(nodes)
        self.ranks_per_node = ranks_per_node
        if beyond is None:
            base = (max(self.nodes) + 1) if self.nodes else 0
            n = len(self.nodes)
            rpn = ranks_per_node
            beyond = lambda rank: base + (rank - n) // rpn
        self._beyond = beyond

    @property
    def nranks(self) -> int:
        return len(self.nodes)

    @property
    def nnodes(self) -> int:
        """Distinct nodes occupied by the resolved prefix."""
        return len(set(self.nodes)) if self.nodes else 0

    def node_of(self, rank: int) -> int:
        if rank < 0:
            raise PlacementError(f"negative rank {rank} in placement lookup")
        if rank < len(self.nodes):
            return self.nodes[rank]
        return self._beyond(rank)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Placement({self.policy_name!r}, nranks={self.nranks}, "
                f"nnodes={self.nnodes})")


class PlacementPolicy:
    """Base class: a declarative placement spec on the machine config."""

    name = "abstract"

    def resolve(self, nranks: int, ranks_per_node: int) -> Placement:
        raise NotImplementedError

    def to_json(self) -> Dict[str, Any]:
        """This policy as a JSON-serializable dict (``{"policy": name}``
        plus the group blocks for the group-aware policies); feed the
        result to :func:`placement_from_json` to rebuild it."""
        out: Dict[str, Any] = {"policy": self.name}
        groups = getattr(self, "groups", None)
        if groups is not None:
            out["groups"] = [list(g) for g in groups]
        return out

    def _check(self, nranks: int, ranks_per_node: int) -> None:
        if nranks <= 0:
            raise PlacementError("nranks must be positive")
        if ranks_per_node <= 0:
            raise PlacementError("ranks_per_node must be positive")


@dataclass(frozen=True)
class BlockPlacement(PlacementPolicy):
    """Contiguous fill — the seed mapping, and the default."""

    name = "block"

    def resolve(self, nranks: int, ranks_per_node: int) -> Placement:
        self._check(nranks, ranks_per_node)
        rpn = ranks_per_node
        return Placement(self.name, [r // rpn for r in range(nranks)], rpn,
                         beyond=lambda rank: rank // rpn)


@dataclass(frozen=True)
class RoundRobinPlacement(PlacementPolicy):
    """Cyclic deal over the node count a block placement would use."""

    name = "round_robin"

    def resolve(self, nranks: int, ranks_per_node: int) -> Placement:
        self._check(nranks, ranks_per_node)
        nnodes = -(-nranks // ranks_per_node)  # ceil
        return Placement(self.name, [r % nnodes for r in range(nranks)],
                         ranks_per_node, beyond=lambda rank: rank % nnodes)


def _validated_groups(groups: Sequence[GroupBlock], nranks: int,
                      policy: str) -> Tuple[GroupBlock, ...]:
    out = tuple((str(n), int(f), int(s)) for n, f, s in groups)
    if not out:
        raise PlacementError(f"{policy} placement needs at least one group")
    covered = [False] * nranks
    for name, first, size in out:
        if size <= 0:
            raise PlacementError(f"group {name!r} has non-positive size")
        if first < 0 or first + size > nranks:
            raise PlacementError(
                f"group {name!r} block [{first}, {first + size}) outside "
                f"the {nranks}-rank world")
        for r in range(first, first + size):
            if covered[r]:
                raise PlacementError(
                    f"rank {r} covered by two groups ({name!r} overlaps)")
            covered[r] = True
    missing = covered.count(False)
    if missing:
        raise PlacementError(
            f"{policy} placement groups leave {missing} rank(s) unplaced")
    return out


@dataclass(frozen=True)
class ColocatedPlacement(PlacementPolicy):
    """Helper groups share nodes with the primary (largest) group.

    The primary group packs nodes block-wise; every other group's
    members spread evenly over the primary's nodes, so helper rank *j*
    of a size-*H* group lands on the node of primary member
    ``floor(j * P_primary / H)``.
    """

    groups: Tuple[GroupBlock, ...]
    name = "colocated"

    def __init__(self, groups: Sequence[GroupBlock]):
        object.__setattr__(self, "groups", tuple(
            (str(n), int(f), int(s)) for n, f, s in groups))

    def resolve(self, nranks: int, ranks_per_node: int) -> Placement:
        self._check(nranks, ranks_per_node)
        groups = _validated_groups(self.groups, nranks, self.name)
        primary = max(groups, key=lambda g: (g[2], -groups.index(g)))
        _, p_first, p_size = primary
        nodes = [0] * nranks
        for i in range(p_size):
            nodes[p_first + i] = i // ranks_per_node
        for name, first, size in groups:
            if (name, first, size) == primary:
                continue
            for j in range(size):
                anchor = (j * p_size) // size
                nodes[first + j] = nodes[p_first + anchor]
        return Placement(self.name, nodes, ranks_per_node)


@dataclass(frozen=True)
class PartitionedPlacement(PlacementPolicy):
    """Each group packs block-wise onto its own disjoint node range."""

    groups: Tuple[GroupBlock, ...]
    name = "partitioned"

    def __init__(self, groups: Sequence[GroupBlock]):
        object.__setattr__(self, "groups", tuple(
            (str(n), int(f), int(s)) for n, f, s in groups))

    def resolve(self, nranks: int, ranks_per_node: int) -> Placement:
        self._check(nranks, ranks_per_node)
        groups = _validated_groups(self.groups, nranks, self.name)
        nodes = [0] * nranks
        base = 0
        for _, first, size in groups:
            for j in range(size):
                nodes[first + j] = base + j // ranks_per_node
            base += -(-size // ranks_per_node)  # ceil: next disjoint range
        return Placement(self.name, nodes, ranks_per_node)


#: string shorthands accepted wherever a policy is expected
_NAMED_POLICIES = {
    "block": BlockPlacement,
    "round_robin": RoundRobinPlacement,
    "round-robin": RoundRobinPlacement,
}

#: policies that carry group blocks (JSON needs them at construction)
_GROUP_POLICIES = {
    "colocated": ColocatedPlacement,
    "partitioned": PartitionedPlacement,
}


def placement_from_json(data: Dict[str, Any]) -> PlacementPolicy:
    """Rebuild a policy from :meth:`PlacementPolicy.to_json` output."""
    if not isinstance(data, dict) or "policy" not in data:
        raise PlacementError(
            f"placement JSON must be a dict with a 'policy' key, "
            f"got {data!r}")
    name = data["policy"]
    if name in _GROUP_POLICIES:
        groups = data.get("groups")
        if not groups:
            raise PlacementError(
                f"placement {name!r} needs its 'groups' blocks in JSON")
        return _GROUP_POLICIES[name](tuple(
            (str(n), int(f), int(s)) for n, f, s in groups))
    factory = _NAMED_POLICIES.get(name)
    if factory is None:
        raise PlacementError(
            f"unknown placement policy {name!r} in JSON; known: "
            f"{sorted(set(_NAMED_POLICIES) | set(_GROUP_POLICIES))}")
    return factory()


def resolve_placement(spec: Union[None, str, PlacementPolicy]
                      ) -> PlacementPolicy:
    """Normalize a placement spec: None → block, names → policies.

    ``colocated`` / ``partitioned`` need group blocks and therefore
    cannot be named by string here; :class:`repro.api.Simulation`
    builds them from a compiled graph's plan.
    """
    if spec is None:
        return BlockPlacement()
    if isinstance(spec, PlacementPolicy):
        return spec
    if isinstance(spec, str):
        factory = _NAMED_POLICIES.get(spec)
        if factory is None:
            raise PlacementError(
                f"unknown placement {spec!r}; named policies are "
                f"{sorted(set(_NAMED_POLICIES))} (colocated/partitioned "
                "need group blocks — pass a policy object or use "
                "repro.api.Simulation with a StreamGraph)")
        return factory()
    raise PlacementError(
        f"placement must be None, a name or a PlacementPolicy, "
        f"got {type(spec).__name__}")
