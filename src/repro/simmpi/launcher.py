"""SPMD launcher: run a rank program over P simulated processes.

This is the simulation's ``mpiexec``.  The rank program is a generator
function ``fn(comm, *args) -> value``; :func:`run` instantiates it once
per rank, drives all instances through one shared engine, and returns a
:class:`SimResult` with the elapsed virtual time, per-rank return
values and finish times, traffic statistics and (optionally) the trace.

    def hello(comm):
        token = yield from comm.bcast(comm.rank, root=0)
        return token

    result = run(hello, nprocs=64, machine=beskow())
    assert result.values == [0] * 64
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .comm import Comm, World
from .config import MachineConfig, quiet_testbed, resolve_topology
from .engine import Engine
from .placement import resolve_placement
from ..trace.recorder import Tracer

#: context ids of COMM_WORLD (p2p, collective)
WORLD_CONTEXT = 0
WORLD_CONTEXT_COLL = 1


@dataclass
class SimResult:
    """Outcome of one simulated SPMD run."""

    nprocs: int
    elapsed: float                      # virtual time when the last rank finished
    values: List[Any]                   # per-rank return values
    finish_times: List[float]           # per-rank completion times
    messages: int                       # total point-to-point messages
    bytes: int                          # total bytes moved
    events: int                         # engine events fired (sim cost proxy)
    tracer: Optional[Tracer] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def imbalance(self) -> float:
        """Spread of rank finish times relative to the makespan."""
        if not self.finish_times or self.elapsed == 0:
            return 0.0
        return (max(self.finish_times) - min(self.finish_times)) / self.elapsed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SimResult(nprocs={self.nprocs}, elapsed={self.elapsed:.4f}s, "
                f"messages={self.messages}, events={self.events})")


def run(fn: Callable, nprocs: int,
        machine: Optional[MachineConfig] = None,
        args: tuple = (),
        rank_args: Optional[Callable[[int], tuple]] = None,
        trace: bool = False,
        max_events: Optional[int] = None,
        topology=None,
        placement=None,
        faults=None,
        compile=None,
        parallel=None,
        scheduler=None,
        engine_factory: Optional[Callable[[], Engine]] = None,
        mailbox_factory: Optional[Callable] = None,
        network_factory: Optional[Callable] = None) -> SimResult:
    """Simulate ``fn`` on ``nprocs`` ranks of ``machine``.

    Parameters
    ----------
    fn:
        Generator function ``fn(comm, *args)``.  Its return value
        becomes ``result.values[rank]``.
    machine:
        Platform preset (default: the quiet testbed — deterministic,
        noise-free; pass :func:`repro.simmpi.config.beskow` for the
        paper's platform).
    args / rank_args:
        Extra positional arguments: ``args`` is shared verbatim;
        ``rank_args(rank)`` (if given) is called per rank and takes
        precedence.
    trace:
        Attach a :class:`~repro.trace.recorder.Tracer` and return it in
        the result.
    max_events:
        Safety budget on engine events (livelock guard for tests).
    topology / placement:
        Override the machine's fabric (a kind name —
        ``"fat_tree"`` / ``"dragonfly"`` — or a
        :class:`~repro.simmpi.config.TopologyConfig`) and/or its
        rank→node policy (``"block"``, ``"round_robin"`` or a
        :class:`~repro.simmpi.placement.PlacementPolicy`) without
        rebuilding the config by hand.
    faults:
        Deterministic fault injection: a :class:`~repro.faults.plan.
        FaultPlan` (or its JSON dict; None = fault-free, the default
        with zero overhead on the hot paths).  Crashed ranks report
        ``None`` in ``values`` and their crash time in
        ``finish_times``; ``extras["faults"]`` summarizes what happened.
        Incompatible with the oracle's ``engine_factory`` injection.
    compile:
        Opt into the plan compiler (:mod:`repro.compile`): ``True``,
        a ``CompileOptions`` or its dict form.  Installs the compiled
        execution hooks on the world — graph executions take the fused
        driver and eligible streams send through engine schedule
        segments, bit-identical to the interpreted path.  Silently
        bypassed under fault injection or oracle slow-path injection
        (both need the interpreted generator layering).
    parallel:
        Opt into partitioned execution (:mod:`repro.parallel`):
        ``True``, a shard count, an options dict or
        ``ParallelOptions``.  Ranks are sharded across engine lanes
        (whole placement nodes per shard) and driven by the
        conservative-lookahead ``PartitionedScheduler`` — bit-identical
        virtual-time results, with window/boundary accounting in
        ``extras["parallel"]``.  Silently bypassed under fault
        injection, oracle slow-path injection or an explicit
        ``scheduler=`` (the same rule as ``compile=``); an active
        parallel run in turn keeps ``compile=`` uninstalled (the
        partitioned merge drives the interpreted path).
    scheduler:
        Direct :class:`~repro.simmpi.scheduler.Scheduler` injection —
        the seam the parallel subsystem plugs into, also usable by
        instrumented replay harnesses and tests.
    engine_factory / mailbox_factory / network_factory:
        Implementation injection, used by ``bench perf`` to run the
        :mod:`repro.simmpi.oracle` slow path (pass
        ``**repro.simmpi.oracle.SLOW_PATH``) and assert bit-identical
        virtual-time results against the default fast path.
    """
    if nprocs <= 0:
        raise ValueError("nprocs must be positive")
    machine = machine or quiet_testbed()
    if topology is not None:
        machine = machine.with_(topology=resolve_topology(topology))
    if placement is not None:
        machine = machine.with_(placement=resolve_placement(placement))

    plan = None
    if faults is not None:
        # lazy import: repro.faults sits above simmpi in the layering
        from ..faults.injector import FaultController, FaultyNetwork
        from ..faults.plan import FaultError, resolve_faults
        plan = resolve_faults(faults)
    if plan is not None:
        plan = plan.resolve_ranks(nprocs)
        if engine_factory is not None or mailbox_factory is not None:
            raise FaultError(
                "fault injection needs the fast-path engine/mailbox; "
                "it cannot run under oracle slow-path injection")
        if plan.link_events:
            if network_factory is not None:
                raise FaultError(
                    "LinkDegrade events replace the network model; drop "
                    "the custom network_factory")
            if machine.topology.kind != "flat":
                raise FaultError(
                    "LinkDegrade events are modeled on the flat fabric "
                    f"only, not {machine.topology.kind!r}")
            network_factory = (
                lambda cfg, n, _plan=plan: FaultyNetwork(cfg, n, _plan))

    # parallel opt-in: resolved (and active) only on the clean fast
    # path — fault plans and oracle/scheduler injection bypass it
    # silently, mirroring compile='s gating below
    par = None
    if parallel is not None and parallel is not False and plan is None \
            and scheduler is None and engine_factory is None \
            and mailbox_factory is None and network_factory is None:
        # lazy import: repro.parallel sits above simmpi in the layering
        from ..parallel import ShardedEngine, resolve_parallel
        par = resolve_parallel(parallel)

    if par is not None:
        engine = ShardedEngine()
    else:
        engine = (engine_factory or Engine)()
    engine.max_events = max_events
    tracer = Tracer() if trace else None
    world = World(engine, machine, nprocs, tracer=tracer,
                  mailbox_factory=mailbox_factory,
                  network_factory=network_factory)

    par_sched = None
    if par is not None:
        from ..parallel import (
            PartitionedScheduler,
            lane_map,
            lookahead_bound,
            shards_from_nodes,
            validate_shards,
        )
        if par.shards is not None:
            shards = validate_shards(par.shards, nprocs)
        else:
            node_of = [world.node_of(r) for r in range(nprocs)]
            shards = shards_from_nodes(node_of, par.workers)
        lanes = lane_map(shards, nprocs)
        engine.configure_lanes(len(shards), lanes)
        world._lane_of_rank = lanes
        window = (par.window if par.window is not None
                  else lookahead_bound(world.network, shards))
        par_sched = PartitionedScheduler(shards, window,
                                         workers_requested=par.workers)
        engine.scheduler = par_sched
    elif scheduler is not None:
        engine.scheduler = scheduler
    ctl = None
    if plan is not None:
        ctl = FaultController(engine, world, plan)
        world._fault_ctl = ctl
        if ctl.has_slowdowns:
            # straggler windows must see every compute charge
            world._compute_fast = False

    if compile is not None and compile is not False and plan is None \
            and par is None \
            and engine_factory is None and mailbox_factory is None \
            and network_factory is None:
        # lazy import: repro.compile sits above simmpi in the layering
        from ..compile.options import resolve_options
        from ..compile.schedule import bind_send_cursor
        world._compile_opts = resolve_options(compile)
        world._stream_compiler = bind_send_cursor

    handles = []
    world_ranks = tuple(range(nprocs))
    for rank in range(nprocs):
        comm = Comm(world, world_ranks, rank,
                    WORLD_CONTEXT, WORLD_CONTEXT_COLL, name="WORLD",
                    my_local=rank)
        call_args = rank_args(rank) if rank_args is not None else args
        gen = fn(comm, *call_args)
        if par is not None:
            handles.append(engine.spawn_on(world._lane_of_rank[rank], gen,
                                           name=f"rank{rank}"))
        else:
            handles.append(engine.spawn(gen, name=f"rank{rank}"))
    if ctl is not None:
        ctl.install(handles)

    elapsed = engine.run()

    extras = {"world": world}
    if ctl is not None:
        extras["faults"] = ctl.summary()
    if par_sched is not None:
        extras["parallel"] = par_sched.summary(engine)
    return SimResult(
        nprocs=nprocs,
        elapsed=elapsed,
        values=[h.value for h in handles],
        finish_times=[h.done_flag.time for h in handles],
        messages=world.network.messages_sent,
        bytes=world.network.bytes_sent,
        events=engine.events_fired,
        tracer=tracer,
        extras=extras,
    )
