"""Interconnect timing model: the fabric protocol and the flat fabric.

The network model answers one question for the transport layer: given a
message of ``nbytes`` from rank *s* to rank *d* injected at time *t*,
when does it (a) free the sender's NIC, (b) arrive at the destination,
and (c) finish occupying the destination's NIC?

Since PR 3 the model is a *fabric protocol* (see DESIGN.md §9): the
transport only depends on the small surface :class:`Fabric` defines —
``transfer``, ``_link``, ``overheads``, ``is_eager``, ``dilation``,
``node_of`` and the two traffic counters — and
:func:`build_network` picks the implementation from the machine's
:class:`~repro.simmpi.config.TopologyConfig`:

* :class:`Network` (here) — the flat two-level intra/inter-node LogGP
  model.  The default, and bit-identical to the committed goldens and
  to :class:`repro.simmpi.oracle.OracleNetwork` under block placement.
* :class:`~repro.simmpi.fabrics.FatTreeFabric` — per-level uplink
  contention timelines with tapered bandwidth.
* :class:`~repro.simmpi.fabrics.DragonflyFabric` — group-local vs
  global links, one shared global pipe per group.

Rank→node mapping is no longer hard-coded: every fabric resolves the
machine's :mod:`~repro.simmpi.placement` policy once into a flat
rank-indexed node list.

Design points, chosen to reproduce the paper's *shapes*:

* **Per-NIC serialization.**  Each rank has a transmit and a receive
  NIC timeline; back-to-back messages queue.  This is what produces the
  paper's observed master-process congestion in the MapReduce reduce
  group at 4,096+ processes (Section IV-B) — thousands of producers
  funnel into one consumer whose rx NIC serializes them.
* **Intra-node shortcut.**  Ranks on the same node communicate with
  lower latency / higher bandwidth (shared memory).
* **Fabric dilation.**  One-way latency grows mildly (logarithmically)
  with the job size beyond a base allocation, standing in for the extra
  dragonfly hops and adaptive-routing traffic of large jobs.

The model is deliberately first-order: deterministic, O(1) per message,
and calibrated rather than cycle-accurate (see DESIGN.md §7).

Fast-path layout: the NIC timelines are flat lists indexed by rank
(not dicts), node ids are precomputed per rank, and the three possible
``(latency, bandwidth)`` resolutions — self, intra-node, inter-node —
are cached tuples, so :meth:`Network.transfer` does no attribute-chain
digging or hashing per message.  The pre-optimization implementation
is preserved as :class:`repro.simmpi.oracle.OracleNetwork`.
"""

from __future__ import annotations

import math
from typing import NamedTuple, Tuple

from .config import MachineConfig


_tuple_new = tuple.__new__


class TransferTiming(NamedTuple):
    """Resolved timing of one message transfer.

    A NamedTuple: one is allocated per message, and tuple construction
    is C-level (the frozen-dataclass ``__init__`` it replaced was ~4x
    slower at transport rates).
    """

    inject_start: float   # when the payload starts leaving the sender NIC
    sender_free: float    # when the sender NIC is free again
    arrival: float        # when the last byte reaches the receiver NIC
    delivered: float      # when the receiver NIC has drained it (match time)


class Fabric:
    """Shared state and the contract every interconnect model honours.

    The transport calls exactly this surface (DESIGN.md §9):

    ``transfer(src, dst, nbytes, ready) -> TransferTiming``
        Commit one message; mutates the NIC (and fabric) timelines.
    ``_link(src, dst) -> (latency, bandwidth)``
        Header cost of the rendezvous protocol (latency-only ship).
    ``overheads() -> (o_send, o_recv)``, ``is_eager(nbytes)``,
    ``dilation()``
        CPU overheads, protocol switch, job-size latency factor.
    ``node_of(rank)``, ``messages_sent`` / ``bytes_sent``
        Placement-resolved node map and traffic statistics.

    Subclasses implement ``transfer`` / ``_link``; everything here is
    the shared fast-path state: flat per-rank NIC timelines, the
    placement-resolved node list (grown lazily for out-of-range rank
    ids), the three cached link tuples and the dilation factor.
    """

    def __init__(self, config: MachineConfig, nranks: int):
        self.config = config
        self.nranks = nranks
        # flat per-rank NIC timelines: list indexing beats dict lookups
        # in the per-message hot path
        self._tx_free = [0.0] * nranks
        self._rx_free = [0.0] * nranks
        net = config.network
        if nranks > net.dilation_base and net.fabric_dilation > 0:
            dil = 1.0 + net.fabric_dilation * math.log2(nranks / net.dilation_base)
        else:
            dil = 1.0
        self._dilation = dil
        # per-rank node ids from the machine's placement policy and the
        # three possible link resolutions, precomputed once
        # (MachineConfig is frozen)
        self._placement = config.placement_for(nranks)
        self._node = list(self._placement.nodes)
        self._self_link = (0.0, net.intra_node_bandwidth)
        self._intra_link = (net.intra_node_latency, net.intra_node_bandwidth)
        self._inter_link = (net.latency * dil, net.bandwidth)
        self._eager_threshold = net.eager_threshold
        self._size = nranks
        # statistics
        self.messages_sent = 0
        self.bytes_sent = 0

    def _grow(self, size: int) -> None:
        """Accommodate out-of-range rank ids (the dict-based model
        tolerated them; flat lists grow lazily instead).  The placement
        defines the continuation deterministically."""
        extra = size - self._size
        self._tx_free.extend([0.0] * extra)
        self._rx_free.extend([0.0] * extra)
        node_of = self._placement.node_of
        self._node.extend(node_of(r) for r in range(self._size, size))
        self._size = size

    # ------------------------------------------------------------------
    def node_of(self, rank: int) -> int:
        """Placement-resolved node id of ``rank``."""
        if rank < 0:
            raise ValueError(f"negative rank in node lookup: {rank}")
        if rank >= self._size:
            self._grow(rank + 1)
        return self._node[rank]

    def _shortcut_transfer(self, src: int, dst: int, nbytes: int,
                           ready: float, latency: float, bandwidth: float
                           ) -> TransferTiming:
        """The self-send / intra-node NIC discipline every fabric
        shares: tx serialization, rx drain for distinct ranks, no rx
        occupancy for self-sends.  Topology fabrics route their
        same-node messages through here so the cross-fabric parity
        ("shared memory does not care about the cable plant") lives in
        one place; the flat :class:`Network` keeps its own inlined copy
        — ``transfer`` is the per-message hot path and must also stay
        textually byte-identical to the seed."""
        serial = nbytes / bandwidth
        tx_free = self._tx_free
        inject_start = tx_free[src]
        if ready > inject_start:
            inject_start = ready
        sender_free = inject_start + serial
        tx_free[src] = sender_free
        arrival = sender_free + latency
        delivered = self._rx_free[dst]
        if arrival > delivered:
            delivered = arrival
        if src != dst:
            delivered += serial
            self._rx_free[dst] = delivered
        self.messages_sent += 1
        self.bytes_sent += nbytes
        return _tuple_new(TransferTiming,
                          (inject_start, sender_free, arrival, delivered))

    # ------------------------------------------------------------------
    def _link(self, src: int, dst: int) -> Tuple[float, float]:
        raise NotImplementedError

    def transfer(self, src: int, dst: int, nbytes: int, ready: float
                 ) -> TransferTiming:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def overheads(self) -> Tuple[float, float]:
        """(o_send, o_recv) CPU overheads per message."""
        net = self.config.network
        return (net.o_send, net.o_recv)

    def is_eager(self, nbytes: int) -> bool:
        return nbytes <= self._eager_threshold

    def dilation(self) -> float:
        return self._dilation


class Network(Fabric):
    """The flat two-level fabric: stateful NIC-timeline network model."""

    # ------------------------------------------------------------------
    def _link(self, src: int, dst: int) -> Tuple[float, float]:
        """(latency, bandwidth) for the src->dst pair."""
        if src < 0 or dst < 0:
            raise ValueError(f"negative rank in link lookup: {src}->{dst}")
        if src >= self._size or dst >= self._size:
            self._grow((src if src > dst else dst) + 1)
        if src == dst:
            # self-send: memcpy-like
            return self._self_link
        node = self._node
        if node[src] == node[dst]:
            return self._intra_link
        return self._inter_link

    def transfer(self, src: int, dst: int, nbytes: int, ready: float) -> TransferTiming:
        """Timing for ``nbytes`` from ``src`` to ``dst``, ready at ``ready``.

        ``ready`` is when the sender has finished its CPU-side overhead
        and the payload could start injecting.  Mutates the NIC
        timelines (this call *commits* the transfer).
        """
        if nbytes < 0:
            raise ValueError("negative message size")
        if src < 0 or dst < 0:
            # the dict-based model silently keyed negative ids; flat
            # lists would alias rank -1 onto the last rank — reject
            raise ValueError(f"negative rank in transfer: {src}->{dst}")
        if src >= self._size or dst >= self._size:
            self._grow((src if src > dst else dst) + 1)
        if src == dst:
            latency, bandwidth = self._self_link
        else:
            node = self._node
            if node[src] == node[dst]:
                latency, bandwidth = self._intra_link
            else:
                latency, bandwidth = self._inter_link
        serial = nbytes / bandwidth
        tx_free = self._tx_free
        inject_start = tx_free[src]
        if ready > inject_start:
            inject_start = ready
        sender_free = inject_start + serial
        tx_free[src] = sender_free
        arrival = sender_free + latency
        if src != dst:
            # rx occupancy only for the wire transfer; self-sends
            # don't queue.
            delivered = self._rx_free[dst]
            if arrival > delivered:
                delivered = arrival
            delivered += serial
            self._rx_free[dst] = delivered
        else:
            delivered = self._rx_free[dst]
            if arrival > delivered:
                delivered = arrival
        self.messages_sent += 1
        self.bytes_sent += nbytes
        # direct tuple construction: both the generated namedtuple
        # __new__ and _make are Python-level wrappers that showed up in
        # transport profiles
        return _tuple_new(TransferTiming,
                          (inject_start, sender_free, arrival, delivered))


def build_network(config: MachineConfig, nranks: int) -> Fabric:
    """Instantiate the fabric the machine's topology selects.

    This is the default ``network_factory`` of the launcher/transport;
    injection (``repro.simmpi.oracle.SLOW_PATH``) still overrides it.
    """
    kind = config.topology.kind
    if kind == "flat":
        return Network(config, nranks)
    from .fabrics import DragonflyFabric, FatTreeFabric
    if kind == "fat_tree":
        return FatTreeFabric(config, nranks)
    if kind == "dragonfly":
        return DragonflyFabric(config, nranks)
    raise ValueError(f"unknown topology kind {kind!r}")
