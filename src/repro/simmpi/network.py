"""Interconnect timing model.

The network model answers one question for the transport layer: given a
message of ``nbytes`` from rank *s* to rank *d* injected at time *t*,
when does it (a) free the sender's NIC, (b) arrive at the destination,
and (c) finish occupying the destination's NIC?

Design points, chosen to reproduce the paper's *shapes*:

* **Per-NIC serialization.**  Each rank has a transmit and a receive
  NIC timeline; back-to-back messages queue.  This is what produces the
  paper's observed master-process congestion in the MapReduce reduce
  group at 4,096+ processes (Section IV-B) — thousands of producers
  funnel into one consumer whose rx NIC serializes them.
* **Intra-node shortcut.**  Ranks on the same node communicate with
  lower latency / higher bandwidth (shared memory).
* **Fabric dilation.**  One-way latency grows mildly (logarithmically)
  with the job size beyond a base allocation, standing in for the extra
  dragonfly hops and adaptive-routing traffic of large jobs.

The model is deliberately first-order: deterministic, O(1) per message,
and calibrated rather than cycle-accurate (see DESIGN.md §7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from .config import MachineConfig


@dataclass(frozen=True)
class TransferTiming:
    """Resolved timing of one message transfer."""

    inject_start: float   # when the payload starts leaving the sender NIC
    sender_free: float    # when the sender NIC is free again
    arrival: float        # when the last byte reaches the receiver NIC
    delivered: float      # when the receiver NIC has drained it (match time)


class Network:
    """Stateful NIC-timeline network model."""

    def __init__(self, config: MachineConfig, nranks: int):
        self.config = config
        self.nranks = nranks
        self._tx_free: Dict[int, float] = {}
        self._rx_free: Dict[int, float] = {}
        net = config.network
        if nranks > net.dilation_base and net.fabric_dilation > 0:
            dil = 1.0 + net.fabric_dilation * math.log2(nranks / net.dilation_base)
        else:
            dil = 1.0
        self._dilation = dil
        # statistics
        self.messages_sent = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    def _link(self, src: int, dst: int) -> Tuple[float, float]:
        """(latency, bandwidth) for the src->dst pair."""
        net = self.config.network
        if src == dst:
            # self-send: memcpy-like
            return (0.0, net.intra_node_bandwidth)
        if self.config.node_of(src) == self.config.node_of(dst):
            return (net.intra_node_latency, net.intra_node_bandwidth)
        return (net.latency * self._dilation, net.bandwidth)

    def transfer(self, src: int, dst: int, nbytes: int, ready: float) -> TransferTiming:
        """Timing for ``nbytes`` from ``src`` to ``dst``, ready at ``ready``.

        ``ready`` is when the sender has finished its CPU-side overhead
        and the payload could start injecting.  Mutates the NIC
        timelines (this call *commits* the transfer).
        """
        if nbytes < 0:
            raise ValueError("negative message size")
        latency, bandwidth = self._link(src, dst)
        serial = nbytes / bandwidth
        inject_start = max(ready, self._tx_free.get(src, 0.0))
        sender_free = inject_start + serial
        self._tx_free[src] = sender_free
        arrival = sender_free + latency
        delivered = max(arrival, self._rx_free.get(dst, 0.0)) + (
            serial if src != dst else 0.0
        )
        # rx occupancy only for the wire transfer; self-sends don't queue.
        if src != dst:
            self._rx_free[dst] = delivered
        self.messages_sent += 1
        self.bytes_sent += nbytes
        return TransferTiming(inject_start, sender_free, arrival, delivered)

    # ------------------------------------------------------------------
    def overheads(self) -> Tuple[float, float]:
        """(o_send, o_recv) CPU overheads per message."""
        net = self.config.network
        return (net.o_send, net.o_recv)

    def is_eager(self, nbytes: int) -> bool:
        return nbytes <= self.config.network.eager_threshold

    def dilation(self) -> float:
        return self._dilation
