"""Decoupled MapReduce over MPIStream (Section IV-B).

Groups, exactly as the paper lays them out:

* **map group** — (1 - alpha) * P ranks.  Each reads its log files and
  streams every chunk's partial histogram to its assigned local
  reducer *the moment the chunk is mapped* (continuous dataflow, no
  end-of-stage burst).
* **reduce group** — alpha * P ranks, "further decoupled into one group
  that reduces the streams locally and one master process that
  aggregates the global results".  Local reducers fold arriving
  partials first-come-first-served; every ``master_update_elements``
  elements they push their running partial to the master.  *No data
  aggregation is applied inside the reduce group* — faithfully copying
  the paper's noted limitation, which congests the master at 4,096+
  processes (the Fig. 5 uptick).

Because the same total workload runs on fewer map ranks, each mapper
carries ``1/(1-alpha)`` more input (the paper's fairness rule,
Section IV-A).
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from ...mpistream import attach, create_channel
from ...simmpi.comm import Comm
from .common import (
    MapReduceConfig,
    chunk_map_seconds,
    empty_histogram,
    map_chunk,
    merge_cost_seconds,
    rank_file,
)


def roles(cfg: MapReduceConfig, rank: int) -> str:
    """'map' / 'reduce' / 'master' for a world rank.

    Map ranks come first; the reduce group occupies the tail, with its
    last rank acting as the master aggregator."""
    if rank < cfg.n_map:
        return "map"
    if rank == cfg.nprocs - 1:
        return "master"
    return "reduce"


def decoupled_worker(comm: Comm, cfg: MapReduceConfig
                     ) -> Generator[Any, Any, Dict[str, Any]]:
    """SPMD main of the decoupled implementation."""
    if comm.size != cfg.nprocs:
        raise ValueError("config/communicator size mismatch")
    role = roles(cfg, comm.rank)
    t_start = comm.time

    # map -> local reducers, then local reducers -> master
    ch_mr = yield from create_channel(comm, is_producer=(role == "map"),
                                      is_consumer=(role == "reduce"))
    ch_rm = yield from create_channel(comm, is_producer=(role == "reduce"),
                                      is_consumer=(role == "master"))

    out: Dict[str, Any] = {"role": role}

    if role == "map":
        stream = yield from attach(ch_mr, None)
        # Fairness rule (Section IV-A): the decoupled run processes the
        # SAME total workload — all cfg.nprocs files' chunks — spread
        # over the smaller map group, so each mapper carries
        # ~1/(1-alpha) more input than a reference rank.
        my_index = comm.rank
        nmap = cfg.n_map
        total_bytes = 0
        chunks_done = 0
        for item in range(my_index, cfg.nprocs * cfg.nchunks, nmap):
            file_idx, chunk = divmod(item, cfg.nchunks)
            file = rank_file(cfg, file_idx)
            chunk_bytes = file.nbytes / cfg.nchunks
            seconds = chunk_map_seconds(cfg, file_idx, chunk, chunk_bytes)
            yield from comm.compute(seconds, label="map")
            part = map_chunk(cfg, file, file_idx, chunk)
            yield from stream.isend(part)
            total_bytes += chunk_bytes
            chunks_done += 1
        yield from stream.terminate()
        out["chunks"] = chunks_done
        out["file_bytes"] = int(total_bytes)

    elif role == "reduce":
        to_master = yield from attach(ch_rm, None)
        state = {"partial": empty_histogram(cfg), "since_push": 0,
                 "elements": 0}

        def fold(element):
            part = element.data
            cost = merge_cost_seconds(state["partial"], part, cfg)
            yield from comm.compute(cost, label="reduce")
            state["partial"] = state["partial"].merge(part)
            state["since_push"] += 1
            state["elements"] += 1
            if state["since_push"] >= cfg.master_update_elements:
                yield from to_master.isend(state["partial"])
                state["partial"] = empty_histogram(cfg)
                state["since_push"] = 0

        stream = yield from attach(ch_mr, fold)
        yield from stream.operate()
        if state["since_push"] > 0 or state["elements"] == 0:
            yield from to_master.isend(state["partial"])
        yield from to_master.terminate()
        out["elements"] = state["elements"]

    else:  # master
        state = {"total": empty_histogram(cfg), "updates": 0}

        def aggregate(element):
            part = element.data
            cost = merge_cost_seconds(state["total"], part, cfg)
            yield from comm.compute(cost, label="master-merge")
            state["total"] = state["total"].merge(part)
            state["updates"] += 1

        stream = yield from attach(ch_rm, aggregate)
        yield from stream.operate()
        out["updates"] = state["updates"]
        out["result"] = state["total"]

    yield from ch_mr.free()
    yield from ch_rm.free()
    out["elapsed"] = comm.time - t_start
    return out
