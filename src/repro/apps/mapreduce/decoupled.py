"""Decoupled MapReduce over a declarative stream graph (Section IV-B).

Groups, exactly as the paper lays them out:

* **map stage** — (1 - alpha) * P ranks.  Each reads its log files and
  streams every chunk's partial histogram to its assigned local
  reducer *the moment the chunk is mapped* (continuous dataflow, no
  end-of-stage burst).
* **reduce stage** — alpha * P ranks, "further decoupled into one group
  that reduces the streams locally and one master process that
  aggregates the global results".  Local reducers fold arriving
  partials first-come-first-served; every ``master_update_elements``
  elements they push their running partial to the master.  *No data
  aggregation is applied inside the reduce group* — faithfully copying
  the paper's noted limitation, which congests the master at 4,096+
  processes (the Fig. 5 uptick).

Because the same total workload runs on fewer map ranks, each mapper
carries ``1/(1-alpha)`` more input (the paper's fairness rule,
Section IV-A).

The wiring is declared once in :func:`build_graph` and compiled onto
``DecouplingPlan`` + ``run_decoupled`` by :mod:`repro.api`; the
terminate/free protocol is applied by the runtime's handles instead of
by hand.  :func:`decoupled_worker` keeps its original plain-rank-
program signature so existing callers (benchmarks, sweeps) are
unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from ...api import StreamGraph
from ...simmpi.comm import Comm
from .common import (
    MapReduceConfig,
    chunk_map_seconds,
    empty_histogram,
    map_chunk,
    merge_cost_seconds,
    rank_file,
)


class _ReduceState:
    """Per-reducer folding state (attribute access beats a dict in the
    per-element fold operator)."""

    __slots__ = ("partial", "since_push", "elements")

    def __init__(self, partial):
        self.partial = partial
        self.since_push = 0
        self.elements = 0


def roles(cfg: MapReduceConfig, rank: int) -> str:
    """'map' / 'reduce' / 'master' for a world rank.

    Map ranks come first; the reduce group occupies the tail, with its
    last rank acting as the master aggregator."""
    if rank < cfg.n_map:
        return "map"
    if rank == cfg.nprocs - 1:
        return "master"
    return "reduce"


def build_graph(cfg: MapReduceConfig) -> StreamGraph:
    """The three-stage graph: map -> reduce -> master."""

    def map_body(ctx) -> Generator[Any, Any, Dict[str, Any]]:
        # Fairness rule (Section IV-A): the decoupled run processes the
        # SAME total workload — all cfg.nprocs files' chunks — spread
        # over the smaller map group, so each mapper carries
        # ~1/(1-alpha) more input than a reference rank.
        my_index = ctx.comm.rank       # map block starts at world rank 0
        nmap = cfg.n_map
        total_bytes = 0
        chunks_done = 0
        with ctx.producer("intermediate") as out:
            for item in range(my_index, cfg.nprocs * cfg.nchunks, nmap):
                file_idx, chunk = divmod(item, cfg.nchunks)
                file = rank_file(cfg, file_idx)
                chunk_bytes = file.nbytes / cfg.nchunks
                seconds = chunk_map_seconds(cfg, file_idx, chunk, chunk_bytes)
                yield from ctx.compute(seconds, label="map")
                part = map_chunk(cfg, file, file_idx, chunk)
                yield from out.send(part)
                total_bytes += chunk_bytes
                chunks_done += 1
        return {"chunks": chunks_done, "file_bytes": int(total_bytes)}

    def reduce_body(ctx) -> Generator[Any, Any, Dict[str, Any]]:
        state = _ReduceState(empty_histogram(cfg))
        with ctx.producer("aggregate") as to_master:

            def fold(element):
                part = element.data
                cost = merge_cost_seconds(state.partial, part, cfg)
                yield from ctx.compute(cost, label="reduce")
                state.partial = state.partial.merge(part)
                state.since_push += 1
                state.elements += 1
                if state.since_push >= cfg.master_update_elements:
                    yield from to_master.send(state.partial)
                    state.partial = empty_histogram(cfg)
                    state.since_push = 0

            yield from ctx.consume("intermediate", operator=fold)
            if state.since_push > 0 or state.elements == 0:
                yield from to_master.send(state.partial)
        return {"elements": state.elements}

    def master_body(ctx) -> Generator[Any, Any, Dict[str, Any]]:
        state = {"total": empty_histogram(cfg), "updates": 0}

        def aggregate(element):
            part = element.data
            cost = merge_cost_seconds(state["total"], part, cfg)
            yield from ctx.compute(cost, label="master-merge")
            state["total"] = state["total"].merge(part)
            state["updates"] += 1

        yield from ctx.consume("aggregate", operator=aggregate)
        return {"updates": state["updates"], "result": state["total"]}

    return (
        StreamGraph("mapreduce-decoupled")
        .stage("map", size=cfg.n_map, body=map_body)
        .stage("reduce", size=cfg.n_reduce - 1, body=reduce_body)
        .stage("master", size=1, body=master_body)
        .flow("intermediate", src="map", dst="reduce")
        .flow("aggregate", src="reduce", dst="master")
    )


#: per-config compiled graph: building and validating the graph is a
#: pure function of cfg, but the SPMD launcher calls decoupled_worker
#: once per rank — without the memo an 8k-rank run pays 8k compiles
_compiled_memo: Dict[MapReduceConfig, Any] = {}


def _compiled(cfg: MapReduceConfig):
    compiled = _compiled_memo.get(cfg)
    if compiled is None:
        if len(_compiled_memo) >= 64:
            _compiled_memo.clear()
        compiled = _compiled_memo[cfg] = build_graph(cfg).compile(cfg.nprocs)
    return compiled


def decoupled_worker(comm: Comm, cfg: MapReduceConfig
                     ) -> Generator[Any, Any, Dict[str, Any]]:
    """SPMD main of the decoupled implementation (graph-compiled)."""
    if comm.size != cfg.nprocs:
        raise ValueError("config/communicator size mismatch")
    t_start = comm.time
    record = yield from _compiled(cfg).execute(comm)
    out: Dict[str, Any] = {"role": record.stage}
    out.update(record.result)
    out["elapsed"] = comm.time - t_start
    return out
