"""MapReduce word-histogram case study (paper Section IV-B, Fig. 5)."""

from .common import (
    KeySetPayload,
    MapReduceConfig,
    RealHistogram,
    SummaryHistogram,
    expected_distinct_keys,
    map_chunk,
    merge_cost_seconds,
    rank_file,
)
from .decoupled import build_graph, decoupled_worker, roles
from .reference import reference_worker

__all__ = [
    "KeySetPayload", "MapReduceConfig", "RealHistogram", "SummaryHistogram",
    "build_graph", "decoupled_worker", "expected_distinct_keys", "map_chunk",
    "merge_cost_seconds", "rank_file", "reference_worker", "roles",
]
