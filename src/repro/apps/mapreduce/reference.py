"""Reference MPI MapReduce (Hoefler et al. [15], as the paper describes).

Every process performs both map and reduce:

1. **Map**: process the local log file chunk by chunk, combining into a
   local histogram.
2. **Global keys**: once all local maps finish, ``MPI_Iallgatherv``
   builds the global key set (every rank contributes its keys).
3. **Reduce**: ``MPI_Ireduce`` aggregates the local histograms to rank
   0, paying a per-entry merge cost at every tree level.

The paper's critique, reproduced mechanically here: the collectives
start only at the completion of the map stage (bursty, paid after the
*slowest* mapper), and both their payloads and the reduction tree grow
with the process count — "MPI lacks reduction operations that work on
variable-sized input and output" [15].
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from ...simmpi.comm import Comm
from .common import (
    MapReduceConfig,
    chunk_map_seconds,
    empty_histogram,
    keyset_payload,
    map_chunk,
    merge_cost_seconds,
    rank_file,
)


def reference_worker(comm: Comm, cfg: MapReduceConfig
                     ) -> Generator[Any, Any, Dict[str, Any]]:
    """SPMD main of the reference implementation.

    Returns per-rank timing breakdown; rank 0 additionally carries the
    final histogram (numeric mode) or its sketch (scale mode).
    """
    if comm.size != cfg.nprocs:
        raise ValueError("config/communicator size mismatch")
    t_start = comm.time

    # ---- map stage: every rank maps its own file ----------------------
    file = rank_file(cfg, comm.rank)
    local = empty_histogram(cfg)
    chunk_bytes = file.nbytes / cfg.nchunks
    for chunk in range(cfg.nchunks):
        seconds = chunk_map_seconds(cfg, comm.rank, chunk, chunk_bytes)
        yield from comm.compute(seconds, label="map")
        local = local.merge(map_chunk(cfg, file, comm.rank, chunk))
    del chunk_bytes
    t_map_done = comm.time

    # ---- global key set (Iallgatherv) ---------------------------------
    keys_req = yield from comm.iallgatherv(keyset_payload(local))
    all_keys = yield from comm.wait(keys_req, label="iallgatherv-keys")
    global_keys = sum(k.entries for k in all_keys)
    t_keys_done = comm.time

    # ---- reduction of histograms (Ireduce) ----------------------------
    red_req = yield from comm.ireduce(
        local,
        op=lambda a, b: a.merge(b),
        root=0,
        op_cost=lambda a, b: merge_cost_seconds(a, b, cfg),
    )
    result = yield from comm.wait(red_req, label="ireduce-hist")
    t_end = comm.time

    out: Dict[str, Any] = {
        "elapsed": t_end - t_start,
        "map_time": t_map_done - t_start,
        "keys_time": t_keys_done - t_map_done,
        "reduce_time": t_end - t_keys_done,
        "global_keys": global_keys,
        "file_bytes": file.nbytes,
    }
    if comm.rank == 0:
        out["result"] = result
    return out
