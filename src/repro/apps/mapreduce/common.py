"""Shared pieces of the MapReduce word-histogram case study (Section IV-B).

The application extracts a word histogram from a set of log files.  Two
fidelity modes share every code path (DESIGN.md §5):

* **numeric** — real word histograms (`dict`), exact counts, verifiable
  against a sequentially computed ground truth;
* **scale** — :class:`SummaryHistogram` sketches that carry (distinct
  keys, total words, wire bytes) and merge analytically, so 8,192-rank
  sweeps never materialize multi-GB dictionaries.

Both histogram types implement the same protocol: ``merge(other)``,
``entries``, and ``__wire_nbytes__`` (the transport reads wire sizes
from it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Union

import numpy as np

from ...workloads.corpus import (
    CorpusSpec,
    FileSpec,
    file_histogram,
    histogram_nbytes,
    merge_histograms,
)

#: mean bytes of one stored key on the wire (word string + count)
KEY_WIRE_BYTES = 16.0


@dataclass(frozen=True)
class MapReduceConfig:
    """One MapReduce experiment instance."""

    nprocs: int
    #: decoupled-reduce fraction (Fig. 5 sweeps 12.5 / 6.25 / 3.125 %)
    alpha: float = 0.0625
    #: real data structures (tests) vs analytic sketches (benchmarks)
    numeric: bool = False
    #: mean input volume per map rank; the paper's 2.9 TB / 8,192 procs
    bytes_per_rank: int = 354_000_000
    #: files are irregular: size ~ U[0.72, 1.28] * bytes_per_rank
    file_spread: float = 0.28
    #: each file is mapped in this many chunks (stream granularity)
    nchunks: int = 16
    #: map (read + parse + combine) throughput
    map_seconds_per_byte: float = 1.19e-7     # ~8.4 MB/s per rank
    #: per-chunk lognormal jitter (parsing variance of natural text)
    chunk_jitter_sigma: float = 0.25
    #: histogram merge cost (hash insert per entry)
    merge_seconds_per_entry: float = 2.0e-8
    #: local reducers push partials to the master every N elements
    master_update_elements: int = 256
    vocabulary: int = 1_000_000
    #: numeric mode scales word counts down to this many per chunk
    numeric_words_per_chunk: int = 300
    seed: int = 2017

    def __post_init__(self):
        if self.nprocs < 2:
            raise ValueError("need at least 2 processes")
        if not (0.0 < self.alpha < 1.0):
            raise ValueError("alpha must be in (0, 1)")
        if self.nchunks < 1:
            raise ValueError("nchunks must be >= 1")
        if self.bytes_per_rank <= 0:
            raise ValueError("bytes_per_rank must be positive")

    # ------------------------------------------------------------------
    @property
    def corpus(self) -> CorpusSpec:
        vocab = 200 if self.numeric else self.vocabulary
        return CorpusSpec(
            vocabulary=vocab,
            seed=self.seed,
            min_file_bytes=int(self.bytes_per_rank * (1 - self.file_spread)),
            max_file_bytes=int(self.bytes_per_rank * (1 + self.file_spread)),
        )

    @property
    def n_reduce(self) -> int:
        """Size of the decoupled reduce group (master included)."""
        return max(2, round(self.alpha * self.nprocs))

    @property
    def n_map(self) -> int:
        return self.nprocs - self.n_reduce

    def with_(self, **kw) -> "MapReduceConfig":
        return replace(self, **kw)


# ----------------------------------------------------------------------
# histograms
# ----------------------------------------------------------------------

class RealHistogram:
    """Numeric-mode histogram: an actual word-count dictionary."""

    __slots__ = ("table",)

    def __init__(self, table: Dict[str, int]):
        self.table = table

    def merge(self, other: "RealHistogram") -> "RealHistogram":
        return RealHistogram(merge_histograms([self.table, other.table]))

    @property
    def entries(self) -> int:
        return len(self.table)

    @property
    def words(self) -> int:
        return sum(self.table.values())

    def __wire_nbytes__(self) -> int:
        return histogram_nbytes(self.table)


class SummaryHistogram:
    """Scale-mode histogram sketch.

    Merging uses the independence approximation for distinct-key union:
    with vocabulary V and key counts k1, k2 drawn Zipf-ish, the union is
    ``V * (1 - (1 - k1/V)(1 - k2/V))``; word counts add exactly.
    """

    __slots__ = ("keys", "words", "vocab")

    def __init__(self, keys: float, words: int, vocab: int):
        if keys < 0 or words < 0 or vocab < 1:
            raise ValueError("invalid summary histogram")
        self.keys = min(float(keys), float(vocab))
        self.words = int(words)
        self.vocab = vocab

    def merge(self, other: "SummaryHistogram") -> "SummaryHistogram":
        if self.vocab != other.vocab:
            raise ValueError("merging summaries over different vocabularies")
        v = float(self.vocab)
        union = v * (1.0 - (1.0 - self.keys / v) * (1.0 - other.keys / v))
        # direct construction: the operands are already validated, and
        # merges run once or twice per stream element
        out = SummaryHistogram.__new__(SummaryHistogram)
        out.keys = union if union < v else v
        out.words = self.words + other.words
        out.vocab = self.vocab
        return out

    @property
    def entries(self) -> int:
        return int(self.keys)

    def __wire_nbytes__(self) -> int:
        return int(self.keys * KEY_WIRE_BYTES)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SummaryHistogram(keys={self.keys:.0f}, "
                f"words={self.words})")


Histogram = Union[RealHistogram, SummaryHistogram]


def expected_distinct_keys(words: int, vocab: int) -> float:
    """E[#distinct words] after drawing ``words`` from a ~uniformized
    vocabulary: ``V * (1 - exp(-words / V))`` (coupon-collector)."""
    if vocab < 1:
        raise ValueError("vocab must be >= 1")
    if words <= 0:
        return 0.0
    return vocab * (1.0 - math.exp(-words / vocab))


def merge_cost_seconds(a: Histogram, b: Histogram,
                       cfg: MapReduceConfig) -> float:
    """Compute time of merging ``b`` into ``a`` (hash insert per entry
    of the smaller side — standard small-into-large merging)."""
    smaller = min(a.entries, b.entries)
    return smaller * cfg.merge_seconds_per_entry


# ----------------------------------------------------------------------
# the map kernel
# ----------------------------------------------------------------------

#: memo for rank_file draws — a plain dict, not lru_cache, because the
#: simulation is single-threaded and the lru lock showed up in profiles
_rank_file_memo: Dict[tuple, FileSpec] = {}


def rank_file(cfg: MapReduceConfig, map_index: int) -> FileSpec:
    """The log file assigned to map task ``map_index`` (one irregular
    file per map rank; see EXPERIMENTS.md for the volume bookkeeping).

    Pure function of (cfg, map_index) and requested ``nchunks`` times
    per file across the map stage, so the draw is memoized — fresh
    ``SeedSequence`` construction costs ~30us, which dominated the map
    loop before the cache."""
    key = (cfg.seed, cfg.bytes_per_rank, cfg.file_spread, map_index)
    spec = _rank_file_memo.get(key)
    if spec is None:
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=cfg.seed, spawn_key=(7, map_index))
        )
        nbytes = int(cfg.bytes_per_rank
                     * rng.uniform(1 - cfg.file_spread, 1 + cfg.file_spread))
        spec = FileSpec(map_index, nbytes)
        if len(_rank_file_memo) >= 1 << 16:
            _rank_file_memo.clear()
        _rank_file_memo[key] = spec
    return spec


def chunk_map_jitter(cfg: MapReduceConfig, map_index: int, chunk: int) -> float:
    """Deterministic per-(rank, chunk) lognormal jitter factor.

    Skipped entirely for ``chunk_jitter_sigma == 0``: ``lognormal(0, 0)``
    is exactly 1.0, so the (expensive) generator construction can be
    elided bit-identically — the deterministic perf scenarios rely on
    this.
    """
    sigma = cfg.chunk_jitter_sigma
    if sigma == 0.0:
        return 1.0
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=cfg.seed,
                               spawn_key=(11, map_index, chunk))
    )
    return float(rng.lognormal(0.0, sigma))


def chunk_map_seconds(cfg: MapReduceConfig, map_index: int,
                      chunk: int, chunk_bytes: float) -> float:
    """Nominal compute time of mapping one chunk, with deterministic
    per-(rank, chunk) lognormal jitter."""
    jitter = chunk_map_jitter(cfg, map_index, chunk)
    return chunk_bytes * cfg.map_seconds_per_byte * jitter


#: scale-mode chunk sketches are a pure function of (words, vocab) and
#: identical for every chunk of a file — share one immutable instance
_chunk_sketch_memo: Dict[tuple, SummaryHistogram] = {}


def map_chunk(cfg: MapReduceConfig, file: FileSpec, map_index: int,
              chunk: int) -> Histogram:
    """The histogram a map task emits for one chunk of its file."""
    if cfg.numeric:
        sub = FileSpec(file.index * cfg.nchunks + chunk, file.nbytes)
        table = file_histogram(cfg.corpus, sub,
                               scale_words=cfg.numeric_words_per_chunk)
        return RealHistogram(table)
    chunk_words = int(file.nwords / cfg.nchunks)
    key = (chunk_words, cfg.vocabulary)
    sketch = _chunk_sketch_memo.get(key)
    if sketch is None:
        keys = expected_distinct_keys(chunk_words, cfg.vocabulary)
        sketch = SummaryHistogram(keys, chunk_words, cfg.vocabulary)
        if len(_chunk_sketch_memo) >= 1 << 16:
            _chunk_sketch_memo.clear()
        _chunk_sketch_memo[key] = sketch
    return sketch


def empty_histogram(cfg: MapReduceConfig) -> Histogram:
    if cfg.numeric:
        return RealHistogram({})
    return SummaryHistogram(0.0, 0, cfg.vocabulary)


def keyset_payload(hist: Histogram) -> "KeySetPayload":
    """The key-set a rank contributes to the global-keys allgatherv."""
    return KeySetPayload(hist)


class KeySetPayload:
    """Wire representation of a rank's key set (keys only, no counts)."""

    __slots__ = ("entries",)

    def __init__(self, hist: Histogram):
        self.entries = hist.entries

    def __wire_nbytes__(self) -> int:
        # key strings without the 8-byte counts
        return int(self.entries * (KEY_WIRE_BYTES - 8))
