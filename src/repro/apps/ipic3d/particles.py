"""Particle kernels: Boris mover, ownership, moment deposition.

Numeric-mode physics for the iPIC3D skeleton.  The global domain is
the periodic unit cube decomposed into a Cartesian grid of subdomains;
positions are global coordinates, ownership is by subdomain.

The mover is the standard Boris rotation (the pusher iPIC3D's implicit
mover reduces to for explicit sub-steps): half electric kick, magnetic
rotation, half kick, drift — vectorized over the particle arrays.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ...workloads.particles import ParticleBlock


def boris_push(p: ParticleBlock, E: np.ndarray, B: np.ndarray,
               dt: float, qm: float = 1.0) -> None:
    """In-place Boris push with uniform fields E, B (3-vectors)."""
    E = np.asarray(E, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    if E.shape != (3,) or B.shape != (3,):
        raise ValueError("E and B must be 3-vectors")
    if len(p) == 0:
        return
    qdt2 = (p.q * qm * dt / 2.0)[:, None]
    v_minus = p.v + qdt2 * E
    t = qdt2 * B
    t_mag2 = np.sum(t * t, axis=1, keepdims=True)
    s = 2.0 * t / (1.0 + t_mag2)
    v_prime = v_minus + np.cross(v_minus, t)
    v_plus = v_minus + np.cross(v_prime, s)
    p.v[...] = v_plus + qdt2 * E
    p.x[...] = (p.x + p.v * dt) % 1.0   # periodic unit cube


def owner_of(x: np.ndarray, dims: Tuple[int, int, int]) -> np.ndarray:
    """Rank owning each position (row-major Cartesian, periodic)."""
    cx = np.minimum((x[:, 0] * dims[0]).astype(np.int64), dims[0] - 1)
    cy = np.minimum((x[:, 1] * dims[1]).astype(np.int64), dims[1] - 1)
    cz = np.minimum((x[:, 2] * dims[2]).astype(np.int64), dims[2] - 1)
    return (cx * dims[1] + cy) * dims[2] + cz


def split_by_owner(p: ParticleBlock, dims: Tuple[int, int, int],
                   my_rank: int) -> Tuple[ParticleBlock, Dict[int, ParticleBlock]]:
    """(stayers, {dest_rank: movers}) after a push."""
    owners = owner_of(p.x, dims)
    stay = owners == my_rank
    stayers = p.select(stay)
    out: Dict[int, ParticleBlock] = {}
    for dest in np.unique(owners[~stay]):
        out[int(dest)] = p.select(owners == dest)
    return stayers, out


def axis_route(coords: Tuple[int, ...], dest_coords: Tuple[int, ...],
               dims: Tuple[int, int, int]) -> Tuple[int, int]:
    """Next (axis, direction) on the reference forwarding path.

    The reference exchange moves particles one axis at a time (x, then
    y, then z), one subdomain per pass, taking the shorter way around
    the periodic torus — the paper's
    ``DimX + DimY + DimZ``-bounded scheme."""
    for axis in range(3):
        d = dest_coords[axis] - coords[axis]
        if d != 0:
            n = dims[axis]
            if d > n // 2:
                d -= n
            elif d < -(n // 2):
                d += n
            return axis, (1 if d > 0 else -1)
    raise ValueError("already at destination")


def deposit_density(p: ParticleBlock, ncells: int) -> np.ndarray:
    """Nearest-grid-point charge deposition onto a local ncells^3 grid
    over the unit cube (diagnostic moment used by tests/examples)."""
    if len(p) == 0:
        return np.zeros((ncells,) * 3)
    idx = np.minimum((p.x * ncells).astype(np.int64), ncells - 1)
    flat = (idx[:, 0] * ncells + idx[:, 1]) * ncells + idx[:, 2]
    rho = np.bincount(flat, weights=p.q, minlength=ncells ** 3)
    return rho.reshape((ncells,) * 3)


def spawn_block(n: int, rank: int, dims: Tuple[int, int, int],
                seed: int, thermal: float) -> ParticleBlock:
    """Particles uniform inside ``rank``'s subdomain, Maxwellian
    velocities, globally unique ids."""
    rng = np.random.default_rng(np.random.SeedSequence(
        entropy=seed, spawn_key=(17, rank)))
    nx, ny, nz = dims
    cz = rank % nz
    cy = (rank // nz) % ny
    cx = rank // (ny * nz)
    lo = np.array([cx / nx, cy / ny, cz / nz])
    hi = np.array([(cx + 1) / nx, (cy + 1) / ny, (cz + 1) / nz])
    x = rng.uniform(lo, hi, size=(n, 3))
    v = rng.normal(0.0, thermal, size=(n, 3))
    q = np.where(rng.random(n) < 0.5, -1.0, 1.0)
    ids = (np.int64(rank) << 32) + np.arange(n, dtype=np.int64)
    return ParticleBlock(x, v, q, ids)
