"""Configuration of the iPIC3D case study (Section IV-D, Figs. 2, 7, 8).

The experiment is the GEM magnetic-reconnection challenge: ~2e9
particles on 8,192 processes (≈ 244k particles per rank, weak
scaling).  Two fidelity modes share the communication structure:

* **numeric** — real particles (NumPy arrays), a real Boris mover, and
  real subdomain ownership: the reference and decoupled exchanges must
  deliver *identical* final particle sets;
* **scale** — per-rank particle counts and exit volumes are drawn from
  the GEM statistics; handling costs are charged per particle.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from ...workloads.particles import GEMSetup, PARTICLE_BYTES


@dataclass(frozen=True)
class IPICConfig:
    """One iPIC3D experiment instance."""

    nprocs: int
    steps: int = 40
    alpha: float = 0.0625
    numeric: bool = False
    #: weak scaling: particles per rank (paper: 2e9 / 8192)
    particles_per_rank: int = 244_000
    numeric_particles_per_rank: int = 200
    #: particle mover cost (Boris push + moment deposition)
    mover_seconds_per_particle: float = 5.3e-7
    #: reference per-hop handling (scan, pack, unpack) per particle
    handling_seconds_per_particle: float = 5.0e-7
    #: decoupled exchange group processes aggregated batches (vectorized)
    decoupled_handling_seconds_per_particle: float = 1.0e-7
    #: mean fraction of a rank's particles exiting per step
    exit_fraction_mean: float = 0.04
    #: lognormal sigma of per-(rank, step) exit volume
    exit_sigma: float = 0.4
    #: per-(rank, step) transient mover jitter (OS noise, cache effects)
    mover_jitter_sigma: float = 0.07
    #: GEM current-sheet profile (mild defaults: early-run skew)
    sheet_thickness: float = 0.25
    sheet_background: float = 2.0
    #: hop-distance distribution of exiting particles (1, 2, 3 hops)
    hop_probabilities: Tuple[float, float, float] = (0.8, 0.15, 0.05)
    #: field-solve + moments cost per step (charged, not modeled in
    #: detail: Figs. 7/8 isolate the particle operations)
    field_seconds_per_step: float = 2.0e-3
    #: particle I/O (Fig. 8): snapshots during the run (the paper's
    #: experiment corresponds to one full particle snapshot)
    io_dumps: int = 1
    #: stream granularity: particles per stream element (scale mode)
    stream_batch_particles: int = 2048
    numeric_dt: float = 0.05
    numeric_thermal: float = 0.08
    seed: int = 1931

    def __post_init__(self):
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if not (0.0 < self.alpha < 1.0):
            raise ValueError("alpha must be in (0, 1)")
        if abs(sum(self.hop_probabilities) - 1.0) > 1e-9:
            raise ValueError("hop_probabilities must sum to 1")
        if not (0.0 <= self.exit_fraction_mean <= 1.0):
            raise ValueError("exit_fraction_mean must be in [0, 1]")

    # ------------------------------------------------------------------
    @property
    def gem(self) -> GEMSetup:
        total = self.particles_per_rank * max(1, self.n_mover)
        return GEMSetup(total_particles=total,
                        sheet_thickness=self.sheet_thickness,
                        background=self.sheet_background, seed=self.seed)

    @property
    def n_exchange(self) -> int:
        """Decoupled particle-communication group size."""
        return max(1, round(self.alpha * self.nprocs))

    @property
    def n_mover(self) -> int:
        return max(1, self.nprocs - self.n_exchange)

    @property
    def particle_bytes(self) -> int:
        return PARTICLE_BYTES

    def rank_particles(self, rank: int, nranks: int) -> int:
        """Scale-mode particle count for ``rank`` of ``nranks``
        (deterministic GEM profile with multinomial noise)."""
        from ...workloads.particles import gem_counts
        counts = gem_counts(nranks, GEMSetup(
            total_particles=self.particles_per_rank * nranks,
            sheet_thickness=self.sheet_thickness,
            background=self.sheet_background,
            seed=self.seed))
        return int(counts[rank])

    def mover_jitter(self, rank: int, step: int) -> float:
        """Transient per-(rank, step) mover slowdown factor."""
        if self.mover_jitter_sigma <= 0:
            return 1.0
        rng = np.random.default_rng(np.random.SeedSequence(
            entropy=self.seed, spawn_key=(5, rank, step)))
        return float(rng.lognormal(0.0, self.mover_jitter_sigma))

    def exits(self, rank: int, step: int, count: int) -> int:
        """Scale-mode: number of particles leaving ``rank`` at ``step``."""
        rng = np.random.default_rng(np.random.SeedSequence(
            entropy=self.seed, spawn_key=(3, rank, step)))
        frac = self.exit_fraction_mean * float(
            rng.lognormal(0.0, self.exit_sigma))
        return min(count, int(count * min(1.0, frac)))

    def hop_split(self, rank: int, step: int, n_exit: int
                  ) -> Tuple[int, int, int]:
        """Scale-mode: split exits into 1-, 2-, 3-hop populations."""
        rng = np.random.default_rng(np.random.SeedSequence(
            entropy=self.seed, spawn_key=(4, rank, step)))
        if n_exit == 0:
            return (0, 0, 0)
        counts = rng.multinomial(n_exit, list(self.hop_probabilities))
        return tuple(int(c) for c in counts)

    def with_(self, **kw) -> "IPICConfig":
        return replace(self, **kw)
