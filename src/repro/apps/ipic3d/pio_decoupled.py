"""Decoupled particle I/O (Section IV-D2, Fig. 8).

The mover ranks stream dump data to a dedicated I/O group
(alpha = 6.25%) and continue computing immediately; the I/O group —
which "can dedicate substantial memory for buffering, reducing the
interference with the file system" — accumulates arriving batches and
flushes them to storage with large independent writes
(``write_at``-under-the-hood of ``MPI_File_write_shared`` in the paper;
the key property is *few, large, append-ordered* writes).

Visible cost to a mover = stream injection overhead; the physical write
happens on the I/O group's timeline, overlapping the remaining
computation.  The run's end still waits for the final flush (the drain
tail), which is why the decoupled bars in Fig. 8 are small but not
zero.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

import numpy as np

from ...mpistream import attach, create_channel
from ...simmpi.comm import Comm
from ...simmpi.datatypes import SizedPayload
from ...simmpi.iolib import open_file
from .config import IPICConfig
from .pio_reference import _dump_steps

#: the I/O group flushes once its buffer holds this much
FLUSH_BYTES = 256 * 1024 * 1024


def pio_decoupled(comm: Comm, cfg: IPICConfig
                  ) -> Generator[Any, Any, Dict[str, Any]]:
    """SPMD main: first ``n_mover`` ranks compute + stream dumps; the
    rest buffer and write."""
    if comm.size != cfg.nprocs:
        raise ValueError("config/communicator size mismatch")
    n0 = cfg.n_mover
    is_mover = comm.rank < n0
    t0 = comm.time

    ch = yield from create_channel(comm, is_producer=is_mover,
                                   is_consumer=not is_mover)
    # the I/O group opens the file on its own communicator
    sub = yield from comm.split(0 if is_mover else 1, key=comm.rank)

    if is_mover:
        stream = yield from attach(ch, None, eager=True)
        dump_at = _dump_steps(cfg)
        io_time = 0.0
        bytes_streamed = 0
        if cfg.numeric:
            count = cfg.numeric_particles_per_rank
        else:
            count = int(cfg.rank_particles(comm.rank, n0)
                        * cfg.nprocs / n0)
        for step in range(cfg.steps):
            jitter = cfg.mover_jitter(comm.rank, step)
            yield from comm.compute(
                count * cfg.mover_seconds_per_particle * jitter,
                label="mover")
            yield from comm.compute(cfg.field_seconds_per_step,
                                    label="field")
            delta = cfg.exits(comm.rank, step, count)
            count = count - delta + cfg.exits(comm.rank, step + 10_000,
                                              count)
            if step in dump_at:
                t_io = comm.time
                nbytes = count * cfg.particle_bytes
                if cfg.numeric:
                    payload = np.full(max(1, count), comm.rank,
                                      dtype=np.int64)
                    nbytes = payload.nbytes
                else:
                    payload = SizedPayload((step, comm.rank), nbytes)
                yield from stream.isend(payload)
                io_time += comm.time - t_io
                bytes_streamed += nbytes
        yield from stream.terminate()
        result = {
            "role": "mover",
            "elapsed": comm.time - t0,
            "io_time": io_time,
            "bytes_written": bytes_streamed,
            "dumps": len(dump_at),
            "mode": "decoupled",
        }
    else:
        buffer_bytes = 0
        buffered: List[Any] = []
        written = 0
        offset_base = comm.rank * (1 << 44)  # disjoint regions per writer
        f = yield from open_file(sub, "particles-decoupled.dat", "w")

        def flush():
            nonlocal buffer_bytes, written, buffered
            if buffer_bytes > 0:
                data = (np.concatenate(buffered) if cfg.numeric and buffered
                        else SizedPayload(None, buffer_bytes))
                yield from f.write_at(offset_base + written, data,
                                      nbytes=buffer_bytes)
                written += buffer_bytes
                buffer_bytes = 0
                buffered = []

        def buffer_element(element):
            nonlocal buffer_bytes
            # payload size, not wire size (the 8-byte stream header is
            # transport framing, not particle data)
            buffer_bytes += element.data.nbytes
            if cfg.numeric:
                buffered.append(element.data)
            if buffer_bytes >= FLUSH_BYTES:
                yield from flush()

        stream = yield from attach(ch, buffer_element, eager=True)
        yield from stream.operate()
        yield from flush()
        yield from f.close()
        result = {
            "role": "io",
            "elapsed": comm.time - t0,
            "bytes_written": written,
            "mode": "decoupled",
        }

    yield from ch.free()
    return result
