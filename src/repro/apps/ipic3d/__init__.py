"""iPIC3D plasma-simulation case study (Section IV-D, Figs. 2, 7, 8)."""

from .config import IPICConfig
from .particles import (
    boris_push,
    deposit_density,
    owner_of,
    spawn_block,
    split_by_owner,
)
from .pcomm_decoupled import pcomm_decoupled
from .pcomm_reference import pcomm_reference
from .pio_decoupled import pio_decoupled
from .pio_reference import pio_reference

__all__ = [
    "IPICConfig", "boris_push", "deposit_density", "owner_of",
    "pcomm_decoupled", "pcomm_reference", "pio_decoupled",
    "pio_reference", "spawn_block", "split_by_owner",
]
