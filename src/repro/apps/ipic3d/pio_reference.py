"""Reference particle I/O: MPI-IO collective and shared-pointer paths
(Section IV-D2, Fig. 8).

The run is the mover skeleton with ``cfg.io_dumps`` particle snapshots.
Because the particle distribution changes every step, the collective
path must *recalculate displacements and redefine the file view* before
every dump (allgather + view setup), then write through the dynamic,
unaligned view (which pays stripe read-modify-write on the storage
servers).  The shared-pointer path skips views but serializes every
rank through the shared-file-pointer lock.

Both are bulk-synchronous: the dump sits on the critical path of every
rank ("MPI non-blocking operations fall in this category" of infeasible
buffering — the data is too large to buffer on compute ranks).
"""

from __future__ import annotations

from typing import Any, Dict, Generator

import numpy as np

from ...simmpi.comm import Comm
from ...simmpi.datatypes import SizedPayload
from ...simmpi.iolib import open_file
from .config import IPICConfig


def _dump_steps(cfg: IPICConfig):
    """Steps after which a particle snapshot is written."""
    if cfg.io_dumps <= 0:
        return set()
    stride = max(1, cfg.steps // cfg.io_dumps)
    return {s for s in range(cfg.steps) if (s + 1) % stride == 0}


def pio_reference(comm: Comm, cfg: IPICConfig, collective: bool
                  ) -> Generator[Any, Any, Dict[str, Any]]:
    """SPMD main: mover + per-dump particle output.

    ``collective=True`` uses ``write_all`` through a per-dump view
    (RefColl in Fig. 8); ``False`` uses ``write_shared`` (RefShared).
    """
    if comm.size != cfg.nprocs:
        raise ValueError("config/communicator size mismatch")
    dump_at = _dump_steps(cfg)
    t0 = comm.time
    io_time = 0.0
    bytes_written = 0

    if cfg.numeric:
        count = cfg.numeric_particles_per_rank
    else:
        count = cfg.rank_particles(comm.rank, comm.size)

    mode = "coll" if collective else "shared"
    f = yield from open_file(comm, f"particles-{mode}.dat", "w")

    for step in range(cfg.steps):
        jitter = cfg.mover_jitter(comm.rank, step)
        yield from comm.compute(
            count * cfg.mover_seconds_per_particle * jitter, label="mover")
        yield from comm.compute(cfg.field_seconds_per_step, label="field")
        # particle counts drift with the dynamics
        delta = cfg.exits(comm.rank, step, count)
        count = count - delta + cfg.exits(comm.rank, step + 10_000, count)

        if step in dump_at:
            t_io = comm.time
            nbytes = count * cfg.particle_bytes
            if cfg.numeric:
                payload = np.full(max(1, count), comm.rank, dtype=np.int64)
                nbytes = payload.nbytes
            else:
                payload = SizedPayload(("dump", step, comm.rank), nbytes)
            if collective:
                # dynamic layout: recompute displacements + redefine view
                sizes = yield from comm.allgather(nbytes)
                my_disp = sum(sizes[:comm.rank])
                yield from f.set_view(step * (1 << 40) + my_disp)
                yield from f.write_all(payload, nbytes=nbytes)
            else:
                yield from f.write_shared(payload, nbytes=nbytes)
                yield from comm.barrier()   # step closes for every rank
            io_time += comm.time - t_io
            bytes_written += nbytes

    yield from f.close()
    return {
        "elapsed": comm.time - t0,
        "io_time": io_time,
        "bytes_written": bytes_written,
        "dumps": len(dump_at),
        "mode": mode,
    }
