"""Decoupled particle communication (Section IV-D1, Figs. 2 and 7).

The mover group G0 streams exiting particles to the exchange group G1
the moment they are found; G1 "handles the complexity of particle
communication internally": it buckets arrivals by destination and
forwards aggregated batches straight to the destination mover — at most
two hops per particle (G0 -> G1 -> G0) versus the reference's
up-to-``DimX+DimY+DimZ`` forwarding passes.

Two delivery disciplines, matching the two fidelity modes:

* **numeric (strict)** — step-synchronous: each mover sends exactly one
  exit element per step and receives exactly one aggregated arrival
  batch per step (after a small alltoallv inside G1 moves every
  destination's particles to its serving exchange rank).  Strictness
  lets tests prove the reference and decoupled exchanges produce
  *identical* particle sets.
* **scale (relaxed dataflow)** — the paper's actual execution model:
  movers never block on arrivals; they drain whatever batches have
  landed between steps (first-come-first-served), and exchange ranks
  process exit elements the moment they arrive.  This is what absorbs
  imbalance — no mover ever waits for a specific delayed peer.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

import numpy as np

from ...mpistream import attach, create_channel
from ...simmpi.collectives import alltoallv
from ...simmpi.comm import Comm
from ...simmpi.datatypes import SizedPayload
from ...simmpi.topology import dims_create
from ...workloads.particles import ParticleBlock
from .config import IPICConfig
from .particles import boris_push, owner_of, spawn_block
from .pcomm_reference import E_FIELD, B_FIELD, _neighbors


def pcomm_decoupled(comm: Comm, cfg: IPICConfig
                    ) -> Generator[Any, Any, Dict[str, Any]]:
    """SPMD main: first ``n_mover`` ranks move particles, the rest run
    the decoupled exchange."""
    if comm.size != cfg.nprocs:
        raise ValueError("config/communicator size mismatch")
    n0 = cfg.n_mover
    is_mover = comm.rank < n0
    t0 = comm.time

    ch_up = yield from create_channel(comm, is_producer=is_mover,
                                      is_consumer=not is_mover)
    ch_down = yield from create_channel(comm, is_producer=not is_mover,
                                        is_consumer=is_mover)
    state = {"arrivals": 0}

    def absorb(element):
        # scale-mode sink: fold an arrival batch into the local count
        state["arrivals"] += element.data[2]

    up = yield from attach(ch_up, None)                      # blocked by src
    down = yield from attach(ch_down, absorb,
                             router=lambda pi, seq, data: data[0],
                             eager=not cfg.numeric)
    sub = yield from comm.split(0 if is_mover else 1, key=comm.rank)

    if is_mover:
        result = yield from _mover_rank(comm, cfg, up, down, state, t0)
    else:
        result = yield from _exchange_rank(comm, cfg, sub, ch_up, up, down)
    yield from ch_up.free()
    yield from ch_down.free()
    return result


def _mover_rank(comm: Comm, cfg: IPICConfig, up, down, state, t0
                ) -> Generator[Any, Any, Dict[str, Any]]:
    n0 = cfg.n_mover
    dims = tuple(dims_create(n0, 3))
    me = comm.rank

    if cfg.numeric:
        particles = spawn_block(cfg.numeric_particles_per_rank, me,
                                dims, cfg.seed, cfg.numeric_thermal)
    else:
        particles = None
        # weak-scaling fairness: the same total particles over fewer
        # mover ranks (each mover carries 1/(1-alpha) more)
        count = int(cfg.rank_particles(me, n0) * cfg.nprocs / n0)

    pcomm_visible = 0.0
    for step in range(cfg.steps):
        n_local = len(particles) if cfg.numeric else count
        jitter = cfg.mover_jitter(me, step)
        yield from comm.compute(
            n_local * cfg.mover_seconds_per_particle * jitter,
            label="mover")
        yield from comm.compute(cfg.field_seconds_per_step, label="field")

        t_phase = comm.time
        if cfg.numeric:
            # strict, step-synchronous protocol (verifiable physics)
            boris_push(particles, E_FIELD, B_FIELD, cfg.numeric_dt)
            owners = owner_of(particles.x, dims)
            stay = owners == me
            exits = particles.select(~stay)
            particles = particles.select(stay)
            yield from up.isend((step, me, exits))
            element = None
            while element is None:
                element = yield from down.recv_element()
            _dest, arr_step, arrivals = element.data
            assert arr_step == step, "arrival batch out of step order"
            particles = ParticleBlock.concat([particles, arrivals])
        else:
            # relaxed dataflow: stream exits, drain whatever has landed
            n_exit = cfg.exits(me, step, count)
            count -= n_exit
            yield from up.isend(
                (step, me,
                 SizedPayload(n_exit, n_exit * cfg.particle_bytes + 16)))
            yield from down.operate_pending()
            count += state["arrivals"]
            state["arrivals"] = 0
        pcomm_visible += comm.time - t_phase

    yield from up.terminate()
    out: Dict[str, Any] = {
        "role": "mover",
        "elapsed": comm.time - t0,
        "pcomm_time": pcomm_visible,
        "steps": cfg.steps,
    }
    if cfg.numeric:
        out["ids"] = np.sort(particles.ids).tolist()
        out["count"] = len(particles)
    else:
        out["count"] = count
    return out


def _exchange_rank(comm: Comm, cfg: IPICConfig, sub, ch_up, up, down
                   ) -> Generator[Any, Any, Dict[str, Any]]:
    if cfg.numeric:
        result = yield from _exchange_strict(comm, cfg, sub, ch_up, up, down)
    else:
        result = yield from _exchange_relaxed(comm, cfg, ch_up, up, down)
    return result


# ----------------------------------------------------------------------
# numeric mode: strict per-step aggregation with G1-internal shuffle
# ----------------------------------------------------------------------

def _exchange_strict(comm: Comm, cfg: IPICConfig, sub, ch_up, up, down
                     ) -> Generator[Any, Any, Dict[str, Any]]:
    n0 = cfg.n_mover
    dims = tuple(dims_create(n0, 3))
    me_ci = ch_up.consumer_index
    served = ch_up.producers_of(me_ci)
    n1 = ch_up.nconsumers
    particles_handled = 0

    def serving_consumer(mover_rank: int) -> int:
        return mover_rank * n1 // n0

    for step in range(cfg.steps):
        by_dest: Dict[int, List[ParticleBlock]] = {}
        for _ in served:
            element = None
            while element is None:
                element = yield from up.recv_element()
            _step, _src, exits = element.data
            if len(exits):
                owners = owner_of(exits.x, dims)
                for dest in np.unique(owners):
                    by_dest.setdefault(int(dest), []).append(
                        exits.select(owners == dest))
                particles_handled += len(exits)
        yield from comm.compute(
            sum(sum(len(b) for b in blocks)
                for blocks in by_dest.values())
            * cfg.decoupled_handling_seconds_per_particle,
            label="exchange-handle")

        # shuffle: each destination's particles to its serving G1 rank
        sends: Dict[int, Any] = {}
        for dest, blocks in by_dest.items():
            g1 = serving_consumer(dest)
            sends.setdefault(g1, {})[dest] = ParticleBlock.concat(blocks)
        flags = [0] * sub.size
        for g1 in sends:
            if g1 != sub.rank:
                flags[g1] = 1
        matrix = yield from sub.allgather(tuple(flags))
        recv_from = [r for r in range(sub.size) if matrix[r][sub.rank]]
        local = sends.pop(sub.rank, {})
        received = yield from alltoallv(sub, sends, recv_from,
                                        scan_seconds_per_peer=0.0)
        merged: Dict[int, List[ParticleBlock]] = {}
        for bundle in [local] + list(received.values()):
            for dest, block in bundle.items():
                merged.setdefault(dest, []).append(block)

        # exactly one batch per served mover per step
        for dest in served:
            block = ParticleBlock.concat(merged.get(dest, []))
            yield from down.isend((dest, step, block))

    return {
        "role": "exchange",
        "elapsed": comm.time,
        "particles_handled": particles_handled,
        "steps": cfg.steps,
    }


# ----------------------------------------------------------------------
# scale mode: relaxed FCFS dataflow with per-round aggregation
# ----------------------------------------------------------------------

def _exchange_relaxed(comm: Comm, cfg: IPICConfig, ch_up, up, down
                      ) -> Generator[Any, Any, Dict[str, Any]]:
    n0 = cfg.n_mover
    dims = tuple(dims_create(n0, 3))
    me_ci = ch_up.consumer_index
    served = ch_up.producers_of(me_ci)
    total_elements = cfg.steps * len(served)
    particles_handled = 0
    buckets: Dict[int, int] = {}       # dest mover -> pending particles
    since_flush = 0

    rng = np.random.default_rng(np.random.SeedSequence(
        entropy=cfg.seed, spawn_key=(23, me_ci)))

    def flush():
        for dest, cnt in list(buckets.items()):
            if cnt > 0:
                yield from down.isend(_ArrivalBatch(
                    dest, -1, cnt, cnt * cfg.particle_bytes + 24))
        buckets.clear()

    for _ in range(total_elements):
        element = None
        while element is None:
            element = yield from up.recv_element()
        _step, src, exits = element.data
        n_exit = exits.data
        particles_handled += n_exit
        if n_exit > 0:
            yield from comm.compute(
                n_exit * cfg.decoupled_handling_seconds_per_particle,
                label="exchange-handle")
            # destinations: the source's neighbours (multi-hop tail folded
            # in — the exchange group delivers direct regardless of hops)
            neigh = _neighbors(src, dims)
            base, extra = divmod(n_exit, len(neigh))
            for i, dest in enumerate(neigh):
                n = base + (1 if i < extra else 0)
                if n > 0:
                    buckets[dest] = buckets.get(dest, 0) + n
        since_flush += 1
        if since_flush >= len(served):   # ~once per simulation step
            yield from flush()
            since_flush = 0
    yield from flush()

    return {
        "role": "exchange",
        "elapsed": comm.time,
        "particles_handled": particles_handled,
        "steps": cfg.steps,
    }


class _ArrivalBatch:
    """Scale-mode arrival batch: (dest, step, count) + wire size."""

    __slots__ = ("dest", "step", "count", "nbytes")

    def __init__(self, dest: int, step: int, count: int, nbytes: int):
        self.dest = dest
        self.step = step
        self.count = count
        self.nbytes = nbytes

    def __wire_nbytes__(self) -> int:
        return self.nbytes

    def __getitem__(self, i):
        return (self.dest, self.step, self.count)[i]
