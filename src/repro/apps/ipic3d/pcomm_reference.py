"""Reference particle communication: neighbour forwarding (Section IV-D1).

After the mover, each rank forwards its exiting particles to its six
direct Cartesian neighbours, one axis at a time; the pass repeats until
no particle is in transit, with an allreduce after every pass checking
the global in-transit count — the optimized scheme the paper describes,
bounded by ``DimX + DimY + DimZ`` passes.

Every pass is bulk-synchronous: all ranks exchange with all six
neighbours (empty payloads allowed, as real codes post the recv anyway)
and then agree on termination — which is exactly where the skewed,
dynamic particle distribution hurts: the pass takes as long as the rank
with the most particles to handle, every pass, every step.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Tuple

import numpy as np

from ...simmpi.comm import Comm
from ...simmpi.datatypes import SizedPayload
from ...simmpi.topology import dims_create
from ...workloads.particles import ParticleBlock
from .config import IPICConfig
from .particles import axis_route, owner_of, boris_push, spawn_block

#: uniform background fields of the numeric GEM-like run
E_FIELD = np.array([0.0, 0.0, 0.02])
B_FIELD = np.array([0.0, 0.0, 1.0])


def _coords_of(rank: int, dims) -> Tuple[int, int, int]:
    cz = rank % dims[2]
    cy = (rank // dims[2]) % dims[1]
    cx = rank // (dims[1] * dims[2])
    return (cx, cy, cz)


def _rank_of(coords, dims) -> int:
    return ((coords[0] % dims[0]) * dims[1] + (coords[1] % dims[1])) \
        * dims[2] + (coords[2] % dims[2])


def _neighbors(rank: int, dims) -> List[int]:
    """Six periodic neighbours (deduplicated for small dims)."""
    coords = _coords_of(rank, dims)
    out: List[int] = []
    for axis in range(3):
        for direction in (-1, +1):
            c = list(coords)
            c[axis] += direction
            peer = _rank_of(c, dims)
            if peer != rank and peer not in out:
                out.append(peer)
    return out


def pcomm_reference(comm: Comm, cfg: IPICConfig
                    ) -> Generator[Any, Any, Dict[str, Any]]:
    """SPMD main: mover + neighbour-forwarding exchange, ``cfg.steps``
    times.  Returns timing and (numeric) the final particle block."""
    if comm.size != cfg.nprocs:
        raise ValueError("config/communicator size mismatch")
    dims = tuple(dims_create(comm.size, 3))
    neighbors = _neighbors(comm.rank, dims)
    t0 = comm.time
    pcomm_time = 0.0

    if cfg.numeric:
        particles = spawn_block(cfg.numeric_particles_per_rank, comm.rank,
                                dims, cfg.seed, cfg.numeric_thermal)
    else:
        particles = None
        count = cfg.rank_particles(comm.rank, comm.size)

    for step in range(cfg.steps):
        # ---- mover ----------------------------------------------------
        n_local = len(particles) if cfg.numeric else count
        jitter = cfg.mover_jitter(comm.rank, step)
        yield from comm.compute(
            n_local * cfg.mover_seconds_per_particle * jitter,
            label="mover")
        yield from comm.compute(cfg.field_seconds_per_step, label="field")
        if cfg.numeric:
            boris_push(particles, E_FIELD, B_FIELD, cfg.numeric_dt)
            owners = owner_of(particles.x, dims)
            stay = owners == comm.rank
            in_transit = particles.select(~stay)
            particles = particles.select(stay)
        else:
            n_exit = cfg.exits(comm.rank, step, count)
            count -= n_exit
            # in-transit bookkeeping: counts per remaining hop distance
            h1, h2, h3 = cfg.hop_split(comm.rank, step, n_exit)
            transit_hops = [h1, h2, h3]

        # ---- forwarding passes ---------------------------------------
        t_phase = comm.time
        while True:
            tag = 200 + step % 100
            if cfg.numeric:
                outbound: Dict[int, List] = {p: [] for p in neighbors}
                if len(in_transit):
                    owners = owner_of(in_transit.x, dims)
                    my_coords = _coords_of(comm.rank, dims)
                    hops = [
                        axis_route(my_coords, _coords_of(int(d), dims), dims)
                        for d in owners
                    ]
                    groups: Dict[int, List[int]] = {}
                    for i, (axis, direction) in enumerate(hops):
                        c = list(my_coords)
                        c[axis] += direction
                        groups.setdefault(_rank_of(c, dims), []).append(i)
                    for peer, idxs in groups.items():
                        mask = np.zeros(len(in_transit), dtype=bool)
                        mask[idxs] = True
                        outbound[peer] = in_transit.select(mask)
                payloads = {
                    p: (outbound[p] if isinstance(outbound[p], ParticleBlock)
                        else ParticleBlock.concat([]))
                    for p in neighbors
                }
                n_out = sum(len(b) for b in payloads.values())
            else:
                n_out = sum(transit_hops)
                share = {p: n_out // len(neighbors) for p in neighbors}
                for i, p in enumerate(neighbors):
                    if i < n_out % len(neighbors):
                        share[p] += 1
                payloads = {
                    p: SizedPayload(transit_hops[:],  # hop profile rides along
                                    share[p] * cfg.particle_bytes + 24)
                    for p in neighbors
                }

            # exchange with all six neighbours (deadlock-free post-all)
            rreqs = [comm.irecv(p, tag) for p in neighbors]
            sreqs = []
            for p in neighbors:
                r = yield from comm.isend(payloads[p], p, tag)
                sreqs.append(r)
            yield from comm.waitall(sreqs, label="pcomm-send")
            inbound = yield from comm.waitall(rreqs, label="pcomm-recv")

            if cfg.numeric:
                arrived: List[ParticleBlock] = []
                still: List[ParticleBlock] = []
                n_in = 0
                for data, _st in inbound:
                    if len(data) == 0:
                        continue
                    n_in += len(data)
                    owners = owner_of(data.x, dims)
                    mine = owners == comm.rank
                    arrived.append(data.select(mine))
                    still.append(data.select(~mine))
                yield from comm.compute(
                    (n_out + n_in) * cfg.handling_seconds_per_particle,
                    label="pcomm-handle")
                particles = ParticleBlock.concat([particles] + arrived)
                in_transit = ParticleBlock.concat(still)
                remaining = len(in_transit)
            else:
                n_in = 0
                next_hops = [0, 0, 0]
                for payload, _st in inbound:
                    hop_profile = payload.data
                    received = (payload.nbytes - 24) // cfg.particle_bytes
                    n_in += received
                    total_hops = sum(hop_profile)
                    if total_hops > 0 and received > 0:
                        # particles that had h hops now have h-1 left
                        for h in (1, 2):  # 2->1, 3->2
                            next_hops[h - 1] += round(
                                received * hop_profile[h] / total_hops)
                yield from comm.compute(
                    (n_out + n_in) * cfg.handling_seconds_per_particle,
                    label="pcomm-handle")
                count += n_in - sum(next_hops)
                transit_hops = next_hops
                remaining = sum(transit_hops)

            total_remaining = yield from comm.allreduce(remaining)
            if total_remaining == 0:
                break
        pcomm_time += comm.time - t_phase

    out: Dict[str, Any] = {
        "elapsed": comm.time - t0,
        "pcomm_time": pcomm_time,
        "steps": cfg.steps,
    }
    if cfg.numeric:
        out["ids"] = np.sort(particles.ids).tolist()
        out["count"] = len(particles)
    else:
        out["count"] = count
    return out
