"""Reference CG implementations: blocking and non-blocking halo exchange.

Both follow the open-source code the paper benchmarks (Hoefler et al.
[17]): the halo exchange is an (I)``MPI_Alltoallv`` over the full
communicator with six non-zero entries; the non-blocking variant
overlaps the exchange with the *inner* Laplacian and completes the
boundary shell after the ghosts land.

Each iteration:

1. halo exchange of the search direction ``p``'s six faces,
2. ``q = A p``  (7-point Laplacian),
3. ``alpha = rr / <p, q>`` (allreduce), update ``u`` and ``r``,
4. ``rr' = <r, r>`` (allreduce), ``beta`` update of ``p``.

Numeric mode runs the real algebra on a Cartesian decomposition and is
verified against the sequential solver; timed mode charges calibrated
per-point costs through the *identical* communication structure.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from ...simmpi.collectives import alltoallv, ialltoallv
from ...simmpi.comm import Comm
from ...simmpi.datatypes import SizedPayload
from ...simmpi.topology import CartComm, cart_create, dims_create
from ...workloads.grids import BlockSpec
from .config import CGConfig
from .kernels import (
    FACES,
    alloc_block,
    apply_laplacian,
    apply_laplacian_split,
    axpy,
    clear_ghost,
    extract_face,
    insert_ghost,
    interior,
    local_dot,
)
from .solver import poisson_rhs


class _RankState:
    """Per-rank CG state, numeric or timed."""

    def __init__(self, cfg: CGConfig, cart: CartComm, block: BlockSpec,
                 global_rank_in_grid: int):
        self.cfg = cfg
        self.cart = cart
        self.block = block
        self.coords = cart.coords()
        self.neighbors: List[Tuple[int, int, int]] = []  # (axis, dir, rank)
        for axis, direction in FACES:
            peer = cart.rank_of(tuple(
                c + (direction if ax == axis else 0)
                for ax, c in enumerate(self.coords)
            ))
            if peer is not None:
                self.neighbors.append((axis, direction, peer))
        if cfg.numeric:
            n = block.nx
            rhs_full = poisson_rhs(
                (cart.dims[0] * n, cart.dims[1] * n, cart.dims[2] * n),
                seed=cfg.seed,
            )
            cx, cy, cz = self.coords
            local_f = rhs_full[cx * n:(cx + 1) * n, cy * n:(cy + 1) * n,
                               cz * n:(cz + 1) * n]
            self.u = alloc_block(n, n, n)
            self.r = alloc_block(n, n, n)
            interior(self.r)[...] = local_f          # r = f - A*0 = f
            self.p = self.r.copy()
            self.q = alloc_block(n, n, n)
        else:
            self.u = self.r = self.p = self.q = None

    # ------------------------------------------------------------------
    # per-iteration pieces
    # ------------------------------------------------------------------
    def face_payload(self, axis: int, direction: int) -> Any:
        if self.cfg.numeric:
            return (axis, direction, extract_face(self.p, axis, direction))
        return SizedPayload((axis, direction),
                            self.block.face_bytes(axis) + 16)

    def absorb_faces(self, received: Dict[int, Any]) -> None:
        if not self.cfg.numeric:
            return
        # missing neighbours are physical boundaries: zero ghosts
        for axis, direction in FACES:
            clear_ghost(self.p, axis, direction)
        for _src, (axis, direction, face) in received.items():
            # the neighbour's (axis, -direction) face is our (axis,
            # direction) ghost: it sent its owned plane facing us
            insert_ghost(self.p, axis, -direction, face)

    def laplacian_seconds(self, part: Optional[str] = None) -> float:
        total = self.block.points * self.cfg.laplacian_seconds_per_point
        if part is None:
            return total
        inner = self.block.interior_points / self.block.points
        return total * (inner if part == "inner" else 1.0 - inner)

    def vecops_seconds(self) -> float:
        return self.block.points * self.cfg.vecops_seconds_per_point

    def compute_q(self, part: Optional[str] = None) -> None:
        if not self.cfg.numeric:
            return
        if part is None:
            apply_laplacian(self.p, self.q)
        else:
            apply_laplacian_split(self.p, self.q, part)


def _halo_sends(state: _RankState) -> Tuple[Dict[int, Any], List[int]]:
    sends = {}
    recv_from = []
    for axis, direction, peer in state.neighbors:
        sends[peer] = state.face_payload(axis, direction)
        recv_from.append(peer)
    return sends, recv_from


def _cg_iteration_algebra(comm: Comm, state: _RankState, rr: float
                          ) -> Generator[Any, Any, Tuple[float, float]]:
    """Steps 3-4: dots, allreduces, vector updates.  Returns
    (new rr, residual norm)."""
    cfg = state.cfg
    yield from comm.compute(state.vecops_seconds(), label="vecops")
    if cfg.numeric:
        pq_local = local_dot(state.p, state.q)
        pq = yield from comm.allreduce(pq_local)
        alpha = rr / pq if pq != 0 else 0.0
        axpy(alpha, state.p, state.u)
        axpy(-alpha, state.q, state.r)
        rr_new_local = local_dot(state.r, state.r)
        rr_new = yield from comm.allreduce(rr_new_local)
        beta = rr_new / rr if rr != 0 else 0.0
        interior(state.p)[...] = interior(state.r) + beta * interior(state.p)
        return rr_new, float(np.sqrt(rr_new))
    yield from comm.allreduce(1.0)
    rr_new = yield from comm.allreduce(1.0)
    return rr, 0.0


def _setup(comm: Comm, cfg: CGConfig, scale: float = 1.0
           ) -> Generator[Any, Any, _RankState]:
    dims = dims_create(comm.size, 3)
    cart = yield from cart_create(comm, dims)
    return _RankState(cfg, cart, cfg.block(scale), comm.rank)


def _finalize(comm: Comm, cfg: CGConfig, state: _RankState,
              rr: float, t_start: float) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "elapsed": comm.time - t_start,
        "iterations": cfg.iterations,
    }
    if cfg.numeric:
        out["u_local"] = interior(state.u).copy()
        out["coords"] = state.coords
        out["dims"] = state.cart.dims
        out["rr"] = rr
    return out


def cg_blocking(comm: Comm, cfg: CGConfig
                ) -> Generator[Any, Any, Dict[str, Any]]:
    """Reference CG with *blocking* alltoallv halo exchange."""
    t0 = comm.time
    state = yield from _setup(comm, cfg)
    rr = (local_dot(state.r, state.r) if cfg.numeric else 1.0)
    if cfg.numeric:
        rr = yield from comm.allreduce(rr)
    for _ in range(cfg.iterations):
        sends, recv_from = _halo_sends(state)
        received = yield from alltoallv(
            comm, sends, recv_from,
            scan_seconds_per_peer=cfg.alltoallv_scan_seconds_per_peer,
        )
        state.absorb_faces(received)
        yield from comm.compute(state.laplacian_seconds(), label="laplacian")
        state.compute_q()
        rr, _res = yield from _cg_iteration_algebra(comm, state, rr)
    return _finalize(comm, cfg, state, rr, t0)


def cg_nonblocking(comm: Comm, cfg: CGConfig
                   ) -> Generator[Any, Any, Dict[str, Any]]:
    """Reference CG with non-blocking halo exchange overlapped with the
    inner Laplacian ([17]'s optimization)."""
    t0 = comm.time
    state = yield from _setup(comm, cfg)
    rr = (local_dot(state.r, state.r) if cfg.numeric else 1.0)
    if cfg.numeric:
        rr = yield from comm.allreduce(rr)
    for _ in range(cfg.iterations):
        sends, recv_from = _halo_sends(state)
        req = yield from ialltoallv(
            comm, sends, recv_from,
            scan_seconds_per_peer=cfg.alltoallv_scan_seconds_per_peer,
        )
        yield from comm.compute(state.laplacian_seconds("inner"),
                                label="laplacian-inner")
        state.compute_q("inner")
        received = yield from comm.wait(req, label="halo-wait")
        state.absorb_faces(received)
        yield from comm.compute(state.laplacian_seconds("boundary"),
                                label="laplacian-boundary")
        state.compute_q("boundary")
        rr, _res = yield from _cg_iteration_algebra(comm, state, rr)
    return _finalize(comm, cfg, state, rr, t0)
