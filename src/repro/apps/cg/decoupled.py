"""Decoupled CG: the halo exchange runs on its own group (Section IV-C).

Group G0 (compute ranks) streams boundary faces out and computes the
inner Laplacian without waiting; group G1 (halo ranks, alpha = 6.25%)
receives faces first-come-first-served, *aggregates the six faces
destined to each compute rank into one bundle*, and streams the bundle
back — so a compute rank completes its boundary with a single receive
instead of six neighbour dependencies, exactly the paper's description:
"instead of communicating with six processes, the group G1 aggregates
these boundary values for group G0 and stream them back".

Routing: faces are routed by *destination* compute rank, so all six
faces for rank j land on one halo rank regardless of which neighbour
produced them.  Iterations are pipelined — a fast rank's iteration k+1
faces may arrive while a slow neighbour's iteration k face is still in
flight; the halo group buffers per (iteration, destination).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Tuple

from ...mpistream import attach, create_channel
from ...simmpi.comm import Comm
from ...simmpi.datatypes import SizedPayload
from ...simmpi.topology import CartComm, dims_create
from .config import CGConfig
from .kernels import (
    FACES,
    clear_ghost,
    insert_ghost,
    interior,
    local_dot,
)
from .reference import _RankState, _cg_iteration_algebra, _finalize


def cg_decoupled(comm: Comm, cfg: CGConfig
                 ) -> Generator[Any, Any, Dict[str, Any]]:
    """SPMD main: first ``n_compute`` ranks solve, the rest serve halos."""
    n0 = cfg.n_compute
    is_compute = comm.rank < n0
    t0 = comm.time

    ch_up = yield from create_channel(comm, is_producer=is_compute,
                                      is_consumer=not is_compute)
    ch_down = yield from create_channel(comm, is_producer=not is_compute,
                                        is_consumer=is_compute)

    # faces are routed by destination compute rank; bundles likewise
    route_up = lambda pi, seq, data: _consumer_for(ch_up, data[0])
    route_down = lambda pi, seq, data: data[0]
    up = yield from attach(ch_up, None, router=route_up)
    down = yield from attach(ch_down, None, router=route_down)

    # split is collective over the world: every rank participates
    sub = yield from comm.split(0 if is_compute else 1, key=comm.rank)

    if is_compute:
        result = yield from _compute_rank(comm, cfg, sub, up, down, t0)
    else:
        result = yield from _halo_rank(comm, cfg, ch_up, up, down)
    yield from ch_up.free()
    yield from ch_down.free()
    return result


def _consumer_for(channel, dest_producer_index: int) -> int:
    """Consumer index serving ``dest_producer_index`` under blocked
    assignment (all of a compute rank's faces funnel to one halo rank)."""
    return dest_producer_index * channel.nconsumers // channel.nproducers


def _compute_rank(comm: Comm, cfg: CGConfig, sub, up, down, t0
                  ) -> Generator[Any, Any, Dict[str, Any]]:
    n0 = cfg.n_compute
    dims = dims_create(n0, 3)
    cart = CartComm(sub, dims)
    # weak-scaling fairness: the same global grid over fewer ranks
    scale = cfg.nprocs / n0 if not cfg.numeric else 1.0
    state = _RankState(cfg, cart, cfg.block(scale), comm.rank)

    rr = (local_dot(state.r, state.r) if cfg.numeric else 1.0)
    if cfg.numeric:
        rr = yield from sub.allreduce(rr)

    for it in range(cfg.iterations):
        # 1. stream out boundary faces, routed by destination rank
        for axis, direction, peer in state.neighbors:
            payload = state.face_payload(axis, direction)
            yield from up.isend((peer, it, comm.rank, payload))
        # 2. inner Laplacian while faces travel
        yield from comm.compute(state.laplacian_seconds("inner"),
                                label="laplacian-inner")
        state.compute_q("inner")
        # 3. one aggregated bundle per iteration
        if state.neighbors:
            element = None
            while element is None:
                element = yield from down.recv_element()
            _dest, bundle_it, faces = element.data
            assert bundle_it == it, "bundle arrived out of iteration order"
            _absorb_bundle(cfg, state, faces)
        # 4. boundary Laplacian + algebra on G0's communicator
        yield from comm.compute(state.laplacian_seconds("boundary"),
                                label="laplacian-boundary")
        state.compute_q("boundary")
        rr, _res = yield from _cg_iteration_algebra(sub, state, rr)

    yield from up.terminate()
    out = _finalize(comm, cfg, state, rr, t0)
    out["role"] = "compute"
    return out


def _absorb_bundle(cfg: CGConfig, state, faces: List) -> None:
    if not cfg.numeric:
        return
    for axis, direction in FACES:
        clear_ghost(state.p, axis, direction)
    for axis, direction, face in faces:
        # neighbour's face (axis, direction) fills our (axis, -direction)
        insert_ghost(state.p, axis, -direction, face)


def _halo_rank(comm: Comm, cfg: CGConfig, ch_up, up, down
               ) -> Generator[Any, Any, Dict[str, Any]]:
    """Aggregate faces per (iteration, destination); bundle when full."""
    me = ch_up.consumer_index
    served = ch_up.producers_of(me)          # compute-rank indices I serve
    n0 = cfg.n_compute
    dims = dims_create(n0, 3)
    probe = CartComm(_FakeRank(0, n0), dims)
    expected = {
        j: _neighbor_count(probe, j) for j in served
    }
    total_expected = cfg.iterations * sum(expected.values())
    pending: Dict[Tuple[int, int], List] = {}
    bundles_sent = 0
    bytes_aggregated = 0

    for _ in range(total_expected):
        element = None
        while element is None:
            element = yield from up.recv_element()
        dest, it, src_rank, payload = element.data
        key = (it, dest)
        bucket = pending.setdefault(key, [])
        if cfg.numeric:
            bucket.append(payload)
            face_bytes = payload[2].nbytes
        else:
            bucket.append(payload)         # SizedPayload; keeps wire size
            face_bytes = payload.nbytes
        bytes_aggregated += face_bytes
        yield from comm.compute(
            face_bytes * cfg.aggregate_seconds_per_byte, label="aggregate")
        if len(bucket) == expected[dest]:
            del pending[key]
            if cfg.numeric:
                yield from down.isend((dest, it, bucket))
            else:
                nbytes = sum(p.nbytes for p in bucket)
                yield from down.isend(SizedBundle(dest, it, nbytes))
            bundles_sent += 1

    yield from down.terminate()
    assert not pending, "halo rank finished with incomplete bundles"
    return {
        "role": "halo",
        "elapsed": comm.time,
        "bundles": bundles_sent,
        "bytes_aggregated": bytes_aggregated,
        "iterations": cfg.iterations,
    }


class SizedBundle:
    """Timed-mode bundle: (dest, iteration, wire size of six faces)."""

    __slots__ = ("dest", "it", "nbytes")

    def __init__(self, dest: int, it: int, nbytes: int):
        self.dest = dest
        self.it = it
        self.nbytes = nbytes

    def __wire_nbytes__(self) -> int:
        return self.nbytes + 16

    def __getitem__(self, i):
        # bundle consumers unpack (dest, it, faces)
        return (self.dest, self.it, [])[i]


class _FakeRank:
    """Minimal stand-in comm for coordinate math on the halo side."""

    def __init__(self, rank: int, size: int):
        self.rank = rank
        self.size = size


def _neighbor_count(cart: CartComm, rank: int) -> int:
    coords = cart.coords(rank)
    n = 0
    for axis in range(3):
        for direction in (-1, +1):
            peer = cart.rank_of(tuple(
                c + (direction if ax == axis else 0)
                for ax, c in enumerate(coords)
            ))
            if peer is not None:
                n += 1
    return n
