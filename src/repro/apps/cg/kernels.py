"""Numerical kernels for the distributed CG solver (real NumPy math).

The local state of one rank is a 3-D block of the global grid stored
with a one-cell ghost layer on every face: shape ``(nx+2, ny+2, nz+2)``.
Faces are exchanged into the ghost layer; the 7-point Laplacian then
applies uniformly over the interior.

All kernels are vectorized NumPy (per the hpc-parallel guides: no
Python loops over grid points, views not copies where possible).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

#: (axis, direction) keys for the six faces, in a fixed exchange order
FACES: List[Tuple[int, int]] = [
    (0, -1), (0, +1), (1, -1), (1, +1), (2, -1), (2, +1),
]


def alloc_block(nx: int, ny: int, nz: int) -> np.ndarray:
    """A zeroed local block with ghost layers."""
    return np.zeros((nx + 2, ny + 2, nz + 2), dtype=np.float64)


def interior(u: np.ndarray) -> np.ndarray:
    """View of the owned cells (no ghosts)."""
    return u[1:-1, 1:-1, 1:-1]


def extract_face(u: np.ndarray, axis: int, direction: int) -> np.ndarray:
    """Copy of the outermost *owned* plane on ``(axis, direction)`` —
    what gets sent to the neighbour on that side."""
    idx: List[slice] = [slice(1, -1)] * 3
    idx[axis] = slice(1, 2) if direction < 0 else slice(-2, -1)
    return np.ascontiguousarray(u[tuple(idx)])


def insert_ghost(u: np.ndarray, axis: int, direction: int,
                 face: np.ndarray) -> None:
    """Write a received neighbour plane into the ghost layer."""
    idx: List[slice] = [slice(1, -1)] * 3
    idx[axis] = slice(0, 1) if direction < 0 else slice(-1, None)
    u[tuple(idx)] = face


def clear_ghost(u: np.ndarray, axis: int, direction: int) -> None:
    """Zero a ghost face (homogeneous Dirichlet boundary)."""
    idx: List[slice] = [slice(1, -1)] * 3
    idx[axis] = slice(0, 1) if direction < 0 else slice(-1, None)
    u[tuple(idx)] = 0.0


def apply_laplacian(u: np.ndarray, out: np.ndarray) -> None:
    """7-point negative Laplacian: ``out = 6u - sum(neighbours)``.

    ``u`` must have current ghost layers; ``out`` is written on the
    owned region only (its ghosts are untouched).
    """
    c = u[1:-1, 1:-1, 1:-1]
    out[1:-1, 1:-1, 1:-1] = (
        6.0 * c
        - u[:-2, 1:-1, 1:-1] - u[2:, 1:-1, 1:-1]
        - u[1:-1, :-2, 1:-1] - u[1:-1, 2:, 1:-1]
        - u[1:-1, 1:-1, :-2] - u[1:-1, 1:-1, 2:]
    )


def apply_laplacian_split(u: np.ndarray, out: np.ndarray,
                          part: str) -> None:
    """Laplacian restricted to the ``'inner'`` region (independent of
    ghosts) or the ``'boundary'`` shell (needs ghosts).

    This split is what communication/computation overlap is made of:
    the inner part is computed while faces are in flight.
    """
    if part == "inner":
        c = u[2:-2, 2:-2, 2:-2]
        if c.size == 0:
            return
        out[2:-2, 2:-2, 2:-2] = (
            6.0 * c
            - u[1:-3, 2:-2, 2:-2] - u[3:-1, 2:-2, 2:-2]
            - u[2:-2, 1:-3, 2:-2] - u[2:-2, 3:-1, 2:-2]
            - u[2:-2, 2:-2, 1:-3] - u[2:-2, 2:-2, 3:-1]
        )
        return
    if part == "boundary":
        # recompute the full owned region and keep only the shell: for
        # the block sizes in numeric mode this costs less than six
        # strided shell updates and is obviously correct.
        tmp = np.empty_like(u)
        apply_laplacian(u, tmp)
        shell = shell_mask(u.shape)
        out[shell] = tmp[shell]
        return
    raise ValueError(f"part must be 'inner' or 'boundary', got {part!r}")


def shell_mask(shape: Tuple[int, int, int]) -> np.ndarray:
    """Boolean mask of the one-cell owned shell (ghosts excluded)."""
    mask = np.zeros(shape, dtype=bool)
    mask[1:-1, 1:-1, 1:-1] = True
    inner = np.zeros(shape, dtype=bool)
    inner[2:-2, 2:-2, 2:-2] = True
    return mask & ~inner


def local_dot(a: np.ndarray, b: np.ndarray) -> float:
    """Dot product over owned cells."""
    return float(np.vdot(interior(a), interior(b)).real)


def axpy(alpha: float, x: np.ndarray, y: np.ndarray) -> None:
    """``y[own] += alpha * x[own]`` in place."""
    interior(y)[...] = interior(y) + alpha * interior(x)


def neighbor_faces_expected(coords: Tuple[int, ...],
                            dims: Tuple[int, ...]) -> int:
    """How many of the six faces have a real neighbour (non-periodic)."""
    n = 0
    for axis in range(3):
        if coords[axis] > 0:
            n += 1
        if coords[axis] < dims[axis] - 1:
            n += 1
    return n
