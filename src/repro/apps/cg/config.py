"""Configuration for the CG case study (Section IV-C, Fig. 6)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ...workloads.grids import BlockSpec


@dataclass(frozen=True)
class CGConfig:
    """One CG experiment instance.

    The paper's weak scaling: 120^3 grid points per process, 300 fixed
    iterations, alpha = 6.25% for the decoupled halo group.  ``numeric``
    switches to real (small) grids with verifiable algebra; the timed
    mode charges calibrated per-point costs instead.
    """

    nprocs: int
    iterations: int = 300
    alpha: float = 0.0625
    numeric: bool = False
    block_points: int = 120          # per-axis owned points (timed mode)
    numeric_block_points: int = 8    # per-axis points in numeric mode
    #: memory-bound 7-point stencil, Haswell-era: ~55 ns per point
    laplacian_seconds_per_point: float = 5.5e-8
    #: dots + three AXPYs per iteration
    vecops_seconds_per_point: float = 2.5e-8
    #: halo-group aggregation cost per received face byte (memcpy-ish)
    aggregate_seconds_per_byte: float = 2.0e-10
    #: O(P) argument-scan cost of the reference's MPI_Alltoallv
    alltoallv_scan_seconds_per_peer: float = 5.0e-6
    numeric_tol: float = 0.0         # 0 = run fixed iterations
    seed: int = 7

    def __post_init__(self):
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not (0.0 < self.alpha < 1.0):
            raise ValueError("alpha must be in (0, 1)")
        if self.block_points < 3 or self.numeric_block_points < 3:
            raise ValueError("blocks must be at least 3^3 points")

    # ------------------------------------------------------------------
    @property
    def points_per_axis(self) -> int:
        return self.numeric_block_points if self.numeric else self.block_points

    def block(self, scale: float = 1.0) -> BlockSpec:
        """The per-rank block; ``scale`` > 1 grows it for decoupled
        compute ranks that carry the absent ranks' share (weak-scaling
        fairness, Section IV-A)."""
        n = max(3, round(self.points_per_axis * scale ** (1.0 / 3.0)))
        return BlockSpec(n, n, n)

    @property
    def n_halo(self) -> int:
        """Decoupled halo-group size (at least one rank)."""
        return max(1, round(self.alpha * self.nprocs))

    @property
    def n_compute(self) -> int:
        return self.nprocs - self.n_halo

    def with_(self, **kw) -> "CGConfig":
        return replace(self, **kw)
