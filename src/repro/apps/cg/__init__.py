"""Conjugate-Gradient Poisson solver case study (Section IV-C, Fig. 6)."""

from .config import CGConfig
from .decoupled import cg_decoupled
from .kernels import (
    FACES,
    alloc_block,
    apply_laplacian,
    apply_laplacian_split,
    extract_face,
    insert_ghost,
    interior,
    local_dot,
)
from .reference import cg_blocking, cg_nonblocking
from .solver import CGResult, poisson_rhs, sequential_cg

__all__ = [
    "CGConfig", "CGResult", "FACES", "alloc_block", "apply_laplacian",
    "apply_laplacian_split", "cg_blocking", "cg_decoupled",
    "cg_nonblocking", "extract_face", "insert_ghost", "interior",
    "local_dot", "poisson_rhs", "sequential_cg",
]
