"""Sequential CG ground truth.

Solves the 3-D Poisson problem ``-lap(u) = f`` with homogeneous
Dirichlet boundaries on a uniform grid, with the same 7-point operator
the distributed solver uses — the oracle for numeric-mode tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class CGResult:
    u: np.ndarray
    iterations: int
    residual: float
    converged: bool
    residual_history: Optional[list] = None


def apply_poisson(u: np.ndarray) -> np.ndarray:
    """Global 7-point negative Laplacian with zero Dirichlet halo."""
    p = np.pad(u, 1)
    return (
        6.0 * u
        - p[:-2, 1:-1, 1:-1] - p[2:, 1:-1, 1:-1]
        - p[1:-1, :-2, 1:-1] - p[1:-1, 2:, 1:-1]
        - p[1:-1, 1:-1, :-2] - p[1:-1, 1:-1, 2:]
    )


def sequential_cg(f: np.ndarray, tol: float = 1e-8,
                  max_iter: int = 500,
                  record_history: bool = False) -> CGResult:
    """Textbook conjugate gradients on the Poisson operator."""
    if f.ndim != 3:
        raise ValueError("f must be a 3-D grid")
    u = np.zeros_like(f)
    r = f - apply_poisson(u)
    p = r.copy()
    rr = float(np.vdot(r, r).real)
    r0 = np.sqrt(rr)
    history = [r0] if record_history else None
    if r0 == 0.0:
        return CGResult(u, 0, 0.0, True, history)
    for it in range(1, max_iter + 1):
        ap = apply_poisson(p)
        alpha = rr / float(np.vdot(p, ap).real)
        u += alpha * p
        r -= alpha * ap
        rr_new = float(np.vdot(r, r).real)
        if record_history:
            history.append(np.sqrt(rr_new))
        if np.sqrt(rr_new) <= tol * r0:
            return CGResult(u, it, np.sqrt(rr_new), True, history)
        p = r + (rr_new / rr) * p
        rr = rr_new
    return CGResult(u, max_iter, np.sqrt(rr), False, history)


def poisson_rhs(shape: Tuple[int, int, int], seed: int = 42) -> np.ndarray:
    """A reproducible smooth-ish right-hand side."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape)
