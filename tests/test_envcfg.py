"""Unified $REPRO_* env validation: every integer knob raises a named
error quoting the variable and the offending value."""

import pytest

from repro.envcfg import EnvVarError, env_int, env_int_list


def test_env_int_parses_and_defaults(monkeypatch):
    monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
    assert env_int("REPRO_TEST_KNOB", 7) == 7
    assert env_int("REPRO_TEST_KNOB", None) is None
    monkeypatch.setenv("REPRO_TEST_KNOB", "42")
    assert env_int("REPRO_TEST_KNOB", 7) == 42


def test_env_int_names_variable_and_value(monkeypatch):
    monkeypatch.setenv("REPRO_TEST_KNOB", "lots")
    with pytest.raises(EnvVarError,
                       match=r"\$REPRO_TEST_KNOB must be an integer, "
                             r"got 'lots'"):
        env_int("REPRO_TEST_KNOB", 1)


def test_env_int_custom_error_and_what(monkeypatch):
    class Boom(ValueError):
        pass

    monkeypatch.setenv("REPRO_TEST_KNOB", "x")
    with pytest.raises(Boom, match="integer worker count"):
        env_int("REPRO_TEST_KNOB", 1, what="integer worker count",
                error=Boom)


def test_env_int_list(monkeypatch):
    monkeypatch.delenv("REPRO_TEST_LIST", raising=False)
    assert env_int_list("REPRO_TEST_LIST") is None
    monkeypatch.setenv("REPRO_TEST_LIST", "8, 16,32")
    assert env_int_list("REPRO_TEST_LIST") == [8, 16, 32]
    monkeypatch.setenv("REPRO_TEST_LIST", "8,sixteen")
    with pytest.raises(EnvVarError, match=r"\$REPRO_TEST_LIST"):
        env_int_list("REPRO_TEST_LIST")
    monkeypatch.setenv("REPRO_TEST_LIST", ", ,")
    with pytest.raises(EnvVarError):
        env_int_list("REPRO_TEST_LIST")


def test_invalid_repro_points_raises_named_error(monkeypatch):
    """$REPRO_POINTS garbage fails loudly through scale_points() — the
    same contract as $REPRO_STUDY_JOBS, not a silent ValueError."""
    from repro.bench.harness import scale_points

    monkeypatch.setenv("REPRO_POINTS", "32,large")
    with pytest.raises(EnvVarError,
                       match=r"\$REPRO_POINTS must be a comma-separated "
                             r"list of process counts, got '32,large'"):
        scale_points()
    monkeypatch.setenv("REPRO_POINTS", "64,32,32")
    assert scale_points() == [32, 64]
    monkeypatch.delenv("REPRO_POINTS", raising=False)
    from repro.bench.harness import DEFAULT_POINTS
    assert scale_points() == list(DEFAULT_POINTS)


def test_study_jobs_goes_through_envcfg(monkeypatch):
    """$REPRO_STUDY_JOBS keeps its historical StudyError and message
    while sharing the envcfg implementation."""
    from repro.study import StudyError
    from repro.study.runner import _resolve_jobs

    monkeypatch.setenv("REPRO_STUDY_JOBS", "abc")
    with pytest.raises(StudyError,
                       match=r"\$REPRO_STUDY_JOBS must be an integer "
                             r"worker count, got 'abc'"):
        _resolve_jobs(None)
    monkeypatch.setenv("REPRO_STUDY_JOBS", "3")
    assert _resolve_jobs(None) == 3
