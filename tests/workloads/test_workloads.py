"""Tests for the synthetic workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    BlockSpec,
    CorpusSpec,
    GEMSetup,
    ParticleBlock,
    assign_files_round_robin,
    corpus_files,
    cubic_block,
    dot_flops,
    exiting_fraction,
    file_histogram,
    gem_counts,
    gem_density_profile,
    global_grid,
    histogram_nbytes,
    imbalance_ratio,
    laplacian_flops,
    merge_histograms,
    sample_words,
)


# ----------------------------------------------------------------------
# corpus
# ----------------------------------------------------------------------

def test_zipf_frequencies_normalized_and_decreasing():
    spec = CorpusSpec(vocabulary=1000)
    f = spec.frequencies()
    assert f.sum() == pytest.approx(1.0)
    assert np.all(np.diff(f) <= 0)
    assert f[0] > 10 * f[99]  # heavy head


def test_corpus_files_sizes_in_paper_range():
    spec = CorpusSpec()
    files = corpus_files(spec, 100)
    assert len(files) == 100
    assert all(spec.min_file_bytes <= f.nbytes <= spec.max_file_bytes
               for f in files)
    # irregular sizes: not all equal
    assert len({f.nbytes for f in files}) > 10


def test_corpus_deterministic():
    spec = CorpusSpec(seed=5)
    a = corpus_files(spec, 10)
    b = corpus_files(spec, 10)
    assert [f.nbytes for f in a] == [f.nbytes for f in b]


def test_sample_words_prefix_stability():
    spec = CorpusSpec(vocabulary=100)
    f = corpus_files(spec, 1)[0]
    w10 = sample_words(spec, f, 10)
    w20 = sample_words(spec, f, 20)
    assert w20[:10] == w10


def test_file_histogram_statistics():
    spec = CorpusSpec(vocabulary=500)
    f = corpus_files(spec, 1)[0]
    hist = file_histogram(spec, f, scale_words=10_000)
    assert sum(hist.values()) == 10_000
    # the most common word dominates (Zipf head)
    top = max(hist.values())
    assert top > 10_000 / 500  # way above uniform


def test_merge_histograms_is_sum():
    a = {"x": 1, "y": 2}
    b = {"y": 3, "z": 4}
    assert merge_histograms([a, b]) == {"x": 1, "y": 5, "z": 4}
    assert merge_histograms([]) == {}


def test_histogram_nbytes():
    assert histogram_nbytes({"ab": 5}) == 2 + 8


def test_assign_files_round_robin():
    spec = CorpusSpec()
    files = corpus_files(spec, 10)
    parts = assign_files_round_robin(files, 3)
    assert [len(p) for p in parts] == [4, 3, 3]
    flat = sorted(f.index for p in parts for f in p)
    assert flat == list(range(10))


def test_corpus_validation():
    with pytest.raises(ValueError):
        CorpusSpec(vocabulary=0)
    with pytest.raises(ValueError):
        CorpusSpec(zipf_s=0)
    with pytest.raises(ValueError):
        corpus_files(CorpusSpec(), -1)
    spec = CorpusSpec()
    with pytest.raises(ValueError):
        spec.word(spec.vocabulary)


@given(n=st.integers(min_value=1, max_value=2000))
@settings(max_examples=30, deadline=None)
def test_property_histogram_mass_conserved(n):
    spec = CorpusSpec(vocabulary=50, seed=1)
    f = corpus_files(spec, 1)[0]
    hist = file_histogram(spec, f, scale_words=n)
    assert sum(hist.values()) == n
    assert all(v > 0 for v in hist.values())


# ----------------------------------------------------------------------
# grids
# ----------------------------------------------------------------------

def test_cubic_block_matches_paper():
    b = cubic_block()
    assert b.points == 120 ** 3
    assert b.nbytes == 120 ** 3 * 8


def test_block_interior_and_boundary():
    b = BlockSpec(4, 4, 4)
    assert b.interior_points == 8
    assert b.boundary_points == 64 - 8


def test_thin_block_has_no_interior():
    b = BlockSpec(1, 10, 10)
    assert b.interior_points == 0
    assert b.boundary_points == b.points


def test_face_bytes():
    b = BlockSpec(10, 20, 30)
    assert b.face_points(0) == 600
    assert b.face_points(1) == 300
    assert b.face_points(2) == 200
    assert b.halo_bytes_total == 2 * (600 + 300 + 200) * 8


def test_global_grid():
    assert global_grid([2, 3, 4], BlockSpec(10, 10, 10)) == (20, 30, 40)


def test_flop_counts():
    b = BlockSpec(10, 10, 10)
    assert laplacian_flops(b) == 8000
    assert dot_flops(b) == 2000


def test_grid_validation():
    with pytest.raises(ValueError):
        BlockSpec(0, 1, 1)
    with pytest.raises(ValueError):
        BlockSpec(1, 1, 1).face_points(3)
    with pytest.raises(ValueError):
        global_grid([2, 2], BlockSpec(1, 1, 1))


# ----------------------------------------------------------------------
# particles
# ----------------------------------------------------------------------

def test_gem_profile_peaked_at_sheet():
    prof = gem_density_profile(64, GEMSetup())
    assert prof.sum() == pytest.approx(1.0)
    mid = prof[31:33].mean()
    edge = prof[:2].mean()
    assert mid > 3 * edge


def test_gem_counts_skewed_and_conserving():
    setup = GEMSetup(total_particles=1_000_000)
    counts = gem_counts(128, setup)
    assert counts.sum() == 1_000_000
    assert imbalance_ratio(counts) > 1.5  # the paper's skew premise


def test_gem_counts_deterministic():
    setup = GEMSetup(total_particles=10_000, seed=3)
    assert np.array_equal(gem_counts(16, setup), gem_counts(16, setup))


def test_exiting_fraction_bounded_and_deterministic():
    setup = GEMSetup()
    f1 = exiting_fraction(5, 7, setup)
    f2 = exiting_fraction(5, 7, setup)
    assert f1 == f2
    assert 0.0 <= f1 <= 1.0
    # varies across ranks/steps
    vals = {round(exiting_fraction(r, 0, setup), 9) for r in range(20)}
    assert len(vals) > 10


def test_particle_block_roundtrip():
    rng = np.random.default_rng(0)
    b = ParticleBlock.sample(100, rng)
    assert len(b) == 100
    assert b.nbytes_wire == 100 * 80
    left = b.select(b.x[:, 0] < 0.5)
    right = b.select(b.x[:, 0] >= 0.5)
    merged = ParticleBlock.concat([left, right])
    assert len(merged) == 100
    assert sorted(merged.ids.tolist()) == sorted(b.ids.tolist())


def test_particle_block_empty_concat():
    empty = ParticleBlock.concat([])
    assert len(empty) == 0


def test_setup_validation():
    with pytest.raises(ValueError):
        GEMSetup(total_particles=0)
    with pytest.raises(ValueError):
        GEMSetup(sheet_thickness=0)
    with pytest.raises(ValueError):
        exiting_fraction(0, 0, GEMSetup(), mean_fraction=2.0)
    with pytest.raises(ValueError):
        gem_density_profile(0, GEMSetup())


@given(nranks=st.integers(min_value=1, max_value=512),
       total=st.integers(min_value=1, max_value=10**6))
@settings(max_examples=40, deadline=None)
def test_property_gem_counts_conserve(nranks, total):
    counts = gem_counts(nranks, GEMSetup(total_particles=total))
    assert counts.sum() == total
    assert (counts >= 0).all()
