"""Tests for the figure CLI."""

import pytest

from repro.bench.cli import _parse_points, main, run_figure


def test_parse_points_default():
    assert _parse_points(None)[0] == 32


def test_parse_points_custom():
    assert _parse_points("128, 32") == [32, 128]


def test_parse_points_empty_rejected():
    with pytest.raises(SystemExit):
        _parse_points(",")


def test_cli_fig3(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    assert main(["fig3"]) == 0
    out = capsys.readouterr().out
    assert "conventional" in out and "decoupled" in out


def test_cli_sweep_figure_small(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    assert main(["fig8", "--points", "32"]) == 0
    out = capsys.readouterr().out
    assert "RefColl" in out and "Decoupling" in out
    assert (tmp_path / "fig8_cli.json").exists()


def test_cli_placement_figure(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    assert main(["placement", "--points", "32"]) == 0
    out = capsys.readouterr().out
    assert "colocated" in out and "partitioned" in out
    assert (tmp_path / "placement_cli.json").exists()


def test_cli_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        main(["fig99"])
