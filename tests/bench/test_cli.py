"""Tests for the figure CLI."""

import pytest

from repro.bench.cli import _parse_points, main, run_figure


def test_parse_points_default():
    assert _parse_points(None)[0] == 32


def test_parse_points_custom():
    assert _parse_points("128, 32") == [32, 128]


def test_parse_points_empty_rejected():
    with pytest.raises(SystemExit):
        _parse_points(",")


def test_cli_fig3(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    assert main(["fig3"]) == 0
    out = capsys.readouterr().out
    assert "conventional" in out and "decoupled" in out


def test_cli_sweep_figure_small(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    assert main(["fig8", "--points", "32"]) == 0
    out = capsys.readouterr().out
    assert "RefColl" in out and "Decoupling" in out
    assert (tmp_path / "fig8_cli.json").exists()


def test_cli_placement_figure(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    assert main(["placement", "--points", "32"]) == 0
    out = capsys.readouterr().out
    assert "colocated" in out and "partitioned" in out
    assert (tmp_path / "placement_cli.json").exists()


def test_cli_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_cli_rejects_stray_name_for_figures():
    with pytest.raises(SystemExit, match="study"):
        main(["fig5", "fig6"])


def test_cli_study_runs_and_caches(capsys, monkeypatch, tmp_path):
    """The study path end to end: cold run executes, warm run is fully
    cached (zero simulation work) and --expect-cached passes."""
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    cache = str(tmp_path / "cache")
    csv_path = tmp_path / "fig5.csv"

    assert main(["study", "fig5", "--points", "32", "--cache", cache,
                 "--csv", str(csv_path)]) == 0
    out = capsys.readouterr().out
    assert "Reference" in out and "Decoupling (a=0.0625)" in out
    assert "4 executed, 0 cached" in out
    assert (tmp_path / "results" / "fig5_study.json").exists()
    assert csv_path.read_text().startswith("study,series,x,value,cached")

    assert main(["study", "fig5", "--points", "32", "--cache", cache,
                 "--expect-cached"]) == 0
    out = capsys.readouterr().out
    assert "0 executed, 4 cached" in out


def test_cli_study_expect_cached_fails_on_cold_cache(capsys, monkeypatch,
                                                     tmp_path):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    cache = str(tmp_path / "cold-cache")
    assert main(["study", "fig5", "--points", "32", "--cache", cache,
                 "--expect-cached"]) == 1
    assert "expected a fully cached run" in capsys.readouterr().err


def test_cli_study_expect_cached_needs_a_cache(monkeypatch):
    monkeypatch.delenv("REPRO_STUDY_CACHE", raising=False)
    with pytest.raises(SystemExit, match="cache"):
        main(["study", "fig5", "--expect-cached"])


def test_cli_study_only_flags_rejected_for_figures():
    """A silently ignored --expect-cached would green-light a broken
    cache gate; the CLI must refuse instead."""
    with pytest.raises(SystemExit, match="study"):
        main(["fig5", "--expect-cached"])
    with pytest.raises(SystemExit, match="study"):
        main(["all", "--csv", "/tmp/x.csv"])


def test_cli_study_keep_going_and_resume(capsys, monkeypatch, tmp_path):
    """The resilience path end to end: a run with a poisoned cell exits
    0 under --keep-going with the failure in the artifact, and --resume
    re-executes only the poisoned cell."""
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    monkeypatch.setenv("REPRO_POINTS", "8,16")
    cache = str(tmp_path / "cache")

    assert main(["study", "resilience", "--cache", cache,
                 "--keep-going"]) == 0
    out = capsys.readouterr().out
    assert "1 failed" in out and "without a value" in out

    import json
    artifact = tmp_path / "results" / "resilience_study.json"
    extra = json.loads(artifact.read_text())["extra"]
    assert extra["failed"] == 1 and extra["executed"] == 3

    from repro.study.runner import simulations_executed
    before = simulations_executed()
    assert main(["study", "resilience", "--cache", cache,
                 "--keep-going", "--resume"]) == 0
    # only the poisoned cell simulates again
    assert simulations_executed() == before + 1
    extra = json.loads(artifact.read_text())["extra"]
    assert extra["cached"] == 2 and extra["executed"] == 1


def test_cli_study_failure_without_keep_going_fails(capsys, monkeypatch,
                                                    tmp_path):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    monkeypatch.setenv("REPRO_POINTS", "8")
    # --retries overrides the catalog study's keep_going default with a
    # raise policy, so the poisoned cell aborts the run with exit 1
    assert main(["study", "resilience", "--retries", "0"]) == 1
    assert "FAIL:" in capsys.readouterr().err


def test_cli_study_resume_needs_a_cache(monkeypatch):
    monkeypatch.delenv("REPRO_STUDY_CACHE", raising=False)
    with pytest.raises(SystemExit, match="cache"):
        main(["study", "fig5", "--resume"])


def test_cli_resilience_flags_rejected_for_figures():
    for flags in (["--keep-going"], ["--timeout", "5"],
                  ["--retries", "1"], ["--resume"]):
        with pytest.raises(SystemExit, match="study"):
            main(["fig5"] + flags)


def test_cli_study_needs_a_known_name():
    with pytest.raises(SystemExit, match="catalog"):
        main(["study"])
    with pytest.raises(SystemExit, match="catalog"):
        main(["study", "fig99"])


def test_cli_figures_honour_study_cache(capsys, monkeypatch, tmp_path):
    """The fig* aliases ride the same cache as the study command."""
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    cache = str(tmp_path / "cache")
    assert main(["study", "placement", "--points", "32",
                 "--cache", cache]) == 0
    capsys.readouterr()
    from repro.study.runner import simulations_executed
    before = simulations_executed()
    assert main(["placement", "--points", "32", "--cache", cache]) == 0
    assert simulations_executed() == before, \
        "the alias must be served from the study cache"
    out = capsys.readouterr().out
    assert "colocated" in out and "partitioned" in out
    assert (tmp_path / "placement_cli.json").exists()
