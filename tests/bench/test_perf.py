"""Tests for the perf-benchmark subsystem (repro.bench.perf)."""

import json
import os

import pytest

from repro.bench import perf
from repro.bench.cli import main as cli_main


def test_scenario_registry_is_well_formed():
    assert set(perf.DEFAULT_SCENARIOS) <= set(perf.SCENARIOS)
    for name, scenario in perf.SCENARIOS.items():
        assert scenario.name == name
        assert scenario.nprocs > 0
        assert scenario.describe


def test_unknown_scenario_rejected():
    with pytest.raises(perf.PerfError, match="unknown scenario"):
        perf.run_scenario("nope")
    with pytest.raises(perf.PerfError, match="unknown variant"):
        perf.run_scenario("quickstart", "warp")


def test_quickstart_fast_record_fields():
    rec = perf.run_scenario("quickstart", "fast")
    assert rec.scenario == "quickstart"
    assert rec.variant == "fast"
    assert rec.events > 0
    assert rec.wall_s > 0
    assert rec.events_per_sec > 0
    assert rec.messages > 0
    assert rec.peak_unexpected >= 1
    assert len(rec.digest) == 64


def test_quickstart_bit_identical_to_oracle():
    """The tentpole invariant: fast path == slow-path oracle on every
    virtual-time observable."""
    fast, oracle = perf.verify_against_oracle("quickstart")
    assert fast.digest == oracle.digest
    assert fast.virtual_elapsed == oracle.virtual_elapsed
    assert fast.messages == oracle.messages
    assert fast.bytes == oracle.bytes


def test_repeats_assert_determinism():
    rec1 = perf.run_scenario("quickstart", "fast", repeats=2)
    rec2 = perf.run_scenario("quickstart", "fast")
    assert rec1.digest == rec2.digest


def test_golden_roundtrip(tmp_path):
    rec = perf.run_scenario("quickstart", "fast")
    golden = tmp_path / "quickstart.json"
    perf.write_golden(rec, str(golden))
    perf.check_golden(rec, str(golden))  # must not raise
    # perturb one virtual field -> must fail
    data = json.loads(golden.read_text())
    data["messages"] += 1
    golden.write_text(json.dumps(data))
    with pytest.raises(perf.PerfError, match="differ from golden"):
        perf.check_golden(rec, str(golden))


def test_golden_scenario_name_guard(tmp_path):
    rec = perf.run_scenario("quickstart", "fast")
    golden = tmp_path / "wrong.json"
    golden.write_text(json.dumps({"scenario": "fig5-256"}))
    with pytest.raises(perf.PerfError, match="pins scenario"):
        perf.check_golden(rec, str(golden))


def test_suite_payload_shape(tmp_path):
    payload = perf.run_suite(["quickstart"], check_oracle=False, repeats=1)
    assert payload["meta"]["schema"] == perf.SCHEMA
    entry = payload["scenarios"]["quickstart"]
    assert entry["fast"]["events_per_sec"] > 0
    path = perf.save_payload(payload, out_dir=str(tmp_path))
    assert path.endswith("BENCH_perf.json")
    on_disk = json.loads(open(path).read())
    assert on_disk["scenarios"]["quickstart"]["fast"]["events"] == \
        entry["fast"]["events"]


def test_suite_compare_merges_before(tmp_path):
    base = perf.run_suite(["quickstart"], check_oracle=False, repeats=1)
    payload = perf.run_suite(["quickstart"], check_oracle=False,
                             repeats=1, compare=base)
    entry = payload["scenarios"]["quickstart"]
    assert entry["before"]["events"] == entry["fast"]["events"]
    assert entry["speedup_vs_before"] > 0
    report = perf.render_report(payload)
    assert "quickstart" in report and "before" in report


def test_committed_quickstart_golden_matches():
    """CI's perf-smoke gate, run as a unit test too: the committed
    golden must match what the simulator produces today."""
    golden = os.path.join(os.path.dirname(__file__), "..", "..",
                          "benchmarks", "golden", "quickstart_perf.json")
    rec = perf.run_scenario("quickstart", "fast")
    perf.check_golden(rec, golden)


def test_committed_fault_recovery_golden_matches():
    """CI's fault-smoke gate, run as a unit test too: the crash+recover
    scenario's virtual-time digest must match the committed golden —
    recovery-timing drift fails exactly like fabric drift."""
    golden = os.path.join(os.path.dirname(__file__), "..", "..",
                          "benchmarks", "golden",
                          "fault_recovery_perf.json")
    rec = perf.run_scenario("fault-recovery", "fast")
    perf.check_golden(rec, golden)


def test_fault_recovery_scenario_has_no_oracle_leg():
    scenario = perf.SCENARIOS["fault-recovery"]
    assert scenario.slow_path == "none"
    with pytest.raises(perf.PerfError, match="no oracle leg"):
        perf.run_scenario("fault-recovery", "oracle")


def test_cli_write_and_check_golden(tmp_path, capsys):
    golden = str(tmp_path / "g.json")
    assert cli_main(["perf", "--scenario", "quickstart",
                     "--write-golden", golden]) == 0
    assert cli_main(["perf", "--scenario", "quickstart",
                     "--check-golden", golden]) == 0
    out = capsys.readouterr().out
    assert "golden check OK" in out


def test_cli_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        cli_main(["perf", "--scenario", "not-a-scenario"])


def test_placement_scenarios_diverge_under_fat_tree():
    """The acceptance claim of the placement subsystem: partitioned vs
    colocated reduce groups produce measurably different virtual times
    under fat-tree contention (same workload, same fabric)."""
    part = perf.run_scenario("fig5-placement", "fast")
    colo = perf.run_scenario("fig5-colocated", "fast")
    assert part.messages == colo.messages   # identical traffic...
    assert part.bytes == colo.bytes
    # ...but the partitioned layout pays the fabric: >10% slower
    assert part.virtual_elapsed > colo.virtual_elapsed * 1.10


def test_fabric_scenarios_pin_engine_oracle():
    """Topology scenarios run the oracle leg with the seed engine and
    mailbox but keep their own fabric (slow_path='core')."""
    scenario = perf.SCENARIOS["fabric-contention"]
    assert scenario.slow_path == "core"
    kwargs = perf._slow_path_kwargs(scenario)
    assert "network_factory" not in kwargs
    assert set(kwargs) == {"engine_factory", "mailbox_factory"}
    fast, oracle = perf.verify_against_oracle("fabric-contention")
    assert fast.digest == oracle.digest


def test_committed_fabric_contention_golden_matches():
    """CI's fabric-drift gate, run as a unit test too."""
    golden = os.path.join(os.path.dirname(__file__), "..", "..",
                          "benchmarks", "golden",
                          "fabric_contention_perf.json")
    rec = perf.run_scenario("fabric-contention", "fast")
    perf.check_golden(rec, golden)


def test_profile_layers():
    prof = perf.profile_scenario("quickstart", top_n=3)
    assert prof["total_s"] > 0
    assert "engine" in prof["layers_s"]
    assert all(len(v) <= 3 for v in prof["top"].values())


# ----------------------------------------------------------------------
# the compiled leg (plan compiler)
# ----------------------------------------------------------------------

def test_compiled_variant_bit_identical_to_interpreted():
    fast = perf.run_scenario("quickstart", "fast")
    compiled = perf.verify_compiled("quickstart", fast)
    assert compiled.variant == "compiled"
    assert compiled.digest == fast.digest
    assert compiled.virtual_elapsed == fast.virtual_elapsed
    assert compiled.events == fast.events


def test_compiled_variant_rejected_for_fault_scenarios():
    with pytest.raises(perf.PerfError, match="bypasses itself"):
        perf.run_scenario("fault-recovery", "compiled")


def test_verify_compiled_raises_on_divergence():
    fast = perf.run_scenario("quickstart", "fast")
    forged = perf.PerfRecord(**{**fast.__dict__, "digest": "0" * 64})
    with pytest.raises(perf.PerfError, match="diverged from the"):
        perf.verify_compiled("quickstart", forged)


def test_require_compiled_speedup_gate():
    payload = {"scenarios": {"s": {
        "fast": {"events_per_sec": 100.0},
        "compiled": {"events_per_sec": 150.0}}}}
    assert perf.require_compiled_at_least(payload, "s") == \
        pytest.approx(1.5)
    with pytest.raises(perf.PerfError, match="reached only"):
        perf.require_compiled_at_least(payload, "s", ratio=2.0)
    with pytest.raises(perf.PerfError, match="no compiled\\+fast legs"):
        perf.require_compiled_at_least(payload, "nope")


def test_suite_carries_the_compiled_leg():
    payload = perf.run_suite(["quickstart"], check_oracle=False, repeats=1)
    entry = payload["scenarios"]["quickstart"]
    assert entry["compiled_identical"] is True
    assert entry["compiled"]["events_per_sec"] > 0
    assert entry["speedup_compiled_vs_fast"] > 0
    report = perf.render_report(payload)
    assert "compiled" in report
    assert "bit-identical" in report


def test_fault_scenarios_skip_the_compiled_leg():
    payload = perf.run_suite(["fault-recovery"], check_oracle=False,
                             repeats=1)
    entry = payload["scenarios"]["fault-recovery"]
    assert "compiled" not in entry


def test_committed_quickstart_golden_matches_compiled():
    """CI's compiled perf-smoke gate, run as a unit test too: the
    compiled leg must reproduce the committed interpreted golden."""
    golden = os.path.join(os.path.dirname(__file__), "..", "..",
                          "benchmarks", "golden", "quickstart_perf.json")
    rec = perf.run_scenario("quickstart", "compiled")
    perf.check_golden(rec, golden)


def test_profile_attributes_the_compile_layer():
    prof = perf.profile_scenario("quickstart", top_n=3,
                                 variant="compiled")
    assert prof["total_s"] > 0
    assert "compile" in prof["layers_s"]


def test_cli_compiled_variant_and_speedup_gate(tmp_path, capsys):
    golden = str(tmp_path / "g.json")
    assert cli_main(["perf", "--scenario", "quickstart",
                     "--write-golden", golden]) == 0
    assert cli_main(["perf", "--scenario", "quickstart",
                     "--variant", "compiled",
                     "--check-golden", golden]) == 0
    out = capsys.readouterr().out
    assert "[compiled]" in out


def test_parallel_variant_bit_identical_to_serial():
    fast = perf.run_scenario("quickstart", "fast")
    par = perf.verify_parallel("quickstart", fast)
    assert par.variant == "parallel"
    assert par.digest == fast.digest
    assert par.events == fast.events
    stats = par.extra["parallel"]
    assert stats["workers"] == perf.PARALLEL_WORKERS
    assert stats["invariant_violations"] == 0


def test_parallel_variant_rejected_for_fault_scenarios():
    with pytest.raises(perf.PerfError, match="bypasses itself"):
        perf.run_scenario("fault-recovery", "parallel")


def test_verify_parallel_raises_on_divergence():
    fast = perf.run_scenario("quickstart", "fast")
    forged = perf.PerfRecord(**{**fast.__dict__, "digest": "0" * 64})
    with pytest.raises(perf.PerfError, match="diverged from the"):
        perf.verify_parallel("quickstart", forged)


def test_suite_carries_the_parallel_leg():
    payload = perf.run_suite(["quickstart"], check_oracle=False, repeats=1)
    entry = payload["scenarios"]["quickstart"]
    assert entry["parallel_identical"] is True
    assert entry["parallel"]["events_per_sec"] > 0
    assert entry["speedup_parallel_vs_fast"] > 0
    assert payload["meta"]["parallel_workers"] == perf.PARALLEL_WORKERS
    assert payload["meta"]["cpu_count"] == os.cpu_count()
    report = perf.render_report(payload)
    assert "parallel" in report
    assert "serial fast path" in report


def test_fault_scenarios_skip_the_parallel_leg():
    payload = perf.run_suite(["fault-recovery"], check_oracle=False,
                             repeats=1)
    entry = payload["scenarios"]["fault-recovery"]
    assert "parallel" not in entry


def test_committed_quickstart_golden_matches_parallel():
    """The parallel leg must reproduce the committed serial golden —
    the CI parallel-smoke gate, run as a unit test too."""
    golden = os.path.join(os.path.dirname(__file__), "..", "..",
                          "benchmarks", "golden", "quickstart_perf.json")
    rec = perf.run_scenario("quickstart", "parallel")
    perf.check_golden(rec, golden)


def test_golden_scenarios_scans_committed_files():
    golden = perf.golden_scenarios()
    assert golden["quickstart"] == "quickstart_perf.json"
    assert golden["fault-recovery"] == "fault_recovery_perf.json"
    assert perf.golden_scenarios("/nonexistent") == {}


def test_list_scenarios_enumerates_everything():
    text = perf.list_scenarios()
    for name, s in perf.SCENARIOS.items():
        assert name in text
        assert s.describe in text
    assert "quickstart_perf.json" in text
    assert "opt-in" in text    # fig5-4096 is not in the default suite


def test_cli_perf_list(capsys):
    assert cli_main(["perf", "--list"]) == 0
    out = capsys.readouterr().out
    assert "bench perf scenarios" in out
    assert "fig5-4096" in out
    with pytest.raises(SystemExit, match="does not run"):
        cli_main(["perf", "--list", "--scenario", "quickstart"])


def test_cli_compare_warns_on_core_count_mismatch(tmp_path, capsys,
                                                  monkeypatch):
    import json as _json

    payload = perf.run_suite(["quickstart"], check_oracle=False, repeats=1)
    payload["meta"]["cpu_count"] = (os.cpu_count() or 1) + 7
    before = tmp_path / "before.json"
    before.write_text(_json.dumps(payload))
    assert cli_main(["perf", "--scenario", "quickstart", "--no-oracle",
                     "--compare", str(before),
                     "--out", str(tmp_path)]) == 0
    err = capsys.readouterr().err
    assert "not apples to apples" in err
