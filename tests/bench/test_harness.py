"""Tests for the benchmark harness."""

import json
import os

import pytest

from repro.bench.harness import (
    Series,
    max_elapsed,
    max_field,
    render_table,
    save_artifact,
    scale_points,
)
from repro.simmpi import quiet_testbed


def test_scale_points_default():
    os.environ.pop("REPRO_POINTS", None)
    pts = scale_points()
    assert pts[0] == 32 and pts[-1] == 8192
    assert pts == sorted(pts)


def test_scale_points_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_POINTS", "64,16,256")
    assert scale_points() == [16, 64, 256]


def test_scale_points_bad_env(monkeypatch):
    monkeypatch.setenv("REPRO_POINTS", ",")
    with pytest.raises(ValueError):
        scale_points()


def test_series_accessors():
    s = Series("a", points={32: 2.0, 64: 4.0})
    t = Series("b", points={32: 1.0, 64: 1.0})
    assert s.xs == [32, 64]
    assert s.value(32) == 2.0
    # t is 4x faster than s at P=64 (smaller elapsed wins)
    assert t.speedup_over(s, 64) == 4.0


def test_series_value_names_the_missing_point():
    s = Series("mine", points={32: 2.0, 64: 4.0})
    with pytest.raises(KeyError, match=r"'mine' has no point P=128"):
        s.value(128)
    with pytest.raises(KeyError, match=r"\[32, 64\]"):
        s.value(7)


def test_deprecated_shims_are_gone():
    """The study-redesign deprecation cycle is over: the backwards-named
    ratio_to and the forwarding sweep shim were removed."""
    import repro.bench.harness as harness

    assert not hasattr(Series, "ratio_to")
    assert not hasattr(harness, "sweep")
    assert "sweep" not in __import__("repro.bench", fromlist=[""]).__all__


def test_sweep_callable_runs_worker_at_each_point():
    """study.sweep_callable is the imperative replacement for the
    removed harness.sweep shim."""
    from repro.study import sweep_callable

    def worker(comm, cfg):
        yield from comm.compute(cfg)
        return {"elapsed": comm.time}

    s = sweep_callable(worker, lambda p: 0.001 * p, [2, 4], quiet_testbed,
                       max_elapsed, label="t")
    assert s.points[2] == pytest.approx(0.002)
    assert s.points[4] == pytest.approx(0.004)


def test_max_field_with_role_filter():
    class R:
        values = [
            {"role": "a", "x": 1.0},
            {"role": "b", "x": 5.0},
        ]

    assert max_field("x")(R) == 5.0
    assert max_field("x", role="a")(R) == 1.0


def test_render_table_contains_all_points_and_labels():
    a = Series("alpha", points={32: 1.5, 64: 2.5})
    b = Series("beta", points={32: 3.0})
    text = render_table("My figure", [a, b])
    assert "My figure" in text
    assert "alpha" in text and "beta" in text
    assert "32" in text and "64" in text
    assert "1.50" in text and "3.00" in text


def test_save_artifact_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    s = Series("x", points={8: 1.25}, meta={"note": "hi"})
    path = save_artifact("unit", [s], extra={"k": 1})
    with open(path) as fh:
        payload = json.load(fh)
    assert payload["figure"] == "unit"
    assert payload["series"][0]["points"]["8"] == 1.25
    assert payload["extra"] == {"k": 1}
