"""Builder validation and compilation of the declarative front-end."""

import pytest

from repro.api import GraphError, StreamGraph
from repro.core import PlanError
from repro.mpistream import Collector, RunningStats


def _body(ctx):
    yield from ctx.comm.barrier()


# ----------------------------------------------------------------------
# stage declaration
# ----------------------------------------------------------------------

def test_stage_and_flow_chain():
    g = StreamGraph()
    assert g.stage("a", fraction=0.5, body=_body) is g
    assert g.stage("b", fraction=0.5) is g
    assert g.flow("f", "a", "b", operator=Collector) is g


def test_duplicate_stage_rejected():
    g = StreamGraph().stage("a", fraction=0.5, body=_body)
    with pytest.raises(GraphError, match="duplicate stage"):
        g.stage("a", fraction=0.5)


def test_stage_needs_exactly_one_sizing():
    with pytest.raises(GraphError, match="exactly one"):
        StreamGraph().stage("a", fraction=0.5, size=4)
    with pytest.raises(GraphError, match="exactly one"):
        StreamGraph().stage("a")


def test_stage_fraction_range():
    with pytest.raises(GraphError, match="fraction"):
        StreamGraph().stage("a", fraction=0.0)
    with pytest.raises(GraphError, match="fraction"):
        StreamGraph().stage("a", fraction=1.5)


def test_stage_size_range():
    with pytest.raises(GraphError, match="size"):
        StreamGraph().stage("a", size=0)


# ----------------------------------------------------------------------
# flow declaration
# ----------------------------------------------------------------------

def test_unknown_stage_in_flow_rejected():
    g = StreamGraph().stage("a", fraction=0.5, body=_body)
    with pytest.raises(GraphError, match="unknown stage 'b'"):
        g.flow("f", "a", "b")
    with pytest.raises(GraphError, match="unknown stage 'c'"):
        g.flow("f", "c", "a")


def test_self_flow_rejected():
    g = StreamGraph().stage("a", fraction=0.5, body=_body)
    with pytest.raises(GraphError, match="distinct"):
        g.flow("f", "a", "a")


def test_duplicate_flow_rejected():
    g = (StreamGraph()
         .stage("a", fraction=0.5, body=_body)
         .stage("b", fraction=0.5, body=_body)
         .flow("f", "a", "b"))
    with pytest.raises(GraphError, match="duplicate flow"):
        g.flow("f", "b", "a")


def test_flow_parameter_validation():
    g = (StreamGraph()
         .stage("a", fraction=0.5, body=_body)
         .stage("b", fraction=0.5, body=_body))
    with pytest.raises(GraphError, match="window"):
        g.flow("f", "a", "b", window=0)
    with pytest.raises(GraphError, match="element_overhead"):
        g.flow("f", "a", "b", element_overhead=-1.0)
    with pytest.raises(GraphError, match="at most one"):
        g.flow("f", "a", "b", operator=Collector(),
               operator_factory=Collector)


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------

def test_empty_graph_rejected():
    with pytest.raises(GraphError, match="no stages"):
        StreamGraph().compile(8)


def test_fraction_overflow_rejected():
    g = (StreamGraph()
         .stage("a", fraction=0.75, body=_body)
         .stage("b", fraction=0.75, body=_body))
    with pytest.raises(GraphError, match="overflow"):
        g.compile(8)


def test_size_plus_fraction_overflow_rejected():
    g = (StreamGraph()
         .stage("a", size=6, body=_body)
         .stage("b", fraction=0.5, body=_body))
    with pytest.raises(GraphError, match="overflow"):
        g.compile(8)


def test_missing_body_for_producer_stage():
    g = (StreamGraph()
         .stage("a", fraction=0.5)
         .stage("b", fraction=0.5, body=_body)
         .flow("f", "a", "b", operator=Collector))
    with pytest.raises(GraphError, match="missing body"):
        g.compile(8)


def test_missing_body_for_isolated_stage():
    g = (StreamGraph()
         .stage("a", fraction=0.5, body=_body)
         .stage("b", fraction=0.5))
    with pytest.raises(GraphError, match="missing body"):
        g.compile(8)


def test_missing_body_without_operator():
    g = (StreamGraph()
         .stage("a", fraction=0.5, body=_body)
         .stage("b", fraction=0.5)
         .flow("f", "a", "b"))
    with pytest.raises(GraphError, match="missing body"):
        g.compile(8)


def test_fraction_underflow_rejected():
    """Fractions that undercover the machine would silently inflate the
    largest stage via the plan's drift rule — reject instead."""
    g = (StreamGraph()
         .stage("compute", fraction=0.25, body=_body)
         .stage("analyze", fraction=0.125, body=_body))
    with pytest.raises(GraphError, match="undercover"):
        g.compile(64)


def test_fraction_rounding_drift_tolerated():
    """Fractions summing to 1 keep compiling even when sizes round."""
    g = (StreamGraph()
         .stage("a", fraction=1 / 3, body=_body)
         .stage("b", fraction=2 / 3, body=_body))
    plan = g.compile(16).plan
    assert plan.groups["a"].size + plan.groups["b"].size == 16


def test_explicit_sizes_undercovering_machine_rejected():
    """Gross undercoverage by explicit sizes is rejected up front."""
    g = (StreamGraph()
         .stage("workers", size=4, body=_body)
         .stage("sink", size=1, body=_body))
    with pytest.raises(GraphError, match="undercover"):
        g.compile(64)


def test_explicit_size_never_silently_inflated():
    """Within rounding slack, drift is still never credited to an
    explicitly sized stage."""
    g = (StreamGraph()
         .stage("a", fraction=0.28, body=_body)   # round(4.48) = 4
         .stage("b", size=11, body=_body))        # drift +1 lands on b
    with pytest.raises(GraphError, match="declared size 11"):
        g.compile(16)


def test_too_few_processes_rejected():
    g = (StreamGraph()
         .stage("a", fraction=0.5, body=_body)
         .stage("b", fraction=0.5, body=_body))
    with pytest.raises(GraphError, match="cannot host"):
        g.compile(1)


def test_graph_error_is_a_plan_error():
    # callers guarding the low-level API keep working on the builder
    assert issubclass(GraphError, PlanError)
    with pytest.raises(PlanError):
        StreamGraph().compile(4)


def test_compile_lowers_to_plan():
    g = (StreamGraph()
         .stage("compute", fraction=0.75, body=_body)
         .stage("analyze", fraction=0.25)
         .flow("samples", "compute", "analyze", operator=RunningStats))
    compiled = g.compile(16)
    plan = compiled.plan
    assert compiled.total_procs == 16
    assert plan.groups["compute"].size == 12
    assert plan.groups["analyze"].size == 4
    assert plan.alpha("analyze") == pytest.approx(0.25)
    assert [f.name for f in plan.flows] == ["samples"]
    # every stage is an operation mapped to its own group
    assert plan.operations_of("compute") == ["compute"]
    assert plan.group_of(0) == "compute"
    assert plan.group_of(15) == "analyze"


def test_flows_in_out_views():
    g = (StreamGraph()
         .stage("a", size=2, body=_body)
         .stage("b", size=2, body=_body)
         .stage("c", size=2, body=_body)
         .flow("ab", "a", "b")
         .flow("bc", "b", "c"))
    assert [f.name for f in g.flows_out("a")] == ["ab"]
    assert [f.name for f in g.flows_in("c")] == ["bc"]
    assert [f.name for f in g.flows_in("b")] == ["ab"]
    assert [f.name for f in g.flows_out("b")] == ["bc"]
