"""Coverage for :mod:`repro.api.errors` and the :class:`Report` JSON
surface (the least-covered corners of the api layer)."""

import json

import pytest

from repro.api import GraphError, Report, Simulation, StreamGraph
from repro.core.groups import PlanError
from repro.mpistream import Collector, RunningStats


# ----------------------------------------------------------------------
# errors: hierarchy + guard behaviour
# ----------------------------------------------------------------------

def test_graph_error_is_a_plan_error():
    """Code guarding low-level plan construction keeps working when it
    moves to the builder API — the documented contract of the module."""
    assert issubclass(GraphError, PlanError)
    assert issubclass(GraphError, Exception)
    err = GraphError("nope")
    assert isinstance(err, PlanError)
    with pytest.raises(PlanError):
        raise err


def test_low_level_plan_guards_catch_graph_errors():
    with pytest.raises(PlanError, match="unknown machine preset"):
        Simulation(4, machine="cray-unobtainium")


def test_program_report_rejects_graph_queries():
    def prog(comm):
        yield from comm.barrier()
        return comm.rank

    report = Simulation(2).run(prog)
    with pytest.raises(GraphError, match="plain rank program"):
        report.stage_values("src")
    with pytest.raises(GraphError, match="plain rank program"):
        report.flow_profiles("f")


def test_untraced_report_rejects_trace_queries():
    def prog(comm):
        yield from comm.barrier()

    report = Simulation(2).run(prog)
    with pytest.raises(GraphError, match="trace=True"):
        report.overlap("a", "b")
    with pytest.raises(GraphError, match="trace=True"):
        report.idle(0)


def test_unknown_stage_and_flow_named_in_errors():
    def produce(ctx):
        with ctx.producer("f") as out:
            yield from out.send(1)

    graph = (StreamGraph()
             .stage("src", size=1, body=produce)
             .stage("dst", size=1)
             .flow("f", "src", "dst", operator=Collector))
    report = Simulation(2).run(graph)
    with pytest.raises(GraphError, match="'ghost'"):
        report.stage_ranks("ghost")
    with pytest.raises(GraphError, match="'ghost'"):
        report.flow_profiles("ghost")


# ----------------------------------------------------------------------
# Report.to_json round-trip
# ----------------------------------------------------------------------

def _roundtrip(data):
    return json.loads(json.dumps(data))


def test_program_report_to_json_roundtrip():
    def prog(comm):
        yield from comm.compute(0.001 * (comm.rank + 1))
        return {"rank": comm.rank, "elapsed": comm.time}

    report = Simulation(3).run(prog)
    data = report.to_json()
    assert _roundtrip(data) == data
    assert data["nprocs"] == 3
    assert data["elapsed"] == report.elapsed
    assert len(data["finish_times"]) == 3
    assert data["values"][1]["rank"] == 1


def test_graph_report_to_json_roundtrip():
    def produce(ctx):
        with ctx.producer("samples") as out:
            for i in range(4):
                yield from out.send(float(i))
        return ("src-done", ctx.comm.rank)

    graph = (StreamGraph()
             .stage("src", size=2, body=produce)
             .stage("dst", size=1)
             .flow("samples", "src", "dst", operator=RunningStats))
    report = Simulation(3).run(graph)
    data = report.to_json()
    assert _roundtrip(data) == data
    assert data["stages"] == {"src": 2, "dst": 1}
    assert data["flows"] == {"samples": 8}
    # tuple results degrade to lists, stay JSON-clean
    assert data["stage_results"]["src"] == [["src-done", 0], ["src-done", 1]]
    # the analysis-stage operator summary is a plain dict already
    assert data["stage_results"]["dst"][0]["count"] == 8


def test_to_json_matches_summary_headline():
    def prog(comm):
        yield from comm.barrier()

    report = Simulation(2).run(prog)
    data = report.to_json()
    for key, val in report.summary().items():
        assert data[key] == val
